//! Golden-result regression harness.
//!
//! Each test renders a family of [`RunResult`]s to a canonical text form
//! (metrics at 6 decimal places) and compares it against a checked-in
//! snapshot under `tests/golden/`. The simulator is deterministic — a pure
//! function of the seed — so any diff is a behaviour change, not noise.
//!
//! To regenerate snapshots after an *intentional* simulator change:
//!
//! ```text
//! SMT_BLESS=1 cargo test --test golden
//! ```
//!
//! then commit the updated `tests/golden/*.txt` files alongside the change
//! that caused them. Snapshots are rendered from results only (never from
//! wall-time or worker ids), so they are identical for any `--jobs` value.

use std::fmt::Write as _;
use std::path::PathBuf;

use smtfetch::core::{FetchEngineKind, FetchPolicy};
use smtfetch::experiments::{run_matrix, run_matrix_parallel, Jobs, RunLength, RunResult};
use smtfetch::workloads::Workload;

/// Every family runs at the same fixed length; golden files embed results
/// at this length, so it is deliberately *not* read from `SMT_EXP_CYCLES`.
const LEN: RunLength = RunLength::SMOKE;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn blessing() -> bool {
    std::env::var_os("SMT_BLESS").is_some_and(|v| v != "0")
}

/// Worker count for the runs behind a snapshot. Results are jobs-invariant
/// (locked by `parallel_matches_serial_for_every_worker_count` below), so
/// this only affects wall-time.
fn jobs() -> Jobs {
    Jobs::from_env().expect("invalid SMT_JOBS")
}

/// Renders results to the canonical golden text form: one line per cell,
/// `workload | engine | policy` label first (locking matrix order), then
/// the headline metrics at 6 decimals.
fn render(results: &[RunResult]) -> String {
    let mut out = String::new();
    for r in results {
        let per_thread = r
            .per_thread_ipc
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect::<Vec<_>>()
            .join(" ");
        writeln!(
            out,
            "{} | {} | {} | ipc={:.6} ipfc={:.6} fairness={:.6} per_thread=[{}]",
            r.workload, r.engine, r.policy, r.ipc, r.ipfc, r.fairness, per_thread
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Compares `results` against `tests/golden/<family>.txt`, or rewrites the
/// snapshot when `SMT_BLESS=1` is set.
fn check(family: &str, results: &[RunResult]) {
    let got = render(results);
    let path = golden_dir().join(format!("{family}.txt"));
    if blessing() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &got).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}).\n\
             Run `SMT_BLESS=1 cargo test --test golden` and commit the result.",
            path.display()
        )
    });
    if got != want {
        let mismatch = want
            .lines()
            .zip(got.lines())
            .position(|(w, g)| w != g)
            .unwrap_or(want.lines().count().min(got.lines().count()));
        panic!(
            "golden mismatch for family `{family}` at line {line}:\n\
             --- expected ({path})\n{want}\
             --- got\n{got}\
             If this change is intentional, re-bless with \
             `SMT_BLESS=1 cargo test --test golden` and commit the diff.",
            line = mismatch + 1,
            path = path.display(),
        )
    }
}

#[test]
fn golden_figure2_family() {
    // Figure 2's axis: the baseline engine on the 2-thread mix at 1.8/1.16.
    let results = run_matrix_parallel(
        &[Workload::mix2()],
        &[FetchEngineKind::GshareBtb],
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(1, 16)],
        LEN,
        jobs(),
    );
    check("figure2_family", &results);
}

#[test]
fn golden_ilp_family() {
    // Figure 5's axis: every fetch engine on the ILP-bound 2-thread mix.
    let results = run_matrix_parallel(
        &[Workload::ilp2()],
        &FetchEngineKind::all(),
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)],
        LEN,
        jobs(),
    );
    check("ilp_family", &results);
}

#[test]
fn golden_mem_family() {
    // Figure 7's axis: every fetch engine on the memory-bound 2-thread mix.
    let results = run_matrix_parallel(
        &[Workload::mem2()],
        &FetchEngineKind::all(),
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)],
        LEN,
        jobs(),
    );
    check("mem_family", &results);
}

#[test]
fn golden_policies_family() {
    // The fetch-policy comparison: one engine, the priority-scheme sweep
    // plus the long-latency STALL/FLUSH variants.
    let results = run_matrix_parallel(
        &[Workload::mix2()],
        &[FetchEngineKind::GskewFtb],
        &[
            FetchPolicy::icount(2, 8),
            FetchPolicy::br_count(2, 8),
            FetchPolicy::miss_count(2, 8),
            FetchPolicy::icount(2, 8).with_stall(),
            FetchPolicy::icount(2, 8).with_flush(),
        ],
        LEN,
        jobs(),
    );
    check("policies_family", &results);
}

/// Locks `run_matrix`'s documented nesting — workloads (outer) × policies ×
/// engines (inner) — as a golden snapshot: the label column of the snapshot
/// *is* the order contract, so any reordering diffs loudly.
#[test]
fn golden_matrix_order() {
    let results = run_matrix(
        &[Workload::mix2(), Workload::ilp2()],
        &FetchEngineKind::all(),
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 16)],
        LEN,
    );
    // Structural spot-check independent of the snapshot: workload outermost,
    // engine innermost, policy in between.
    assert_eq!(results.len(), 2 * 2 * 3);
    let engines: Vec<String> = FetchEngineKind::all()
        .iter()
        .map(|e| e.to_string())
        .collect();
    for (i, r) in results.iter().enumerate() {
        let want_workload = if i < 6 { "2_MIX" } else { "2_ILP" };
        let want_policy = if (i / 3) % 2 == 0 {
            "ICOUNT.1.8"
        } else {
            "ICOUNT.2.16"
        };
        assert_eq!(r.workload, want_workload, "workload is the outermost axis");
        assert_eq!(r.policy, want_policy, "policy is the middle axis");
        assert_eq!(r.engine, engines[i % 3], "engine is the innermost axis");
    }
    check("matrix_order", &results);
}

/// Zeroes the per-reason skip counters — the only `SimStats` fields allowed
/// to differ between the event-driven `run_cycles` drive mode (which skips
/// idle windows) and pure stepping (which never does). Returns their sum so
/// callers can additionally require the scheduler to have engaged.
fn normalize_skips(stats: &mut smtfetch::core::SimStats) -> u64 {
    let skipped = stats.skipped_cycles();
    stats.skip_mem_wait = 0;
    stats.skip_issue_wait = 0;
    stats.skip_ftq_wait = 0;
    stats.skip_policy_idle = 0;
    skipped
}

/// Same-seed equivalence contract for the allocation-free `step()` and the
/// event-driven scheduler: two identically-seeded simulators — one driven
/// through `run_cycles` (which jumps to the next interesting event whenever
/// no stage can act), one stepped cycle by cycle (which never does) —
/// produce `==`-equal `SimStats` (all integer counters, so equality is
/// exact) for every fetch engine, both fetch architectures, and every
/// fetch-policy kind. Only the four per-reason skip counters may differ
/// between the two drive modes; they are normalized away before comparing
/// and their sum separately required to be non-zero, so the fast path is
/// proven both *exercised* and *invisible*. Together with the snapshot
/// families above (which compare against the checked-in `tests/golden/*.txt`
/// bit-for-bit without re-blessing), this pins the optimized hot path to
/// the original semantics.
#[test]
fn optimized_step_matches_run_cycles_same_seed() {
    use smtfetch::core::SimBuilder;
    const CYCLES: u64 = 6_000;
    let mut total_skipped = 0;
    for engine in FetchEngineKind::all() {
        for policy in [
            FetchPolicy::icount(1, 8),
            FetchPolicy::icount(2, 8),
            FetchPolicy::round_robin(2, 8),
            FetchPolicy::br_count(2, 8),
            FetchPolicy::miss_count(2, 8),
        ] {
            let build = || {
                SimBuilder::new(Workload::mix2().programs(2004).expect("programs"))
                    .fetch_engine(engine)
                    .fetch_policy(policy)
                    .build()
                    .expect("valid configuration")
            };
            let mut a = build();
            let mut b = build();
            a.run_cycles(CYCLES);
            for _ in 0..CYCLES {
                b.step();
            }
            let mut fast = a.stats().clone();
            assert_eq!(b.stats().skipped_cycles(), 0, "step() must never skip");
            total_skipped += normalize_skips(&mut fast);
            assert_eq!(
                &fast,
                b.stats(),
                "{engine} × {policy}: same-seed runs diverged"
            );
        }
    }
    assert!(
        total_skipped > 0,
        "the scheduler never engaged across the matrix"
    );
}

/// The long-latency STALL/FLUSH policies (§5) idle a thread for the full
/// memory latency, which is where event-driven skipping earns its keep.
/// Drive the memory-bound workload under both policies and re-assert exact
/// equivalence, requiring a substantial share of the run to be skipped
/// under both (STALL gates fetch until the load returns; FLUSH drains the
/// queues and leaves whole-machine idle windows).
#[test]
fn fast_forward_matches_stepping_under_long_latency_policies() {
    use smtfetch::core::SimBuilder;
    const CYCLES: u64 = 12_000;
    for (policy, min_skip) in [
        (FetchPolicy::icount(1, 8).with_stall(), 0),
        (FetchPolicy::icount(2, 8).with_stall(), 0),
        (FetchPolicy::icount(1, 8).with_flush(), CYCLES / 10),
        (FetchPolicy::icount(2, 8).with_flush(), CYCLES / 10),
    ] {
        let build = || {
            SimBuilder::new(Workload::mem2().programs(2004).expect("programs"))
                .fetch_policy(policy)
                .build()
                .expect("valid configuration")
        };
        let mut a = build();
        let mut b = build();
        a.run_cycles(CYCLES);
        for _ in 0..CYCLES {
            b.step();
        }
        let mut fast = a.stats().clone();
        let skipped = normalize_skips(&mut fast);
        assert!(
            skipped >= min_skip,
            "{policy}: expected >= {min_skip} skipped cycles, got {skipped}"
        );
        assert_eq!(&fast, b.stats(), "{policy}: same-seed runs diverged");
    }
}

/// Checkpoint/resume equivalence contract over the Figure 5 matrix: every
/// engine × `ICOUNT.{1,2}.8` cell, split into N ∈ {2, 4, 8} chunks executed
/// in parallel from checkpoints, is **byte-identical** to the monolithic
/// run. `run_chunked` verifies every chunk boundary internally (each
/// chunk's end snapshot must equal the next chunk's start checkpoint); on
/// top of that this test compares the final statistics and the final
/// whole-machine snapshot against an independently-run monolithic
/// simulator, so a silent no-op chunking cannot pass.
#[test]
fn chunked_execution_matches_monolithic_for_figure5_matrix() {
    use smtfetch::core::{SimBuilder, SimConfig};
    use smtfetch::experiments::run_chunked;
    const CYCLES: u64 = 6_000;
    let programs = Workload::ilp2().programs_shared(2004).expect("programs");
    for engine in FetchEngineKind::all() {
        for policy in [FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)] {
            let cfg = SimConfig {
                fetch_policy: policy,
                ..SimConfig::default()
            };
            let mut mono = SimBuilder::new_shared(programs.clone())
                .fetch_engine(engine)
                .config(cfg.clone())
                .build()
                .expect("valid configuration");
            mono.run_cycles(CYCLES);
            let mono_snapshot = mono.snapshot();
            for chunks in [2usize, 4, 8] {
                let chunked = run_chunked(
                    &programs,
                    engine,
                    &cfg,
                    CYCLES,
                    chunks,
                    Jobs::new(4).expect("valid worker count"),
                )
                .unwrap_or_else(|e| {
                    panic!("{engine} × {policy} chunks={chunks}: boundary diverged: {e}")
                });
                assert_eq!(
                    &chunked.stats,
                    mono.stats(),
                    "{engine} × {policy} chunks={chunks}: stats diverged"
                );
                assert_eq!(
                    chunked.final_snapshot, mono_snapshot,
                    "{engine} × {policy} chunks={chunks}: final state diverged"
                );
                assert_eq!(chunked.verified_boundaries, chunks);
                assert_eq!(chunked.chunk_cycles.iter().sum::<u64>(), CYCLES);
            }
        }
    }
}

/// Chunk boundaries that land *inside* an event skip: the memory-bound
/// workload under STALL/FLUSH gates fetch for the 100-cycle memory latency,
/// so odd chunk counts over a non-round horizon are all but guaranteed to
/// cut skip windows mid-flight. The scheduler must clamp the skip at the
/// boundary and re-derive the identical classification (and stall charges)
/// on resume, so chunked stats and the final whole-machine snapshot stay
/// byte-identical to the monolithic run.
#[test]
fn chunk_boundary_mid_skip_matches_monolithic() {
    use smtfetch::core::{SimBuilder, SimConfig};
    use smtfetch::experiments::run_chunked;
    const CYCLES: u64 = 9_001; // prime-ish horizon: boundaries avoid round cycles
    let programs = Workload::mem2().programs_shared(2004).expect("programs");
    for policy in [
        FetchPolicy::icount(2, 8).with_stall(),
        FetchPolicy::icount(2, 8).with_flush(),
        FetchPolicy::round_robin(2, 8).with_stall(),
    ] {
        let cfg = SimConfig {
            fetch_policy: policy,
            ..SimConfig::default()
        };
        let mut mono = SimBuilder::new_shared(programs.clone())
            .config(cfg.clone())
            .build()
            .expect("valid configuration");
        mono.run_cycles(CYCLES);
        assert!(
            mono.stats().skipped_cycles() > 0,
            "{policy}: the scheduler never engaged, boundaries cannot land mid-skip"
        );
        let mono_snapshot = mono.snapshot();
        for chunks in [3usize, 5, 7] {
            let chunked = run_chunked(
                &programs,
                FetchEngineKind::GshareBtb,
                &cfg,
                CYCLES,
                chunks,
                Jobs::new(3).expect("valid worker count"),
            )
            .unwrap_or_else(|e| panic!("{policy} chunks={chunks}: boundary diverged: {e}"));
            assert_eq!(
                &chunked.stats,
                mono.stats(),
                "{policy} chunks={chunks}: stats diverged"
            );
            assert_eq!(
                chunked.final_snapshot, mono_snapshot,
                "{policy} chunks={chunks}: final state diverged"
            );
        }
    }
}

/// Satellite equivalence contract: the parallel executor returns results
/// byte-identical to the serial path for any worker count. `RunResult`
/// equality is bit-exact (`f64 ==`), so this is the strongest possible
/// check short of hashing.
#[test]
fn parallel_matches_serial_for_every_worker_count() {
    let workloads = [Workload::mix2(), Workload::ilp2()];
    let engines = FetchEngineKind::all();
    let policies = [FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)];
    let serial = run_matrix(&workloads, &engines, &policies, LEN);
    for jobs in [1usize, 2, 8] {
        let parallel = run_matrix_parallel(
            &workloads,
            &engines,
            &policies,
            LEN,
            Jobs::new(jobs).expect("valid worker count"),
        );
        assert_eq!(
            serial, parallel,
            "run_matrix_parallel(jobs={jobs}) diverged from serial run_matrix"
        );
    }
}
