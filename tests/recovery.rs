//! Misprediction-recovery coverage.
//!
//! Two layers:
//!
//! 1. **Behavior digests** — a seeded call-heavy workload (calls/returns
//!    exercise the RAS-repair path hard) is simulated under every fetch
//!    engine and its whole-run counters are pinned as literals. These
//!    digests were captured *before* the `Engine` enum was ported to the
//!    `FrontEnd` trait, so the port provably preserves squash/repair
//!    behavior cycle for cycle.
//! 2. **Spec-state recovery** — for each engine, enrich the speculative
//!    state, checkpoint it, run wrong-path predictions past the checkpoint,
//!    then `repair` with a synthetic resolved outcome and assert the state
//!    (history bits, RAS depth/top, stream path) matches an independently
//!    reconstructed reference.

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder, Simulator};
use smtfetch::isa::Addr;
use smtfetch::workloads::{BenchmarkProfile, Program, ProgramBuilder};

/// A two-thread workload whose block-ending branches are 40% calls —
/// several times the Table 1 rates (gzip 0.08 … eon 0.16) — so squashes
/// constantly land near speculative RAS activity.
fn call_heavy_programs() -> Vec<Program> {
    (0..2u64)
        .map(|t| {
            let mut profile = BenchmarkProfile::vortex();
            profile.call_frac = 0.40;
            ProgramBuilder::new(profile)
                .base(Addr::new(0x40_0000))
                .seed(0xCA11 + t)
                .build()
        })
        .collect()
}

fn call_heavy_sim(engine: FetchEngineKind) -> Simulator {
    SimBuilder::new(call_heavy_programs())
        .fetch_engine(engine)
        .fetch_policy(FetchPolicy::icount(2, 8))
        .build()
        .expect("call-heavy workload builds")
}

/// Whole-run digest: every counter that squash/repair behavior feeds.
fn digest(engine: FetchEngineKind) -> [u64; 5] {
    let mut sim = call_heavy_sim(engine);
    let stats = sim.run_cycles(8_000);
    [
        stats.total_committed(),
        stats.squashed,
        stats.control_mispredicts,
        stats.cond_mispredicts,
        stats.fetched_wrong_path,
    ]
}

#[test]
fn call_heavy_digest_gshare_btb() {
    assert_eq!(
        digest(FetchEngineKind::GshareBtb),
        [6940, 3395, 159, 65, 3395]
    );
}

#[test]
fn call_heavy_digest_gskew_ftb() {
    assert_eq!(
        digest(FetchEngineKind::GskewFtb),
        [7077, 4178, 215, 71, 4245]
    );
}

#[test]
fn call_heavy_digest_stream() {
    assert_eq!(digest(FetchEngineKind::Stream), [6989, 6015, 223, 66, 6081]);
}

#[test]
fn call_heavy_digest_trace_cache() {
    assert_eq!(
        digest(FetchEngineKind::TraceCache),
        [6353, 6230, 278, 54, 6238]
    );
}

mod spec_state {
    //! Layer 2: mid-burst squash recovery, per engine.
    //!
    //! Each case enriches the speculative state by letting the engine run a
    //! burst of real predictions down its own predicted path, snapshots the
    //! state entering the squashing branch's block, keeps predicting down
    //! the (now wrong) path, then calls `repair` with a synthetic resolved
    //! outcome. The repaired state must equal a reference reconstructed
    //! from the snapshot plus the `FrontEnd::repair` contract alone: the
    //! checkpoint restored, then the actual outcome applied (history shift
    //! for predicted conditionals, RAS push/pop and stream-close only for
    //! taken control transfers).

    use smtfetch::core::{
        AnyFrontEnd, BranchInfo, FetchEngineKind, FetchPolicy, FrontEnd, SimConfig, SpecState,
    };
    use smtfetch::isa::{Addr, BranchKind, DynInst, InstClass};
    use smtfetch::workloads::Srng;

    #[test]
    fn mid_burst_repair_matches_reconstructed_reference() {
        let programs = super::call_heavy_programs();
        let prog = &programs[0];
        let cfg = SimConfig::hpca2004(FetchPolicy::icount(2, 8));
        for (k, kind) in FetchEngineKind::all_with_trace_cache()
            .into_iter()
            .enumerate()
        {
            for case in 0..48u64 {
                let mut rng = Srng::new(0x5EC0 ^ (case << 4) ^ k as u64);
                let mut e = AnyFrontEnd::hpca2004(kind, &cfg);
                let mut spec = SpecState::new(e.history_bits(), prog.entry());
                let mut pc = prog.entry();

                // Enrich: a burst of real predictions down the engine's own
                // predicted path (calls/returns exercise the RAS).
                for _ in 0..4 + rng.range(0, 48) {
                    let pb = e.predict_block(0, pc, &mut spec, prog, 8);
                    pc = if pb.block.next_fetch.is_null() {
                        pb.block.end()
                    } else {
                        pb.block.next_fetch
                    };
                }

                // Snapshot the state entering the squashing branch's block;
                // the engine's own checkpoints must agree with it.
                let hist_ref = spec.hist;
                let path_ref = spec.path;
                let start_ref = spec.stream_start;
                let ras_depth_ref = spec.ras.depth();
                let ras_top_ref = spec.ras.peek();
                let pb = e.predict_block(0, pc, &mut spec, prog, 8);
                let meta = pb.meta;
                assert_eq!(meta.hist, hist_ref, "{kind} case {case}: hist checkpoint");
                assert_eq!(meta.path, path_ref, "{kind} case {case}: path checkpoint");
                assert_eq!(
                    meta.stream_start, start_ref,
                    "{kind} case {case}: stream-start checkpoint"
                );

                // Keep speculating past the checkpoint — all wrong path.
                let mut wpc = pb.block.next_fetch;
                for _ in 0..1 + rng.range(0, 6) {
                    let p = e.predict_block(0, wpc, &mut spec, prog, 8);
                    wpc = if p.block.next_fetch.is_null() {
                        p.block.end()
                    } else {
                        p.block.next_fetch
                    };
                }

                // Synthetic resolved outcome for the block-ending branch.
                let branch_pc = pb.block.last_pc();
                let kind_pick = rng.range(0, 4);
                let bkind = match kind_pick {
                    0 => BranchKind::Cond,
                    1 => BranchKind::Call,
                    // A return needs something to pop; fall back to a jump
                    // when the burst left the RAS empty.
                    2 if ras_depth_ref > 0 => BranchKind::Return,
                    2 => BranchKind::Jump,
                    _ => BranchKind::Jump,
                };
                let taken = bkind != BranchKind::Cond || rng.chance(0.5);
                let target = Addr::new(0x40_0000 + 4 * rng.range(0, 4096));
                let di = DynInst {
                    thread: 0,
                    static_id: 0,
                    pc: branch_pc,
                    class: InstClass::Branch(bkind),
                    dest: None,
                    srcs: [None, None],
                    mem: None,
                    taken,
                    next_pc: if taken {
                        target
                    } else {
                        branch_pc.add_insts(1)
                    },
                    wrong_path: false,
                };
                let info = BranchInfo {
                    block_start: pc,
                    is_end: true,
                    spec_taken: !taken,
                    spec_next: pb.block.next_fetch,
                    mispredicted: true,
                    decode_redirect: false,
                };
                e.repair(&mut spec, &info, &meta, &di);

                // History: checkpoint + the actual direction, iff the engine
                // keeps per-branch history (the stream front-end does not).
                let mut hist_want = hist_ref;
                if kind != FetchEngineKind::Stream && bkind == BranchKind::Cond {
                    hist_want.push(taken);
                }
                assert_eq!(spec.hist, hist_want, "{kind} case {case}: history");

                // RAS: checkpoint + the actual call/return effect, applied
                // only when the branch actually transferred control.
                match (taken, bkind) {
                    (true, BranchKind::Call) => {
                        assert_eq!(spec.ras.depth(), ras_depth_ref + 1, "{kind} case {case}");
                        assert_eq!(
                            spec.ras.peek(),
                            Some(branch_pc.add_insts(1)),
                            "{kind} case {case}: pushed return address"
                        );
                    }
                    (true, BranchKind::Return) => {
                        assert_eq!(
                            spec.ras.depth(),
                            ras_depth_ref - 1,
                            "{kind} case {case}: popped"
                        );
                    }
                    _ => {
                        assert_eq!(spec.ras.depth(), ras_depth_ref, "{kind} case {case}");
                        assert_eq!(spec.ras.peek(), ras_top_ref, "{kind} case {case}: RAS top");
                    }
                }

                // Stream registers: a taken branch closes the stream at the
                // checkpointed start and opens one at the actual target.
                if taken {
                    let mut path_want = path_ref;
                    path_want.push(start_ref);
                    assert_eq!(spec.path, path_want, "{kind} case {case}: stream path");
                    assert_eq!(spec.stream_start, di.next_pc, "{kind} case {case}");
                } else {
                    assert_eq!(spec.path, path_ref, "{kind} case {case}: stream path");
                    assert_eq!(spec.stream_start, start_ref, "{kind} case {case}");
                }
            }
        }
    }
}
