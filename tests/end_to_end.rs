//! End-to-end integration tests: build workloads, run the simulator across
//! engines and policies, and check cross-crate invariants.
//!
//! The heavy engine×policy product tests fan their independent simulations
//! out over the sweep executor (`SMT_JOBS` workers, default
//! `available_parallelism()`); assertions stay on the main thread so a
//! failure message names the offending cell.

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder, SimStats};
use smtfetch::experiments::{sweep_indexed, Jobs};
use smtfetch::workloads::{Workload, WorkloadClass};

fn run(w: &Workload, e: FetchEngineKind, p: FetchPolicy, cycles: u64) -> SimStats {
    let mut sim = SimBuilder::new(w.programs(7).expect("programs build"))
        .fetch_engine(e)
        .fetch_policy(p)
        .build()
        .expect("valid thread count");
    sim.run_cycles(cycles).clone()
}

/// Worker count for the fanned-out tests (results are jobs-invariant).
fn jobs() -> Jobs {
    Jobs::from_env().expect("invalid SMT_JOBS")
}

#[test]
fn every_workload_runs_on_every_engine() {
    let cells: Vec<(Workload, FetchEngineKind)> = Workload::all_table2()
        .into_iter()
        .flat_map(|w| FetchEngineKind::all().map(|e| (w.clone(), e)))
        .collect();
    let stats = sweep_indexed(cells.len(), jobs(), |i| {
        let (w, e) = &cells[i];
        run(w, *e, FetchPolicy::icount(1, 8), 6_000)
    });
    for ((w, e), s) in cells.iter().zip(&stats) {
        assert!(
            s.total_committed() > 500,
            "{} on {e} committed only {}",
            w.name(),
            s.total_committed()
        );
    }
}

#[test]
fn ipc_never_exceeds_decode_width() {
    let cells: Vec<(FetchEngineKind, FetchPolicy)> = FetchEngineKind::all()
        .into_iter()
        .flat_map(|e| FetchPolicy::paper_sweep().map(|p| (e, p)))
        .collect();
    let stats = sweep_indexed(cells.len(), jobs(), |i| {
        let (e, p) = cells[i];
        run(&Workload::ilp4(), e, p, 20_000)
    });
    for ((e, p), s) in cells.iter().zip(&stats) {
        assert!(s.ipc() <= 8.0, "{e} {p}: ipc {}", s.ipc());
        assert!(s.ipfc() <= p.width as f64, "{e} {p}: ipfc {}", s.ipfc());
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run(
        &Workload::mix4(),
        FetchEngineKind::Stream,
        FetchPolicy::icount(2, 16),
        15_000,
    );
    let b = run(
        &Workload::mix4(),
        FetchEngineKind::Stream,
        FetchPolicy::icount(2, 16),
        15_000,
    );
    assert_eq!(a.total_committed(), b.total_committed());
    assert_eq!(a.fetched, b.fetched);
    assert_eq!(a.squashed, b.squashed);
    assert_eq!(a.cond_mispredicts, b.cond_mispredicts);
}

#[test]
fn all_threads_make_progress_under_icount() {
    // ICOUNT is a fairness-seeking policy: even the memory-bounded threads
    // of a MIX workload must retire instructions.
    let s = run(
        &Workload::mix4(),
        FetchEngineKind::GskewFtb,
        FetchPolicy::icount(1, 8),
        60_000,
    );
    for t in 0..4 {
        assert!(
            s.committed[t] > 100,
            "thread {t} committed {}",
            s.committed[t]
        );
    }
}

#[test]
fn accounting_identities_hold() {
    let s = run(
        &Workload::ilp2(),
        FetchEngineKind::GshareBtb,
        FetchPolicy::icount(2, 8),
        30_000,
    );
    // Everything fetched is committed, squashed, or still in flight.
    assert!(s.total_committed() + s.squashed <= s.fetched);
    let in_flight = s.fetched - s.total_committed() - s.squashed;
    assert!(in_flight < 1_000, "{in_flight} unaccounted instructions");
    // Wrong-path instructions never commit, so squashes cover them.
    assert!(s.squashed >= s.fetched_wrong_path.saturating_sub(600));
    // The distribution's cycle count is exactly the fetch-cycle count.
    assert_eq!(s.distribution.cycles(), s.fetch_cycles);
}

#[test]
fn branch_prediction_learns_in_pipeline() {
    let engines = FetchEngineKind::all();
    let stats = sweep_indexed(engines.len(), jobs(), |i| {
        run(
            &Workload::ilp2(),
            engines[i],
            FetchPolicy::icount(1, 8),
            60_000,
        )
    });
    for (e, s) in engines.iter().zip(&stats) {
        assert!(
            s.branch_accuracy() > 0.80,
            "{e}: accuracy {:.3}",
            s.branch_accuracy()
        );
    }
}

#[test]
fn history_checkpoints_track_architectural_history() {
    // For the gshare engine every conditional branch ends a block, so the
    // prediction-time history checkpoint must equal the committed-outcome
    // history at all times (this catches speculation-repair bugs).
    let s = run(
        &Workload::ilp2(),
        FetchEngineKind::GshareBtb,
        FetchPolicy::icount(2, 8),
        40_000,
    );
    let rate = s.hist_mismatches as f64 / s.cond_branches.max(1) as f64;
    assert!(rate < 0.01, "history mismatch rate {rate:.4}");
}

#[test]
fn wider_fetch_does_not_reduce_fetch_throughput() {
    let engines = FetchEngineKind::all();
    let pairs = sweep_indexed(engines.len(), jobs(), |i| {
        let e = engines[i];
        let narrow = run(&Workload::ilp4(), e, FetchPolicy::icount(1, 8), 40_000);
        let wide = run(&Workload::ilp4(), e, FetchPolicy::icount(1, 16), 40_000);
        (narrow, wide)
    });
    for (e, (narrow, wide)) in engines.iter().zip(&pairs) {
        assert!(
            wide.ipfc() >= narrow.ipfc() * 0.97,
            "{e}: ipfc narrow {:.2} wide {:.2}",
            narrow.ipfc(),
            wide.ipfc()
        );
    }
}

#[test]
fn round_robin_policy_works() {
    let s = run(
        &Workload::ilp2(),
        FetchEngineKind::GshareBtb,
        FetchPolicy::round_robin(1, 8),
        40_000,
    );
    assert!(s.ipc() > 0.8, "RR ipc {}", s.ipc());
    assert!(s.committed[0] > 0 && s.committed[1] > 0);
}

#[test]
fn custom_single_thread_workload_runs() {
    let w = Workload::custom("solo", WorkloadClass::Ilp, &["crafty"]).unwrap();
    // 40k cycles includes the cold start (caches, predictor tables), so the
    // bar is deliberately modest.
    let s = run(
        &w,
        FetchEngineKind::Stream,
        FetchPolicy::icount(1, 16),
        40_000,
    );
    assert!(s.ipc() > 0.3, "single-thread ipc {}", s.ipc());
    assert_eq!(s.committed[1..].iter().sum::<u64>(), 0);
}

#[test]
fn builder_rejects_bad_thread_counts() {
    use smtfetch::core::BuildError;
    let err = SimBuilder::new(Vec::new()).build().unwrap_err();
    assert_eq!(err, BuildError::NoThreads);

    let nine: Vec<_> = (0..9)
        .flat_map(|i| {
            Workload::custom("x", WorkloadClass::Ilp, &["gzip"])
                .unwrap()
                .programs(i)
                .unwrap()
        })
        .collect();
    let err = SimBuilder::new(nine).build().unwrap_err();
    assert!(matches!(err, BuildError::TooManyThreads { got: 9 }));
}

#[test]
fn two_thread_fetch_uses_bank_conflict_logic() {
    // 2.X must exercise the bank-conflict path at least occasionally.
    let s = run(
        &Workload::ilp4(),
        FetchEngineKind::GshareBtb,
        FetchPolicy::icount(2, 8),
        40_000,
    );
    assert!(
        s.bank_conflicts > 0,
        "dual fetch never conflicted on a bank"
    );
    // And 1.X never can.
    let s1 = run(
        &Workload::ilp4(),
        FetchEngineKind::GshareBtb,
        FetchPolicy::icount(1, 8),
        40_000,
    );
    assert_eq!(s1.bank_conflicts, 0);
}

#[test]
fn stall_policy_gates_the_memory_thread() {
    // STALL starves the memory-bound thread but boosts raw throughput on a
    // MIX workload (Tullsen & Brown) — and never fires flushes.
    let base = run(
        &Workload::mix2(),
        FetchEngineKind::GskewFtb,
        FetchPolicy::icount(2, 8),
        60_000,
    );
    let stall = run(
        &Workload::mix2(),
        FetchEngineKind::GskewFtb,
        FetchPolicy::icount(2, 8).with_stall(),
        60_000,
    );
    assert!(
        stall.ipc() > base.ipc(),
        "STALL {:.2} should beat plain ICOUNT {:.2} on 2_MIX",
        stall.ipc(),
        base.ipc()
    );
    assert_eq!(stall.flushes, 0);
    // Both threads still commit something.
    assert!(stall.committed[0] > 0 && stall.committed[1] > 0);
}

#[test]
fn flush_policy_fires_and_stays_correct() {
    let flush = run(
        &Workload::mix4(),
        FetchEngineKind::GskewFtb,
        FetchPolicy::icount(2, 8).with_flush(),
        60_000,
    );
    assert!(flush.flushes > 10, "flush never fired: {}", flush.flushes);
    // Flushed instructions are re-fetched and committed: the run stays
    // functionally sound (all threads progress; accounting holds).
    for t in 0..4 {
        assert!(
            flush.committed[t] > 50,
            "thread {t}: {}",
            flush.committed[t]
        );
    }
    assert!(flush.total_committed() + flush.squashed <= flush.fetched);
}

#[test]
fn flush_runs_are_deterministic_too() {
    let p = FetchPolicy::icount(2, 8).with_flush();
    let a = run(&Workload::mix4(), FetchEngineKind::Stream, p, 30_000);
    let b = run(&Workload::mix4(), FetchEngineKind::Stream, p, 30_000);
    assert_eq!(a.total_committed(), b.total_committed());
    assert_eq!(a.flushes, b.flushes);
    assert_eq!(a.squashed, b.squashed);
}

#[test]
fn brcount_and_misscount_policies_run() {
    for p in [FetchPolicy::br_count(2, 8), FetchPolicy::miss_count(2, 8)] {
        let s = run(&Workload::mix4(), FetchEngineKind::GshareBtb, p, 30_000);
        assert!(s.ipc() > 0.3, "{p}: ipc {}", s.ipc());
    }
}

#[test]
fn policy_display_includes_mechanism() {
    assert_eq!(
        FetchPolicy::icount(2, 8).with_stall().to_string(),
        "ICOUNT-STALL.2.8"
    );
    assert_eq!(FetchPolicy::miss_count(1, 16).to_string(), "MISSCOUNT.1.16");
}

#[test]
fn trace_cache_engine_runs_and_out_fetches_baseline() {
    let base = run(
        &Workload::ilp4(),
        FetchEngineKind::GshareBtb,
        FetchPolicy::icount(1, 16),
        60_000,
    );
    let tc = run(
        &Workload::ilp4(),
        FetchEngineKind::TraceCache,
        FetchPolicy::icount(1, 16),
        60_000,
    );
    assert!(
        tc.ipfc() > base.ipfc() * 1.1,
        "trace cache IPFC {:.2} vs gshare {:.2}",
        tc.ipfc(),
        base.ipfc()
    );
    assert!(tc.ipc() > base.ipc() * 0.9);
    assert!(tc.total_committed() > 1000);
}
