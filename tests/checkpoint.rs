//! Differential checkpoint/resume tests (DESIGN.md §13).
//!
//! The contract under test: for any simulator `s`, `restore(snapshot(s))`
//! continues **byte-identically** to `s` — same `SimStats` (all-integer, so
//! `==` is exact), same stall attribution, same rendered output, and the
//! same bytes when re-snapshotted. Configurations are drawn from a
//! splitmix64 stream across every fetch engine, every fetch-policy kind,
//! both fetch architectures (1.X/2.X) and the long-latency STALL/FLUSH
//! variants; snapshot points are swept cycle by cycle through a window so
//! checkpoints land mid-fetch-burst and mid-misprediction-recovery, not
//! just at quiet cycles.
//!
//! The on-disk format itself is pinned by `tests/golden/snapshot_v3.bin`:
//! a snapshot of a fixed configuration at a fixed cycle must reproduce the
//! checked-in image bit for bit. Any intentional layout change must bump
//! `SNAPSHOT_VERSION` and re-bless with `SMT_BLESS=1 cargo test --test
//! checkpoint`. The v3 image ends in a whole-image FNV-1a checksum, so
//! corrupted or truncated bytes surface as `E0018` diagnostics — never a
//! panic, never a silent misload — which `corrupted_snapshots_are_rejected`
//! exercises byte by byte.

use std::path::PathBuf;
use std::sync::Arc;

use smtfetch::core::{
    FetchEngineKind, FetchPolicy, SimBuilder, SimConfig, SimStats, Simulator, Snapshot,
    SNAPSHOT_VERSION,
};
use smtfetch::workloads::{Program, Workload};

/// splitmix64: the test's only randomness source — seeded, so every run
/// draws the same configuration stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn build(programs: &[Arc<Program>], engine: FetchEngineKind, cfg: &SimConfig) -> Simulator {
    SimBuilder::new_shared(programs.to_vec())
        .fetch_engine(engine)
        .config(cfg.clone())
        .build()
        .expect("valid configuration")
}

/// Draws a fetch policy from the random stream: every kind, both `n`
/// values, both widths, and the three long-latency actions.
fn draw_policy(rng: &mut u64) -> FetchPolicy {
    let n = 1 + (splitmix64(rng) % 2) as u32;
    let width = if splitmix64(rng).is_multiple_of(2) {
        8
    } else {
        16
    };
    let policy = match splitmix64(rng) % 4 {
        0 => FetchPolicy::icount(n, width),
        1 => FetchPolicy::round_robin(n, width),
        2 => FetchPolicy::br_count(n, width),
        _ => FetchPolicy::miss_count(n, width),
    };
    match splitmix64(rng) % 3 {
        0 => policy,
        1 => policy.with_stall(),
        _ => policy.with_flush(),
    }
}

/// Asserts that `resumed` and `reference` agree byte for byte: exact
/// `SimStats` equality (stall breakdown included), identical debug
/// renderings (the golden text form is a function of these), and identical
/// re-snapshot bytes (the strongest check: *all* state agrees, not just
/// the counters).
fn assert_identical(reference: &mut Simulator, resumed: &mut Simulator, what: &str) {
    let want: &SimStats = reference.stats();
    let got: &SimStats = resumed.stats();
    assert_eq!(want, got, "{what}: SimStats diverged");
    assert_eq!(
        want.stalls, got.stalls,
        "{what}: stall attribution diverged"
    );
    assert_eq!(
        format!("{want:?}"),
        format!("{got:?}"),
        "{what}: rendered stats diverged"
    );
    assert_eq!(
        reference.snapshot(),
        resumed.snapshot(),
        "{what}: machine state diverged"
    );
}

/// The headline differential property: across a splitmix64-drawn stream of
/// configurations covering every engine and policy kind, a simulator
/// snapshotted after `K` cycles and resumed for `M` more is byte-identical
/// to the original running `K + M` straight.
#[test]
fn resume_is_byte_identical_across_random_configs() {
    let mut rng = 0x5eed_2004_u64;
    let engines = FetchEngineKind::all_with_trace_cache();
    for round in 0..12 {
        let engine = engines[round % engines.len()];
        let cfg = SimConfig {
            fetch_policy: draw_policy(&mut rng),
            ..SimConfig::default()
        };
        // The memory-bound mix keeps misses, flushes and recoveries in
        // flight; the balanced mix covers the common case.
        let workload = if splitmix64(&mut rng).is_multiple_of(2) {
            Workload::mix2()
        } else {
            Workload::mem2()
        };
        let programs = workload.programs_shared(2004).expect("programs build");
        let k = 1_000 + splitmix64(&mut rng) % 3_000;
        let m = 500 + splitmix64(&mut rng) % 2_000;
        let what = format!(
            "round {round}: {} {engine} {} K={k} M={m}",
            workload.name(),
            cfg.fetch_policy
        );

        let mut reference = build(&programs, engine, &cfg);
        reference.run_cycles(k);
        let snap = reference.snapshot();
        reference.run_cycles(m);

        let mut resumed =
            Simulator::restore(programs.clone(), cfg.clone(), &snap).expect("restore succeeds");
        resumed.run_cycles(m);
        assert_identical(&mut reference, &mut resumed, &what);
    }
}

/// Sweeps the snapshot point cycle by cycle through a 24-cycle window for
/// every engine, so checkpoints land mid-burst (instructions in the FTQ,
/// latches and queues occupied) and mid-recovery (squashes and redirects in
/// flight), not just at whatever phase a round number hits.
#[test]
fn resume_is_identical_at_every_cycle_in_a_window() {
    const BASE: u64 = 2_000;
    const WINDOW: u64 = 24;
    const TAIL: u64 = 600;
    let cfg = SimConfig {
        // FLUSH keeps recoveries frequent, 2.16 keeps both ports busy.
        fetch_policy: FetchPolicy::icount(2, 16).with_flush(),
        ..SimConfig::default()
    };
    let programs = Workload::mem2().programs_shared(2004).expect("programs");
    for engine in FetchEngineKind::all_with_trace_cache() {
        // One serial reference walk, snapshotting at every cycle offset.
        let mut reference = build(&programs, engine, &cfg);
        reference.run_cycles(BASE);
        let mut snaps = Vec::new();
        for _ in 0..WINDOW {
            snaps.push(reference.snapshot());
            reference.run_cycles(1);
        }
        reference.run_cycles(TAIL);
        for (off, snap) in snaps.iter().enumerate() {
            let mut resumed =
                Simulator::restore(programs.clone(), cfg.clone(), snap).expect("restore succeeds");
            resumed.run_cycles(WINDOW - off as u64 + TAIL);
            assert_identical(
                &mut reference,
                &mut resumed,
                &format!("{engine} snapshot at cycle {}", BASE + off as u64),
            );
        }
    }
}

/// A restored simulator must itself be a valid snapshot source: chaining
/// snapshot → restore → snapshot → restore loses nothing.
#[test]
fn chained_restores_stay_identical() {
    let cfg = SimConfig {
        fetch_policy: FetchPolicy::miss_count(2, 8).with_stall(),
        ..SimConfig::default()
    };
    let programs = Workload::mix2().programs_shared(2004).expect("programs");
    let mut reference = build(&programs, FetchEngineKind::GskewFtb, &cfg);
    reference.run_cycles(4_000);

    let mut hops = build(&programs, FetchEngineKind::GskewFtb, &cfg);
    for _ in 0..4 {
        hops.run_cycles(1_000);
        let snap = hops.snapshot();
        hops = Simulator::restore(programs.clone(), cfg.clone(), &snap).expect("restore succeeds");
    }
    assert_identical(&mut reference, &mut hops, "4 × (1000 cycles + hop)");
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("snapshot_v{SNAPSHOT_VERSION}.bin"))
}

fn blessing() -> bool {
    std::env::var_os("SMT_BLESS").is_some_and(|v| v != "0")
}

/// Pins the serialized format itself: a fixed configuration snapshotted at
/// a fixed cycle must reproduce `tests/golden/snapshot_v3.bin` bit for bit.
/// Any layout change — field order, width, a new field — diffs here and
/// must come with a `SNAPSHOT_VERSION` bump and a re-bless
/// (`SMT_BLESS=1 cargo test --test checkpoint`).
#[test]
fn golden_snapshot_fixture_is_stable() {
    let cfg = SimConfig {
        fetch_policy: FetchPolicy::icount(2, 8),
        ..SimConfig::default()
    };
    let programs = Workload::mix2().programs_shared(2004).expect("programs");
    let mut sim = build(&programs, FetchEngineKind::GshareBtb, &cfg);
    sim.run_cycles(2_500);
    let snap = sim.snapshot();

    let path = fixture_path();
    if blessing() {
        std::fs::write(&path, snap.as_bytes()).expect("write golden snapshot fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot fixture {} ({e}).\n\
             Run `SMT_BLESS=1 cargo test --test checkpoint` and commit the result.",
            path.display()
        )
    });
    assert_eq!(
        snap.as_bytes(),
        &want[..],
        "snapshot byte image changed. If intentional, bump SNAPSHOT_VERSION \
         and re-bless with `SMT_BLESS=1 cargo test --test checkpoint`."
    );

    // The checked-in image must also restore and resume: the fixture guards
    // forward readability, not just byte stability.
    let mut restored = Simulator::restore(programs, cfg, &Snapshot::from_bytes(want))
        .expect("checked-in fixture restores");
    restored.run_cycles(500);
    sim.run_cycles(500);
    assert_eq!(sim.stats(), restored.stats(), "fixture resumes identically");
}

/// Corruption robustness: any snapshot image that is not bit-for-bit what
/// `snapshot()` produced must be *rejected* by `Simulator::restore` with an
/// `E0018`-family diagnostic — never a panic and never a silent misload.
/// The v3 trailing FNV-1a checksum makes this total: every single-byte
/// mutation flips the stored-vs-computed comparison, and every truncation
/// either loses checksum bytes or hands the verifier a short image.
#[test]
fn corrupted_snapshots_are_rejected() {
    let cfg = SimConfig {
        fetch_policy: FetchPolicy::icount(2, 8),
        ..SimConfig::default()
    };
    let programs = Workload::mix2().programs_shared(2004).expect("programs");
    let mut sim = build(&programs, FetchEngineKind::GskewFtb, &cfg);
    sim.run_cycles(1_500);
    let pristine = sim.snapshot().as_bytes().to_vec();

    let reject = |bytes: Vec<u8>, what: &str| {
        let err = Simulator::restore(programs.clone(), cfg.clone(), &Snapshot::from_bytes(bytes))
            .err()
            .unwrap_or_else(|| panic!("{what}: corrupted image restored without complaint"));
        assert_eq!(err.code, "E0018", "{what}: wrong diagnostic family: {err}");
    };

    // Single-byte mutations at splitmix64-drawn offsets: header bytes,
    // body bytes, and the checksum tail all get hit across 200 trials.
    let mut rng = 0xbad_5eed_u64;
    for trial in 0..200 {
        let off = (splitmix64(&mut rng) % pristine.len() as u64) as usize;
        let flip = (splitmix64(&mut rng) % 255) as u8 + 1; // never a no-op XOR
        let mut mutated = pristine.clone();
        mutated[off] ^= flip;
        reject(
            mutated,
            &format!("trial {trial}: byte {off} ^= {flip:#04x}"),
        );
    }

    // Truncations: every very-short prefix (degenerate headers, including
    // the empty image), plus random interior cuts.
    for len in 0..32.min(pristine.len()) {
        reject(
            pristine[..len].to_vec(),
            &format!("truncated to {len} bytes"),
        );
    }
    for trial in 0..50 {
        let len = (splitmix64(&mut rng) % (pristine.len() as u64 - 1)) as usize;
        reject(
            pristine[..len].to_vec(),
            &format!("trial {trial}: truncated to {len} bytes"),
        );
    }

    // And the pristine image still restores: the rejections above are not
    // a checksum scheme that rejects everything.
    Simulator::restore(
        programs.clone(),
        cfg.clone(),
        &Snapshot::from_bytes(pristine),
    )
    .expect("pristine image restores");
}
