//! Zero-allocation regression gate for the steady-state cycle loop.
//!
//! A counting global allocator wraps the system allocator; after a warmup
//! long enough for every queue to reach its pre-sized high-water mark, the
//! loop `predict → fetch → decode → rename → dispatch → issue → commit`
//! must run with **zero** heap allocations per cycle. Any new `Vec`,
//! `Box`, or `clone()` on the hot path fails here immediately.
//!
//! The counter is thread-local (const-initialised, so reading it never
//! allocates or races with the test harness's other worker threads): each
//! test only observes allocations made on its own thread, which is exactly
//! the thread its simulator steps on.
//!
//! The trace-cache engine is deliberately outside the gate: its fill unit
//! builds `Trace` objects (segment/direction vectors) at line-close by
//! design, which is inherent to that related-work comparator rather than to
//! the paper's three fetch engines measured by the figures.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder, Simulator};
use smtfetch::workloads::Workload;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation path (`alloc`, `alloc_zeroed`, `realloc`) on the
/// calling thread, then defers to the system allocator.
struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the only extra work is a
// const-initialised thread-local counter bump, which itself never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_so_far() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

/// Cycles to run before measuring: long enough for squashes, flushes, cache
/// misses and every queue's high-water mark to have occurred at least once.
const WARMUP_CYCLES: u64 = 20_000;
/// Cycles measured under the zero-allocation assertion.
const MEASURE_CYCLES: u64 = 5_000;

fn build(engine: FetchEngineKind, policy: FetchPolicy) -> Simulator {
    SimBuilder::new(
        Workload::mix2()
            .programs(2004)
            .expect("table 2 workloads always build"),
    )
    .fetch_engine(engine)
    .fetch_policy(policy)
    .build()
    .expect("valid configuration")
}

fn assert_steady_state_allocation_free(engine: FetchEngineKind, policy: FetchPolicy) {
    let mut sim = build(engine, policy);
    sim.run_cycles(WARMUP_CYCLES);
    let committed_before = sim.stats().total_committed();
    let before = allocations_so_far();
    sim.run_cycles(MEASURE_CYCLES);
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "{engine} under {policy}: {allocated} heap allocations in \
         {MEASURE_CYCLES} post-warmup cycles (steady state must be \
         allocation-free)"
    );
    // The measured window did real work — this was a live pipeline, not a
    // stalled machine trivially avoiding allocation.
    assert!(
        sim.stats().total_committed() > committed_before,
        "{engine} under {policy}: no instructions committed in the window"
    );
}

/// The paper's three fetch engines under the 1.X architecture (one thread,
/// one I-cache port per cycle).
#[test]
fn steady_state_is_allocation_free_1x() {
    for engine in [
        FetchEngineKind::GshareBtb,
        FetchEngineKind::GskewFtb,
        FetchEngineKind::Stream,
    ] {
        assert_steady_state_allocation_free(engine, FetchPolicy::icount(1, 8));
    }
}

/// The same engines under the 2.X architecture (two threads per cycle, two
/// ports, bank-conflict logic and merge).
#[test]
fn steady_state_is_allocation_free_2x() {
    for engine in [
        FetchEngineKind::GshareBtb,
        FetchEngineKind::GskewFtb,
        FetchEngineKind::Stream,
    ] {
        assert_steady_state_allocation_free(engine, FetchPolicy::icount(2, 8));
    }
}

/// The alternative priority metrics and the long-latency FLUSH mechanism
/// exercise distinct hot-path code (outstanding-miss accounting, pipeline
/// flush and rewind); they must be allocation-free too.
#[test]
fn steady_state_is_allocation_free_across_policies() {
    for policy in [
        FetchPolicy::round_robin(2, 8),
        FetchPolicy::br_count(2, 8),
        FetchPolicy::miss_count(2, 8),
        FetchPolicy::icount(2, 8).with_flush(),
    ] {
        assert_steady_state_allocation_free(FetchEngineKind::GshareBtb, policy);
    }
}

/// The event-driven scheduler stays inside the gate: drive the
/// memory-bound workload — whose ~100-cycle memory stalls produce the idle
/// windows the scheduler skips — across every fetch engine and every
/// policy kind (plain ICOUNT/RR and the STALL/FLUSH long-latency gates),
/// and require both that skipping actually engaged in the measured window
/// and that it allocated nothing. The horizon probes run *every* cycle (not
/// just idle ones), so this also gates the probes themselves.
#[test]
fn event_skip_heavy_steady_state_is_allocation_free() {
    for engine in [
        FetchEngineKind::GshareBtb,
        FetchEngineKind::GskewFtb,
        FetchEngineKind::Stream,
    ] {
        for policy in [
            FetchPolicy::icount(1, 8).with_flush(),
            FetchPolicy::icount(2, 8).with_stall(),
            FetchPolicy::round_robin(2, 8).with_stall(),
            FetchPolicy::br_count(2, 8).with_flush(),
            FetchPolicy::miss_count(2, 8),
        ] {
            let mut sim = SimBuilder::new(
                Workload::mem2()
                    .programs(2004)
                    .expect("table 2 workloads always build"),
            )
            .fetch_engine(engine)
            .fetch_policy(policy)
            .build()
            .expect("valid configuration");
            sim.run_cycles(WARMUP_CYCLES);
            let skipped_before = sim.stats().skipped_cycles();
            let before = allocations_so_far();
            sim.run_cycles(MEASURE_CYCLES);
            let allocated = allocations_so_far() - before;
            assert_eq!(
                allocated, 0,
                "{engine} under {policy}: {allocated} heap allocations in \
                 {MEASURE_CYCLES} skip-heavy post-warmup cycles"
            );
            assert!(
                sim.stats().skipped_cycles() > skipped_before,
                "{engine} under {policy}: the scheduler never engaged in the \
                 measured window"
            );
        }
    }
}

/// Checkpoint/restore must hand back a simulator that re-enters the
/// zero-allocation steady state. `Simulator::restore` rebuilds the machine
/// and overwrites state **in place** (every pre-sized buffer keeps its
/// allocation; loads only check geometry), so once warmed, a restored
/// simulator's cycle loop allocates exactly as much as the original: zero.
/// Snapshotting and restoring themselves may allocate freely — only the
/// resumed loop is under the gate.
#[test]
fn restored_steady_state_is_allocation_free() {
    use smtfetch::core::Simulator;
    for engine in [
        FetchEngineKind::GshareBtb,
        FetchEngineKind::GskewFtb,
        FetchEngineKind::Stream,
    ] {
        let policy = FetchPolicy::icount(2, 8);
        let programs = Workload::mix2()
            .programs_shared(2004)
            .expect("table 2 workloads always build");
        let cfg = smtfetch::core::SimConfig {
            fetch_policy: policy,
            ..smtfetch::core::SimConfig::default()
        };
        let mut sim = SimBuilder::new_shared(programs.clone())
            .fetch_engine(engine)
            .config(cfg.clone())
            .build()
            .expect("valid configuration");
        sim.run_cycles(WARMUP_CYCLES);
        // Snapshot + restore are allowed to allocate; the gate starts after.
        let snap = sim.snapshot();
        drop(sim);
        let mut resumed =
            Simulator::restore(programs, cfg, &snap).expect("snapshot restores cleanly");
        let committed_before = resumed.stats().total_committed();
        let before = allocations_so_far();
        resumed.run_cycles(MEASURE_CYCLES);
        let allocated = allocations_so_far() - before;
        assert_eq!(
            allocated, 0,
            "{engine} under {policy}: {allocated} heap allocations in \
             {MEASURE_CYCLES} post-restore cycles (a restored simulator must \
             re-enter the allocation-free steady state)"
        );
        assert!(
            resumed.stats().total_committed() > committed_before,
            "{engine} under {policy}: no instructions committed after restore"
        );
    }
}

/// The counter itself works: an intentional allocation is observed. Guards
/// against the gate silently passing because counting broke.
#[test]
fn allocation_counter_detects_allocations() {
    let before = allocations_so_far();
    let v: Vec<u64> = Vec::with_capacity(64);
    let after = allocations_so_far();
    drop(v);
    assert!(after > before, "counting allocator missed a Vec allocation");
}
