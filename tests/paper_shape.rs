//! Qualitative reproduction checks: the orderings and crossovers the paper's
//! evaluation reports must hold in this simulator (with generous margins —
//! absolute numbers are not expected to match a 2004 testbed).

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder, SimStats};
use smtfetch::workloads::Workload;

const WARMUP: u64 = 20_000;
const MEASURE: u64 = 60_000;

fn run(w: &Workload, e: FetchEngineKind, p: FetchPolicy) -> SimStats {
    let mut sim = SimBuilder::new(w.programs(2004).expect("programs"))
        .fetch_engine(e)
        .fetch_policy(p)
        .build()
        .expect("build");
    sim.run_cycles(WARMUP);
    sim.reset_stats();
    sim.run_cycles(MEASURE).clone()
}

/// §3.1/Figure 2: a single-thread gshare+BTB front-end badly underuses the
/// fetch bandwidth (IPFC well under the width of 8) and widening it to 16
/// barely helps, because blocks are limited to one basic block.
#[test]
fn single_thread_gshare_underuses_bandwidth() {
    let w = Workload::mix2();
    let n8 = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 8));
    let n16 = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 16));
    assert!(
        n8.ipfc() < 6.0,
        "1.8 IPFC {:.2} should be far below 8",
        n8.ipfc()
    );
    assert!(
        n16.ipfc() < n8.ipfc() * 1.35,
        "1.16 ({:.2}) should gain little over 1.8 ({:.2}) for gshare+BTB",
        n16.ipfc(),
        n8.ipfc()
    );
}

/// §3.2/Figure 4: fetching from two threads raises fetch throughput.
#[test]
fn dual_thread_fetch_raises_ipfc() {
    let w = Workload::mix2();
    let one = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 8));
    let two = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
    assert!(
        two.ipfc() > one.ipfc() * 1.02,
        "2.8 IPFC {:.2} must beat 1.8 IPFC {:.2}",
        two.ipfc(),
        one.ipfc()
    );
}

/// §3.3/Figures 5–6: the high-performance front-ends out-fetch gshare+BTB
/// when fetching from a single thread.
#[test]
fn high_performance_engines_outfetch_gshare() {
    for w in [Workload::ilp2(), Workload::ilp4()] {
        let base = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 16));
        for e in [FetchEngineKind::GskewFtb, FetchEngineKind::Stream] {
            let s = run(&w, e, FetchPolicy::icount(1, 16));
            assert!(
                s.ipfc() > base.ipfc() * 1.05,
                "{} on {}: {e} IPFC {:.2} vs gshare {:.2}",
                w.name(),
                e,
                s.ipfc(),
                base.ipfc()
            );
        }
    }
}

/// Figure 5(b): on ILP workloads, fetching from two threads beats one at
/// width 8 (fetch supply is the bottleneck).
#[test]
fn ilp_workloads_prefer_dual_fetch_at_width_8() {
    let w = Workload::ilp4();
    let one = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 8));
    let two = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
    assert!(
        two.ipc() > one.ipc() * 1.05,
        "4_ILP gshare: 2.8 IPC {:.2} must beat 1.8 IPC {:.2}",
        two.ipc(),
        one.ipc()
    );
}

/// Figure 6(b): a high-performance engine fetching 16 from ONE thread keeps
/// up with the complex dual-thread configuration of the baseline engine.
#[test]
fn wide_single_thread_matches_dual_thread_baseline() {
    let w = Workload::ilp4();
    let baseline_2_8 = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
    for e in [FetchEngineKind::GskewFtb, FetchEngineKind::Stream] {
        let s = run(&w, e, FetchPolicy::icount(1, 16));
        assert!(
            s.ipc() > baseline_2_8.ipc() * 0.95,
            "{e} 1.16 IPC {:.2} vs gshare 2.8 IPC {:.2}",
            s.ipc(),
            baseline_2_8.ipc()
        );
    }
}

/// §5.2/Figure 7(b): on memory-bounded (MIX) workloads, fetching from two
/// threads is *counterproductive* — the paper's headline surprise.
#[test]
fn mix_workloads_lose_from_dual_fetch() {
    for w in [Workload::mix2(), Workload::mix4()] {
        for e in FetchEngineKind::all() {
            let one = run(&w, e, FetchPolicy::icount(1, 8));
            let two = run(&w, e, FetchPolicy::icount(2, 8));
            assert!(
                one.ipc() > two.ipc() * 0.98,
                "{} {e}: 1.8 IPC {:.2} should not lose to 2.8 IPC {:.2}",
                w.name(),
                one.ipc(),
                two.ipc()
            );
        }
    }
}

/// Figure 7(a): even where 2.8 loses IPC, it still *fetches* more — the gap
/// between fetch and commit throughput is the paper's §5.2 argument.
#[test]
fn dual_fetch_still_wins_ipfc_on_mix() {
    let w = Workload::mix4();
    let one = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 8));
    let two = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
    assert!(two.ipfc() > one.ipfc());
}

/// MEM threads really behave memory-bound: a 2_MEM workload commits far
/// below an ILP one.
#[test]
fn mem_workloads_are_memory_bound() {
    let mem = run(
        &Workload::mem2(),
        FetchEngineKind::GskewFtb,
        FetchPolicy::icount(1, 8),
    );
    let ilp = run(
        &Workload::ilp2(),
        FetchEngineKind::GskewFtb,
        FetchPolicy::icount(1, 8),
    );
    assert!(
        mem.ipc() * 3.0 < ilp.ipc(),
        "2_MEM IPC {:.2} vs 2_ILP IPC {:.2}",
        mem.ipc(),
        ilp.ipc()
    );
}

/// Fetch-block sizes order as designed: stream blocks ≥ FTB blocks ≥
/// BTB basic blocks (measured through delivered IPFC on ILP code at 1.16,
/// where block length is the binding constraint).
#[test]
fn block_length_ordering() {
    let w = Workload::ilp4();
    let btb = run(&w, FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 16));
    let ftb = run(&w, FetchEngineKind::GskewFtb, FetchPolicy::icount(1, 16));
    let stream = run(&w, FetchEngineKind::Stream, FetchPolicy::icount(1, 16));
    assert!(
        ftb.ipfc() > btb.ipfc(),
        "ftb {:.2} vs btb {:.2}",
        ftb.ipfc(),
        btb.ipfc()
    );
    assert!(
        stream.ipfc() > btb.ipfc() * 1.1,
        "stream {:.2} vs btb {:.2}",
        stream.ipfc(),
        btb.ipfc()
    );
}
