//! Properties of the content-hash memo layer (DESIGN.md §16): a memoized
//! result is **byte-identical** to a fresh cold run for random
//! configurations across every engine and policy family, the result codec
//! is bit-exact on adversarial floats, and the bounded cache's FIFO
//! eviction is deterministic.

use smtfetch::core::{CellKey, FetchEngineKind, FetchPolicy, SimConfig};
use smtfetch::experiments::runner::run_with_config;
use smtfetch::experiments::{
    decode_result, encode_result, run_memoized_with_config, BoundedCache, CacheOutcome, RunLength,
    RunResult,
};
use smtfetch::workloads::{Srng, Workload};

/// Draws a random-but-valid `SimConfig` for `threads` hardware contexts:
/// a policy from every family, plus jittered front-end geometry so the
/// config hash varies beyond the policy bits. Resamples until the
/// semantic validator accepts the draw.
fn random_config(rng: &mut Srng, threads: usize) -> SimConfig {
    loop {
        let n = rng.range_u32(1, 3);
        let x = *[4, 8, 16].get(rng.range(0, 3) as usize).unwrap_or(&8);
        let policy = match rng.range(0, 6) {
            0 => FetchPolicy::icount(n, x),
            1 => FetchPolicy::icount(n, x).with_stall(),
            2 => FetchPolicy::icount(n, x).with_flush(),
            3 => FetchPolicy::round_robin(n, x),
            4 => FetchPolicy::br_count(n, x),
            _ => FetchPolicy::miss_count(n, x),
        };
        let mut cfg = SimConfig {
            fetch_policy: policy,
            ..SimConfig::default()
        };
        cfg.ftq_depth = rng.range_u32(2, 7);
        cfg.fetch_buffer = rng.range_u32(2, 7) * 8;
        if cfg.validate_for_threads(threads).is_empty() {
            return cfg;
        }
    }
}

/// The tentpole property: for random configurations — every engine, every
/// policy family, jittered geometry and run lengths — the memoized path
/// (warm-start snapshots + result cache) returns a `RunResult` that is
/// byte-identical under the exact codec to a fresh cold run, and a repeat
/// query is a pure cache hit with the same bytes.
#[test]
fn memoized_result_is_byte_identical_to_fresh_run() {
    let mut rng = Srng::new(0x5EED_CE11);
    let workloads = [Workload::mix2(), Workload::ilp_suite()[0].clone()];
    let engines = FetchEngineKind::all();
    for trial in 0..12 {
        let workload = &workloads[rng.range(0, workloads.len() as u64) as usize];
        let engine = engines[rng.range(0, engines.len() as u64) as usize];
        let cfg = random_config(&mut rng, workload.num_threads());
        let len = RunLength {
            warmup_cycles: rng.range(0, 800),
            measure_cycles: rng.range(200, 1_500),
        };

        let fresh = run_with_config(workload, engine, cfg.clone(), len);
        let (memoized, _) = run_memoized_with_config(workload, engine, &cfg, len);
        assert_eq!(
            encode_result(&fresh),
            encode_result(&memoized),
            "trial {trial}: memoized != fresh for {} / {engine} / {} @ {len:?}",
            workload.name(),
            cfg.fetch_policy,
        );

        let (repeat, outcome) = run_memoized_with_config(workload, engine, &cfg, len);
        assert_eq!(outcome, CacheOutcome::Hit, "trial {trial}: repeat must hit");
        assert_eq!(encode_result(&memoized), encode_result(&repeat));
    }
}

/// The result codec round-trips adversarial float bit patterns exactly:
/// NaN payloads, infinities, signed zero, subnormals — the decoded struct
/// re-encodes to the same bytes, so "byte-identical" is a meaningful
/// equality for cached results.
#[test]
fn result_codec_is_bit_exact_on_adversarial_floats() {
    let adversarial = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        f64::MIN_POSITIVE / 2.0, // subnormal
        f64::MAX,
        1.0 / 3.0,
    ];
    let mut rng = Srng::new(0x5EED_C0DE);
    for trial in 0..64 {
        let threads = rng.range(1, 9) as usize;
        let workload = format!("{}_ILP", rng.range(2, 9));
        let skipped = rng.next_u64();
        let mut float = |i: usize| -> f64 {
            if rng.chance(0.3) {
                adversarial[(trial + i) % adversarial.len()]
            } else {
                f64::from_bits(rng.next_u64())
            }
        };
        let result = RunResult {
            workload,
            engine: "trace cache".to_string(),
            policy: "ICOUNT-FLUSH.2.8".to_string(),
            ipfc: float(0),
            ipc: float(1),
            branch_accuracy: float(2),
            wrong_path: float(3),
            frac_ge4: float(4),
            frac_ge8: float(5),
            frac_eq8: float(6),
            frac_ge16: float(7),
            per_thread_ipc: (0..threads).map(|i| float(8 + i)).collect(),
            fairness: float(16),
            skipped_cycles: skipped,
        };
        let line = encode_result(&result);
        let decoded = decode_result(&line).expect("codec accepts its own output");
        assert_eq!(
            encode_result(&decoded),
            line,
            "trial {trial}: re-encode changed bytes"
        );
        assert_eq!(decoded.ipc.to_bits(), result.ipc.to_bits());
        assert_eq!(
            decoded
                .per_thread_ipc
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            result
                .per_thread_ipc
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>()
        );
    }
}

/// FIFO eviction in the bounded cache is deterministic: insertion order
/// decides the victim, a re-inserted key keeps its queue position, and the
/// counters account every event.
#[test]
fn bounded_cache_fifo_eviction_is_deterministic() {
    let key = |seed: u64| -> CellKey {
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::Stream,
            "2_ILP",
            seed,
            100,
            400,
        )
    };
    let mut cache: BoundedCache<u64> = BoundedCache::new(3);
    for seed in 0..3 {
        cache.insert(key(seed), seed);
    }
    assert_eq!(cache.snapshot().len, 3);

    // Refresh the oldest key's value: it must keep its queue position.
    cache.insert(key(0), 100);
    assert_eq!(cache.get(&key(0)), Some(100));
    assert_eq!(cache.snapshot().len, 3);
    assert_eq!(cache.snapshot().counters.evictions, 0);

    // The fourth distinct key evicts the oldest (key 0, refreshed in
    // place, not repositioned).
    cache.insert(key(3), 3);
    assert_eq!(cache.snapshot().counters.evictions, 1);
    assert_eq!(cache.get(&key(0)), None, "FIFO victim is the oldest key");
    assert_eq!(cache.get(&key(1)), Some(1));

    // Two more: victims follow insertion order exactly.
    cache.insert(key(4), 4);
    cache.insert(key(5), 5);
    assert_eq!(cache.get(&key(1)), None);
    assert_eq!(cache.get(&key(2)), None);
    assert_eq!(cache.get(&key(3)), Some(3));
    assert_eq!(cache.snapshot().counters.evictions, 3);

    // The whole history replays identically: determinism of the policy.
    let mut replay: BoundedCache<u64> = BoundedCache::new(3);
    for seed in 0..3 {
        replay.insert(key(seed), seed);
    }
    replay.insert(key(0), 100);
    for seed in 3..6 {
        replay.insert(key(seed), seed);
    }
    let final_keys = |c: &mut BoundedCache<u64>| -> Vec<bool> {
        (0..6).map(|s| c.get(&key(s)).is_some()).collect()
    };
    assert_eq!(final_keys(&mut cache), final_keys(&mut replay));
}

/// `CellKey` separates every dimension it hashes: flipping any one field
/// of the key changes the content hash (no accidental aliasing between,
/// say, warmup and measure cycles).
#[test]
fn cell_key_hash_separates_dimensions() {
    let base = CellKey::new(
        &SimConfig::default(),
        FetchEngineKind::Stream,
        "4_ILP",
        2004,
        2_000,
        10_000,
    );
    let variants = [
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::GshareBtb,
            "4_ILP",
            2004,
            2_000,
            10_000,
        ),
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::Stream,
            "4_MIX",
            2004,
            2_000,
            10_000,
        ),
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::Stream,
            "4_ILP",
            2005,
            2_000,
            10_000,
        ),
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::Stream,
            "4_ILP",
            2004,
            10_000,
            2_000,
        ),
        CellKey::new(
            &SimConfig {
                fetch_policy: FetchPolicy::icount(2, 8),
                ..SimConfig::default()
            },
            FetchEngineKind::Stream,
            "4_ILP",
            2004,
            2_000,
            10_000,
        ),
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(base.hash(), v.hash(), "variant {i} aliased the base key");
        assert_ne!(&base, v);
    }
    // And the line codec round-trips the key exactly.
    let parsed = CellKey::parse(&base.to_line()).expect("parse own rendering");
    assert_eq!(parsed, base);
    assert_eq!(parsed.hash(), base.hash());
}
