//! Property-based tests (proptest) on the substrates' invariants.

use proptest::prelude::*;

use smtfetch::bpred::{Btb, Ftb, GlobalHistory, Gskew, ObservedEnd, ReturnStack, SetAssoc};
use smtfetch::isa::{Addr, BranchKind};
use smtfetch::mem::{Cache, CacheConfig, MshrFile, MshrOutcome};
use smtfetch::workloads::{BenchmarkProfile, ProgramBuilder, Walker, Workload};

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        name: "P",
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        banks: 2,
        hit_latency: 0,
    })
}

proptest! {
    /// A cache access immediately after filling the same line always hits,
    /// no matter what other fills happened before.
    #[test]
    fn cache_fill_then_access_hits(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..200)) {
        let mut c = small_cache();
        for &a in &addrs {
            c.fill(Addr::new(a), false);
            prop_assert!(c.access(Addr::new(a), false), "just-filled line missed");
        }
    }

    /// LRU never evicts the line touched most recently.
    #[test]
    fn cache_mru_line_survives_one_fill(base in 0u64..1u64 << 18, probe in 0u64..1u64 << 18) {
        let mut c = small_cache();
        let probe = Addr::new(probe & !63);
        c.fill(probe, false);
        c.access(probe, false); // make it MRU
        c.fill(Addr::new(base & !63), false);
        prop_assert!(c.probe(probe), "MRU line evicted by a single fill");
    }

    /// The RAS checkpoint/restore round-trips a push-pop speculation window.
    #[test]
    fn ras_checkpoint_roundtrip(
        depth in 1usize..40,
        spec_ops in proptest::collection::vec(any::<bool>(), 0..8),
        addrs in proptest::collection::vec(4u64..1u64 << 30, 40),
    ) {
        let mut ras = ReturnStack::new(64);
        for &a in addrs.iter().take(depth) {
            ras.push(Addr::new(a & !3));
        }
        let top_before = ras.peek();
        let depth_before = ras.depth();
        let ckpt = ras.checkpoint();
        // A short wrong-path burst of pushes and pops.
        for (i, &push) in spec_ops.iter().enumerate() {
            if push {
                ras.push(Addr::new(0xdead_0000 + i as u64 * 4));
            } else {
                let _ = ras.pop();
            }
        }
        ras.restore(ckpt);
        prop_assert_eq!(ras.depth(), depth_before);
        prop_assert_eq!(ras.peek(), top_before);
    }

    /// gskew's majority vote equals at least two of its bank votes.
    #[test]
    fn gskew_majority_is_consistent(
        pcs in proptest::collection::vec(0u64..1u64 << 22, 1..60),
        outcomes in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let mut g = Gskew::new(1024);
        let mut h = GlobalHistory::new(15);
        for (i, &pc) in pcs.iter().enumerate() {
            let pc = Addr::new(pc & !3);
            let votes = g.votes(pc, h);
            let pred = g.predict(pc, h);
            let agreeing = votes.iter().filter(|&&v| v == pred).count();
            prop_assert!(agreeing >= 2, "prediction disagrees with majority");
            g.update(pc, h, outcomes[i]);
            h.push(outcomes[i]);
        }
    }

    /// A generic set-associative table never reports a tag that was not
    /// inserted, and always finds one of the last `ways` tags of a set.
    #[test]
    fn set_assoc_finds_recent_inserts(tags in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut t: SetAssoc<u64> = SetAssoc::new(16, 4);
        for (i, &tag) in tags.iter().enumerate() {
            t.insert(0, tag, i as u64);
            prop_assert_eq!(t.peek(0, tag), Some(&(i as u64)));
        }
        // A tag never inserted is never found.
        prop_assert!(t.peek(0, 10_000).is_none());
    }

    /// The BTB only ever returns targets that were recorded for that PC.
    #[test]
    fn btb_returns_recorded_targets(
        records in proptest::collection::vec((0u64..1u64 << 16, 4u64..1u64 << 20), 1..100)
    ) {
        let mut btb = Btb::new(256, 4);
        let mut last = std::collections::HashMap::new();
        for &(pc, tgt) in &records {
            let pc = Addr::new(pc & !3);
            let tgt = Addr::new(tgt & !3);
            btb.record_taken(pc, tgt, BranchKind::Jump);
            last.insert(pc, tgt);
        }
        for (&pc, &tgt) in &last {
            if let Some(e) = btb.peek(pc) {
                prop_assert_eq!(e.target, tgt, "stale target for {}", pc);
            }
        }
    }

    /// FTB blocks never exceed the configured maximum length and never have
    /// zero length.
    #[test]
    fn ftb_blocks_bounded(
        dists in proptest::collection::vec(0u64..100, 1..60),
        start in 0u64..1u64 << 20,
    ) {
        let mut ftb = Ftb::new(64, 4, 16);
        let start = Addr::new(start & !3);
        for &d in &dists {
            ftb.record_taken(start, ObservedEnd {
                branch_pc: start.add_insts(d),
                kind: BranchKind::Cond,
                target: Addr::new(0x9000),
            });
            if let Some(p) = ftb.lookup(start) {
                prop_assert!(p.len >= 1 && p.len <= 16, "block length {}", p.len);
            }
        }
    }

    /// MSHR occupancy never exceeds capacity and always drains by the last
    /// completion time.
    #[test]
    fn mshr_occupancy_bounded(
        reqs in proptest::collection::vec((0u64..1u64 << 14, 1u64..300), 1..80)
    ) {
        let mut m = MshrFile::new(4, 64);
        let mut horizon = 0;
        for (i, &(addr, lat)) in reqs.iter().enumerate() {
            let now = i as u64;
            let ready = now + lat;
            match m.allocate(Addr::new(addr), now, ready) {
                MshrOutcome::Allocated | MshrOutcome::Merged(_) => {}
                MshrOutcome::Full => {}
            }
            prop_assert!(m.outstanding(now) <= 4);
            horizon = horizon.max(ready);
        }
        prop_assert_eq!(m.outstanding(horizon), 0);
    }

    /// Walkers are deterministic for every benchmark and seed, and the
    /// instruction stream is contiguous (each next_pc is the next pc).
    #[test]
    fn walker_streams_are_contiguous(seed in 0u64..500, bench in 0usize..12) {
        let profile = BenchmarkProfile::all()[bench].clone();
        let prog = ProgramBuilder::new(profile).seed(seed).build();
        let mut w = Walker::new(prog, 0);
        let mut expected = w.pc();
        for _ in 0..2_000 {
            let d = w.next_inst();
            prop_assert_eq!(d.pc, expected);
            expected = d.next_pc;
        }
    }

    /// Workload programs never overlap in the address space.
    #[test]
    fn workload_programs_disjoint(seed in 0u64..64) {
        let progs = Workload::mix4().programs(seed).unwrap();
        for (i, a) in progs.iter().enumerate() {
            for b in progs.iter().skip(i + 1) {
                let disjoint = a.end() <= b.base() || b.end() <= a.base();
                prop_assert!(disjoint, "code overlap: {} and {}", a.name(), b.name());
            }
        }
    }
}
