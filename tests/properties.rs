//! Randomized property tests on the substrates' invariants.
//!
//! Dependency-free: each property drives its subject with the workspace's
//! own deterministic [`Srng`] (splitmix64) over many seeded iterations, so
//! the suite runs identically everywhere (no proptest, no shrinking — a
//! failure message carries the seed that produced it).

use std::collections::{BTreeMap, VecDeque};

use smtfetch::bpred::{
    Btb, CounterTable, Ftb, GlobalHistory, Gskew, ObservedEnd, ReturnStack, SetAssoc, TwoBit,
};
use smtfetch::core::{
    BranchInfo, FetchEngineKind, FetchPolicy, InFlightCtl, SimBuilder, SimConfig, SimStats, Window,
};
use smtfetch::experiments::{sweep_indexed, Jobs};
use smtfetch::isa::{Addr, BranchKind, DynInst, InstClass};
use smtfetch::mem::{Cache, CacheConfig, MshrFile, MshrOutcome};
use smtfetch::workloads::{BenchmarkProfile, ProgramBuilder, Srng, Walker, Workload};

/// Iterations per property (each with a distinct derived seed).
const CASES: u64 = 64;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        name: "P",
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        banks: 2,
        hit_latency: 0,
    })
    .unwrap()
}

/// A cache access immediately after filling the same line always hits,
/// no matter what other fills happened before.
#[test]
fn cache_fill_then_access_hits() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x11 ^ case);
        let mut c = small_cache();
        let n = 1 + rng.range(0, 200);
        for _ in 0..n {
            let a = Addr::new(rng.range(0, 1 << 20));
            c.fill(a, false);
            assert!(c.access(a, false), "just-filled line missed (case {case})");
        }
    }
}

/// LRU never evicts the line touched most recently.
#[test]
fn cache_mru_line_survives_one_fill() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x22 ^ case);
        let mut c = small_cache();
        let probe = Addr::new(rng.range(0, 1 << 18) & !63);
        c.fill(probe, false);
        c.access(probe, false); // make it MRU
        c.fill(Addr::new(rng.range(0, 1 << 18) & !63), false);
        assert!(
            c.probe(probe),
            "MRU line evicted by a single fill (case {case})"
        );
    }
}

/// The RAS checkpoint/restore round-trips a push-pop speculation window.
#[test]
fn ras_checkpoint_roundtrip() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x33 ^ case);
        let depth = 1 + rng.range(0, 39) as usize;
        let mut ras = ReturnStack::new(64).unwrap();
        for _ in 0..depth {
            ras.push(Addr::new((4 + rng.range(0, 1 << 30)) & !3));
        }
        let top_before = ras.peek();
        let depth_before = ras.depth();
        let ckpt = ras.checkpoint();
        // A short wrong-path burst of pushes and pops.
        let burst = rng.range(0, 8);
        for i in 0..burst {
            if rng.chance(0.5) {
                ras.push(Addr::new(0xdead_0000 + i * 4));
            } else {
                let _ = ras.pop();
            }
        }
        ras.restore(ckpt);
        assert_eq!(ras.depth(), depth_before, "case {case}");
        assert_eq!(ras.peek(), top_before, "case {case}");
    }
}

/// The bit-packed counter table is observably identical to the plain
/// byte-array reference model: over random interleaved update/read
/// sequences on random power-of-two geometries, every read agrees.
#[test]
fn packed_counter_table_matches_byte_reference() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x2b17 ^ case);
        // Sizes straddle the 32-counters-per-word boundary on purpose.
        let entries = 1usize << rng.range(0, 12);
        let mut packed = CounterTable::new(entries).unwrap();
        let mut reference: Vec<TwoBit> = vec![TwoBit::default(); entries];
        let ops = 1 + rng.range(0, 2_000);
        for _ in 0..ops {
            // Indices beyond the table exercise the wrap-around path too.
            let index = rng.range(0, 4 * entries as u64);
            if rng.chance(0.7) {
                let taken = rng.chance(0.5);
                packed.update(index, taken);
                reference[index as usize & (entries - 1)].update(taken);
            }
            let got = packed.get(index);
            let want = reference[index as usize & (entries - 1)];
            assert_eq!(got, want, "index {index} of {entries} (case {case})");
        }
        // Full sweep at the end: no neighbour was silently disturbed.
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(packed.get(i as u64), *want, "sweep {i} (case {case})");
        }
    }
}

/// gskew's majority vote equals at least two of its bank votes.
#[test]
fn gskew_majority_is_consistent() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x44 ^ case);
        let mut g = Gskew::new(1024).unwrap();
        let mut h = GlobalHistory::new(15);
        let n = 1 + rng.range(0, 60);
        for _ in 0..n {
            let pc = Addr::new(rng.range(0, 1 << 22) & !3);
            let outcome = rng.chance(0.5);
            let votes = g.votes(pc, h);
            let pred = g.predict(pc, h);
            let agreeing = votes.iter().filter(|&&v| v == pred).count();
            assert!(
                agreeing >= 2,
                "prediction disagrees with majority (case {case})"
            );
            g.update(pc, h, outcome);
            h.push(outcome);
        }
    }
}

/// A generic set-associative table never reports a tag that was not
/// inserted, and always finds one of the last `ways` tags of a set.
#[test]
fn set_assoc_finds_recent_inserts() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x55 ^ case);
        let mut t: SetAssoc<u64> = SetAssoc::new(16, 4).unwrap();
        let n = 1 + rng.range(0, 100);
        for i in 0..n {
            let tag = rng.range(0, 1000);
            t.insert(0, tag, i);
            assert_eq!(t.peek(0, tag), Some(&i), "case {case}");
        }
        // A tag never inserted is never found.
        assert!(t.peek(0, 10_000).is_none(), "case {case}");
    }
}

/// The BTB only ever returns targets that were recorded for that PC.
#[test]
fn btb_returns_recorded_targets() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x66 ^ case);
        let mut btb = Btb::new(256, 4).unwrap();
        let mut last = BTreeMap::new();
        let n = 1 + rng.range(0, 100);
        for _ in 0..n {
            let pc = Addr::new(rng.range(0, 1 << 16) & !3);
            let tgt = Addr::new((4 + rng.range(0, 1 << 20)) & !3);
            btb.record_taken(pc, tgt, BranchKind::Jump);
            last.insert(pc, tgt);
        }
        for (&pc, &tgt) in &last {
            if let Some(e) = btb.peek(pc) {
                assert_eq!(e.target, tgt, "stale target for {pc} (case {case})");
            }
        }
    }
}

/// FTB blocks never exceed the configured maximum length and never have
/// zero length.
#[test]
fn ftb_blocks_bounded() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x77 ^ case);
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(rng.range(0, 1 << 20) & !3);
        let n = 1 + rng.range(0, 60);
        for _ in 0..n {
            ftb.record_taken(
                start,
                ObservedEnd {
                    branch_pc: start.add_insts(rng.range(0, 100)),
                    kind: BranchKind::Cond,
                    target: Addr::new(0x9000),
                },
            );
            if let Some(p) = ftb.lookup(start) {
                assert!(
                    p.len >= 1 && p.len <= 16,
                    "block length {} (case {case})",
                    p.len
                );
            }
        }
    }
}

/// MSHR occupancy never exceeds capacity and always drains by the last
/// completion time.
#[test]
fn mshr_occupancy_bounded() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x88 ^ case);
        let mut m = MshrFile::new(4, 64).unwrap();
        let mut horizon = 0;
        let n = 1 + rng.range(0, 80);
        for now in 0..n {
            let addr = Addr::new(rng.range(0, 1 << 14));
            let ready = now + 1 + rng.range(0, 299);
            match m.allocate(addr, now, ready) {
                MshrOutcome::Allocated | MshrOutcome::Merged(_) => {}
                MshrOutcome::Full => {}
            }
            assert!(m.outstanding(now) <= 4, "case {case}");
            horizon = horizon.max(ready);
        }
        assert_eq!(m.outstanding(horizon), 0, "case {case}");
    }
}

/// Walkers are deterministic for every benchmark and seed, and the
/// instruction stream is contiguous (each next_pc is the next pc).
#[test]
fn walker_streams_are_contiguous() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x99 ^ case);
        let seed = rng.range(0, 500);
        let profiles = BenchmarkProfile::all();
        let profile = profiles[rng.range(0, profiles.len() as u64) as usize].clone();
        let prog = ProgramBuilder::new(profile).seed(seed).build();
        let mut w = Walker::new(prog, 0);
        let mut expected = w.pc();
        for _ in 0..2_000 {
            let d = w.next_inst();
            assert_eq!(d.pc, expected, "case {case}");
            expected = d.next_pc;
        }
    }
}

/// Workload programs never overlap in the address space.
#[test]
fn workload_programs_disjoint() {
    for seed in 0..CASES {
        let progs = Workload::mix4().programs(seed).unwrap();
        for (i, a) in progs.iter().enumerate() {
            for b in progs.iter().skip(i + 1) {
                let disjoint = a.end() <= b.base() || b.end() <= a.base();
                assert!(disjoint, "code overlap: {} and {}", a.name(), b.name());
            }
        }
    }
}

/// Runs the baseline engine on `2_MIX` for a few thousand cycles and
/// returns the full statistics snapshot.
fn stats_for_seed(seed: u64) -> SimStats {
    let programs = Workload::mix2()
        .programs(seed)
        .expect("table 2 workloads always build");
    let mut sim = SimBuilder::new(programs)
        .fetch_engine(FetchEngineKind::GshareBtb)
        .fetch_policy(FetchPolicy::icount(1, 8))
        .build()
        .expect("default config builds");
    sim.run_cycles(5_000).clone()
}

/// Same-seed simulations are bit-identical — including when the two reruns
/// execute concurrently on different sweep worker threads. `SimStats` is
/// all integer counters, so `==` is exact; any divergence would expose
/// hidden shared state or scheduling sensitivity in the simulator.
#[test]
fn same_seed_runs_identical_across_worker_threads() {
    for case in 0..4u64 {
        let seed = 0xbb ^ case;
        let serial = stats_for_seed(seed);
        let pair = sweep_indexed(2, Jobs::new(2).unwrap(), |_| stats_for_seed(seed));
        assert_eq!(
            pair[0], pair[1],
            "same-seed runs diverged across workers (seed {seed})"
        );
        assert_eq!(
            serial, pair[0],
            "parallel rerun diverged from the serial run (seed {seed})"
        );
    }
}

/// splitmix64-driven variant: random *validated* configurations are just as
/// deterministic — for each config the validator passes, two concurrent
/// same-seed runs on separate worker threads produce identical statistics.
#[test]
#[allow(clippy::field_reassign_with_default)] // mutation-style by design
fn random_valid_configs_run_deterministically() {
    let mut rng = Srng::new(0xcc);
    let mut checked = 0u32;
    for case in 0..40u64 {
        if checked >= 8 {
            break;
        }
        // Mutate a few axes the validator usually accepts; invalid draws
        // are skipped (soundness of the gate is covered below).
        let mut cfg = SimConfig::default();
        cfg.fetch_policy = FetchPolicy::icount(1 + rng.range(0, 2) as u32, *rng.pick(&[8, 16]));
        match rng.range(0, 5) {
            0 => cfg.fetch_buffer = *rng.pick(&[16, 32, 48]),
            1 => cfg.ftq_depth = 1 + rng.range(0, 5) as u32,
            2 => cfg.predictor.gshare_entries = 1 << rng.range(10, 16),
            3 => cfg.max_stream = 8 + rng.range(0, 24) as u32,
            _ => cfg.mem.l1i.banks = *rng.pick(&[2, 4, 8]),
        }
        if smtfetch::isa::has_errors(&cfg.validate_for_threads(2)) {
            continue;
        }
        let engine = FetchEngineKind::all()[rng.range(0, 3) as usize];
        let run_once = || {
            let programs = Workload::mix2()
                .programs(0xd00d ^ case)
                .expect("table 2 workloads always build");
            let mut sim = SimBuilder::new(programs)
                .fetch_engine(engine)
                .config(cfg.clone())
                .build()
                .expect("validated config builds");
            sim.run_cycles(4_000).clone()
        };
        let pair = sweep_indexed(2, Jobs::new(2).unwrap(), |_| run_once());
        assert_eq!(
            pair[0], pair[1],
            "case {case}: same-seed runs of a random config diverged across workers"
        );
        checked += 1;
    }
    assert!(checked >= 4, "only {checked} random configs exercised");
}

/// Any configuration the validator passes clean constructs a `Simulator`
/// without panicking — the validator is a sound gate for construction.
#[test]
#[allow(clippy::field_reassign_with_default)] // mutation-style by design
fn validated_configs_always_build() {
    let mut rng = Srng::new(0xaa);
    let mut built = 0u32;
    for case in 0..200 {
        // Mutate a few axes of the Table 3 baseline per case. Each pool
        // mixes values the validator accepts with ones it must reject, so
        // the property exercises both sides of the gate.
        let mut cfg = SimConfig::default();
        cfg.fetch_policy =
            FetchPolicy::icount(1 + rng.range(0, 2) as u32, *rng.pick(&[4, 8, 16, 24]));
        let mutations = 1 + rng.range(0, 3);
        for _ in 0..mutations {
            match rng.range(0, 10) {
                0 => cfg.fetch_buffer = *rng.pick(&[0, 8, 16, 32, 48]),
                1 => cfg.ftq_depth = rng.range(0, 6) as u32,
                2 => cfg.rob_size = *rng.pick(&[0, 64, 256]),
                3 => {
                    cfg.regs_int = *rng.pick(&[16, 96, 160, 384, 512]);
                    cfg.regs_fp = cfg.regs_int;
                }
                4 => {
                    cfg.predictor.gshare_entries = 1 << rng.range(8, 18);
                    cfg.predictor.gshare_hist_bits = rng.range(0, 66) as u32;
                }
                5 => {
                    cfg.predictor.btb_entries = *rng.pick(&[0, 512, 2048, 3000]);
                    cfg.predictor.btb_ways = *rng.pick(&[1, 2, 4, 5]);
                }
                6 => cfg.predictor.ras_depth = rng.range(0, 80) as usize,
                7 => cfg.mem.l1i.banks = 1 + rng.range(0, 8),
                8 => cfg.mem.d_mshrs = rng.range(0, 20) as usize,
                _ => {
                    cfg.max_stream = rng.range(0, 80) as u32;
                    cfg.max_ftb_block = rng.range(0, 24) as u32;
                }
            }
        }

        let threads = 1 + rng.range(0, 4) as usize;
        let diags = cfg.validate_for_threads(threads);
        if smtfetch::isa::has_errors(&diags) {
            continue;
        }
        let programs = Workload::mix4().programs(case).unwrap();
        let sim = SimBuilder::new(programs.into_iter().take(threads).collect())
            .fetch_engine(FetchEngineKind::all_with_trace_cache()[rng.range(0, 4) as usize])
            .config(cfg)
            .build();
        assert!(
            sim.is_ok(),
            "validated config failed to build: {:?}",
            sim.err()
        );
        built += 1;
    }
    assert!(
        built > 10,
        "only {built}/200 random configs validated clean"
    );
}

/// `Display` and `FromStr` are exact inverses for every fetch-engine kind
/// and for randomized fetch policies (all four mnemonics, both n values,
/// random widths, with and without the -STALL/-FLUSH suffixes).
#[test]
fn engine_and_policy_names_round_trip() {
    use smtfetch::core::{PolicyKind, FRONT_ENDS};

    for kind in FetchEngineKind::all_with_trace_cache() {
        let name = kind.to_string();
        let parsed: FetchEngineKind = name.parse().unwrap_or_else(|e| {
            panic!("engine name {name:?} failed to parse back: {e:?}");
        });
        assert_eq!(parsed, kind, "engine round-trip changed the kind");
        // The registry spelling is the Display spelling, so CLI flags,
        // report headers, and the registry can never drift apart.
        let entry = FRONT_ENDS
            .iter()
            .find(|e| e.kind == kind)
            .expect("registered");
        assert_eq!(entry.name, name, "registry name diverged from Display");
    }

    let kinds = [
        PolicyKind::Icount,
        PolicyKind::RoundRobin,
        PolicyKind::BrCount,
        PolicyKind::MissCount,
    ];
    for case in 0..CASES {
        let mut rng = Srng::new(0x90117 ^ case);
        let base = match kinds[rng.range(0, 4) as usize] {
            PolicyKind::Icount => FetchPolicy::icount,
            PolicyKind::RoundRobin => FetchPolicy::round_robin,
            PolicyKind::BrCount => FetchPolicy::br_count,
            PolicyKind::MissCount => FetchPolicy::miss_count,
        };
        let mut policy = base(1 + rng.range(0, 2) as u32, 1 + rng.range(0, 63) as u32);
        policy = match rng.range(0, 3) {
            0 => policy,
            1 => policy.with_stall(),
            _ => policy.with_flush(),
        };
        let text = policy.to_string();
        let parsed: FetchPolicy = text.parse().unwrap_or_else(|e| {
            panic!("policy {text:?} failed to parse back (case {case}): {e:?}");
        });
        assert_eq!(parsed, policy, "policy round-trip drifted (case {case})");
        assert_eq!(
            parsed.long_latency, policy.long_latency,
            "long-latency suffix lost (case {case})"
        );
    }

    // Rejections carry the documented diagnostic codes.
    let err = "frobnicator".parse::<FetchEngineKind>().unwrap_err();
    assert_eq!(err.code, "E0016");
    for junk in [
        "ICOUNT",
        "ICOUNT.3.8",
        "ICOUNT.2.0",
        "WRONG.1.8",
        "ICOUNT-SPIN.1.8",
    ] {
        let err = junk.parse::<FetchPolicy>().unwrap_err();
        assert_eq!(err.code, "E0017", "{junk:?} accepted or wrong code");
    }
}

/// The per-stage stall attribution partitions time: for every active
/// thread, the seven buckets (six stall causes + useful residual) sum to
/// exactly the measured cycles, under every engine and fetch policy shape.
#[test]
fn stall_buckets_partition_cycles_for_every_engine_and_policy() {
    let policies = [
        FetchPolicy::icount(1, 8),
        FetchPolicy::icount(2, 8),
        FetchPolicy::round_robin(2, 16),
        FetchPolicy::miss_count(1, 8).with_flush(),
    ];
    for engine in FetchEngineKind::all_with_trace_cache() {
        for policy in policies {
            let programs = Workload::mix4().programs(7).unwrap();
            let n = programs.len();
            let mut sim = SimBuilder::new(programs)
                .fetch_engine(engine)
                .fetch_policy(policy)
                .build()
                .unwrap();
            // Across a reset boundary too: the buckets are part of the
            // resettable stats, so the invariant must hold per window.
            sim.run_cycles(500);
            sim.reset_stats();
            let stats = sim.run_cycles(2_000);
            for tid in 0..n {
                assert_eq!(
                    stats.stalls.total(tid),
                    stats.cycles,
                    "{engine} / {policy}: thread {tid} buckets do not partition cycles"
                );
            }
            for tid in n..smtfetch::isa::MAX_THREADS {
                assert_eq!(
                    stats.stalls.total(tid),
                    0,
                    "{engine} / {policy}: inactive thread {tid} charged"
                );
            }
        }
    }
}

/// The stall-partition invariant survives event-driven cycle skipping: on
/// the memory-bound workload — where the scheduler jumps over ~100-cycle
/// idle windows — the skipped cycles must land in the same per-thread
/// buckets a stepped run would have charged, so the partition still holds
/// exactly for every engine × policy-kind × long-latency-gate combination.
/// Each cell additionally proves the scheduler engaged, so the invariant is
/// tested *through* skips, not vacuously beside them.
#[test]
fn stall_buckets_partition_cycles_through_event_skips() {
    let policies = [
        FetchPolicy::icount(2, 8),
        FetchPolicy::icount(1, 8).with_stall(),
        FetchPolicy::icount(2, 8).with_flush(),
        FetchPolicy::round_robin(2, 8).with_stall(),
        FetchPolicy::br_count(2, 8).with_flush(),
        FetchPolicy::miss_count(2, 8).with_stall(),
    ];
    for engine in FetchEngineKind::all_with_trace_cache() {
        for policy in policies {
            let programs = Workload::mem2().programs(7).unwrap();
            let n = programs.len();
            let mut sim = SimBuilder::new(programs)
                .fetch_engine(engine)
                .fetch_policy(policy)
                .build()
                .unwrap();
            // Across a reset boundary too — and the boundary itself may
            // land mid-skip, which must not double- or under-charge.
            sim.run_cycles(501);
            sim.reset_stats();
            let stats = sim.run_cycles(4_003);
            assert!(
                stats.skipped_cycles() > 0,
                "{engine} / {policy}: the scheduler never engaged on mem2"
            );
            for tid in 0..n {
                assert_eq!(
                    stats.stalls.total(tid),
                    stats.cycles,
                    "{engine} / {policy}: thread {tid} buckets do not partition \
                     cycles through skips"
                );
            }
            for tid in n..smtfetch::isa::MAX_THREADS {
                assert_eq!(
                    stats.stalls.total(tid),
                    0,
                    "{engine} / {policy}: inactive thread {tid} charged"
                );
            }
        }
    }
}

/// One record of the naive array-of-structs reference window: the control
/// entry, its payload, and its branch record side by side in a plain deque.
#[derive(Clone, Copy, Debug)]
struct AosInst {
    ctl: InFlightCtl,
    di: DynInst,
    binfo: Option<BranchInfo>,
}

/// A deterministic random instruction (and, for branches, a branch record)
/// for sequence number `seq`.
fn random_inst(rng: &mut Srng, seq: u64) -> (DynInst, Option<BranchInfo>) {
    let pc = Addr::new(0x40_0000 + seq * 4);
    let class = match rng.range(0, 5) {
        0 => InstClass::IntAlu,
        1 => InstClass::Load,
        2 => InstClass::Store,
        3 => InstClass::FpAlu,
        _ => InstClass::Branch(BranchKind::Cond),
    };
    let taken = rng.chance(0.4);
    let next_pc = if taken {
        Addr::new(0x40_0000 + rng.range(0, 1 << 16) * 4)
    } else {
        pc.add_insts(1)
    };
    let di = DynInst {
        thread: 0,
        static_id: rng.range_u32(0, 1 << 16),
        pc,
        class,
        dest: None,
        srcs: [None, None],
        mem: None,
        taken,
        next_pc,
        wrong_path: rng.chance(0.1),
    };
    let binfo = matches!(class, InstClass::Branch(_)).then(|| BranchInfo {
        block_start: pc,
        is_end: rng.chance(0.5),
        spec_taken: rng.chance(0.5),
        spec_next: next_pc,
        mispredicted: rng.chance(0.2),
        decode_redirect: rng.chance(0.2),
    });
    (di, binfo)
}

/// The structure-of-arrays window is observably identical to a naive
/// array-of-structs reference deque: over random operation traces — pushes
/// (including sequence-number reuse after a pop-back, the squash pattern),
/// pops from both ends, and control-entry mutations — every lookup agrees
/// after every operation, on random window capacities that force the
/// payload ring to wrap many times.
#[test]
fn soa_window_matches_aos_reference() {
    for case in 0..CASES {
        let mut rng = Srng::new(0x50a0 ^ case);
        let cap = 4 + rng.range(0, 60) as usize;
        let mut soa = Window::new();
        soa.presize(cap);
        let mut aos: VecDeque<AosInst> = VecDeque::new();
        let mut next_seq = rng.range(0, 1000);
        let ops = 200 + rng.range(0, 800);
        for _ in 0..ops {
            match rng.range(0, 10) {
                0..=4 => {
                    if soa.len() < cap {
                        let seq = next_seq;
                        next_seq += 1;
                        let (di, binfo) = random_inst(&mut rng, seq);
                        soa.set_di(seq, di);
                        let ctl =
                            InFlightCtl::at_fetch(seq, rng.range(0, 1 << 20), &di, binfo.as_ref());
                        soa.push(ctl, binfo);
                        aos.push_back(AosInst { ctl, di, binfo });
                    }
                }
                5 => {
                    assert_eq!(
                        soa.pop_front(),
                        aos.pop_front().map(|r| r.ctl),
                        "case {case}"
                    );
                }
                6 => {
                    let popped = aos.pop_back();
                    assert_eq!(soa.pop_back(), popped.map(|r| r.ctl), "case {case}");
                    if let Some(r) = popped {
                        // Squash semantics: the popped seq is reused next.
                        next_seq = r.ctl.seq;
                    }
                }
                7 => {
                    if !aos.is_empty() {
                        let k = rng.range(0, aos.len() as u64) as usize;
                        let seq = aos[k].ctl.seq;
                        let c = soa.ctl_mut(seq).expect("live seq has a control entry");
                        if rng.chance(0.5) {
                            c.set_dispatched();
                            aos[k].ctl.set_dispatched();
                        }
                        if rng.chance(0.5) {
                            c.set_issued();
                            aos[k].ctl.set_issued();
                        }
                        let done = rng.range(0, 1 << 20);
                        c.done_at = done;
                        aos[k].ctl.done_at = done;
                        let p = rng.range_u32(0, 512);
                        c.phys_dest = Some(p);
                        aos[k].ctl.phys_dest = Some(p);
                    }
                }
                _ => {
                    if !aos.is_empty() {
                        let k = rng.range(0, aos.len() as u64) as usize;
                        let seq = aos[k].ctl.seq;
                        assert_eq!(
                            soa.tail_len_from(seq),
                            (aos.len() - k) as u32,
                            "case {case}"
                        );
                    }
                }
            }
            // Full observable-state comparison after every operation.
            assert_eq!(soa.len(), aos.len(), "case {case}");
            assert_eq!(soa.is_empty(), aos.is_empty(), "case {case}");
            assert_eq!(soa.front(), aos.front().map(|r| &r.ctl), "case {case}");
            assert_eq!(soa.back(), aos.back().map(|r| &r.ctl), "case {case}");
            for (got, want) in soa.iter().zip(aos.iter()) {
                assert_eq!(got, &want.ctl, "case {case}");
                assert_eq!(soa.di(want.ctl.seq), &want.di, "case {case}");
                assert_eq!(
                    format!("{:?}", soa.binfo(want.ctl.seq)),
                    format!("{:?}", want.binfo),
                    "case {case}"
                );
                assert_eq!(got.has_binfo(), want.binfo.is_some(), "case {case}");
                assert_eq!(
                    got.is_load(),
                    want.di.class == InstClass::Load,
                    "case {case}"
                );
                assert_eq!(got.is_branch(), want.di.class.is_branch(), "case {case}");
            }
            // A never-pushed seq resolves to no control entry.
            assert!(soa.ctl(next_seq).is_none(), "case {case}");
            if let Some(front) = aos.front() {
                if front.ctl.seq > 0 {
                    assert!(soa.ctl(front.ctl.seq - 1).is_none(), "case {case}");
                }
            }
        }
    }
}

/// The structure-of-arrays window is behaviorally transparent through the
/// whole simulator: for random validated configurations across every fetch
/// engine and every policy mnemonic, two independently built same-seed
/// simulators produce bit-identical statistics, and the per-thread stall
/// buckets still partition measured cycles exactly — the same observable
/// contract the pre-refactor array-of-structs window satisfied (whose byte
/// equivalence the un-re-blessed goldens pin).
#[test]
#[allow(clippy::field_reassign_with_default)] // mutation-style by design
fn soa_window_equivalent_across_engines_and_policies() {
    let policies = [
        FetchPolicy::icount(1, 8),
        FetchPolicy::icount(2, 8),
        FetchPolicy::round_robin(2, 16),
        FetchPolicy::br_count(2, 8),
        FetchPolicy::miss_count(2, 8).with_flush(),
    ];
    let mut rng = Srng::new(0x50a1);
    for (e, engine) in FetchEngineKind::all_with_trace_cache()
        .into_iter()
        .enumerate()
    {
        for (p, policy) in policies.into_iter().enumerate() {
            let mut cfg = SimConfig::default();
            cfg.fetch_policy = policy;
            // One random accepted axis per cell, as in the determinism
            // property above; invalid draws fall back to the baseline.
            let mut mutated = cfg.clone();
            match rng.range(0, 4) {
                0 => mutated.fetch_buffer = *rng.pick(&[16, 32, 48]),
                1 => mutated.ftq_depth = 1 + rng.range(0, 5) as u32,
                2 => mutated.rob_size = *rng.pick(&[64, 256, 512]),
                _ => mutated.mem.l1i.banks = *rng.pick(&[2, 4, 8]),
            }
            if !smtfetch::isa::has_errors(&mutated.validate_for_threads(4)) {
                cfg = mutated;
            }
            let seed = 0xd1f ^ ((e as u64) << 8) ^ p as u64;
            let run_once = || {
                let programs = Workload::mix4()
                    .programs(seed)
                    .expect("table 2 workloads always build");
                let n = programs.len();
                let mut sim = SimBuilder::new(programs)
                    .fetch_engine(engine)
                    .config(cfg.clone())
                    .build()
                    .expect("validated config builds");
                sim.run_cycles(500);
                sim.reset_stats();
                let stats = sim.run_cycles(2_000).clone();
                (n, stats)
            };
            let (n, a) = run_once();
            let (_, b) = run_once();
            assert_eq!(a, b, "{engine} / {policy}: same-seed runs diverged");
            for tid in 0..n {
                assert_eq!(
                    a.stalls.total(tid),
                    a.cycles,
                    "{engine} / {policy}: thread {tid} buckets do not partition cycles"
                );
            }
        }
    }
}
