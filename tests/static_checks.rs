//! The repository's static-analysis gate, run as an ordinary test so
//! `cargo test` enforces it without extra CI plumbing:
//!
//! 1. the determinism linter (`smt-lint`) reports zero violations on the
//!    shipped tree, and still detects a seeded violation (no silent
//!    self-neutering);
//! 2. every configuration the experiment suite simulates passes the
//!    semantic validator with zero errors.

use smt_lint::{check_file, check_workspace, Rule, HOT_PATH_FILE};
use smtfetch::core::{FetchPolicy, SimConfig};
use smtfetch::isa::MAX_THREADS;

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let violations = check_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "smt-lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn linter_detects_seeded_violations() {
    // A HashMap in a simulation crate.
    let v = check_file(
        "crates/core/src/fake.rs",
        "use std::collections::HashMap;\npub fn f() { let _: HashMap<u32, u32>; }\n",
    );
    assert!(
        v.iter().any(|x| x.rule == Rule::NoHashCollections),
        "seeded HashMap not flagged: {v:?}"
    );

    // Wall-clock time in a simulation crate.
    let v = check_file(
        "crates/mem/src/fake.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoWallClock), "{v:?}");

    // A panic in library code without an allow escape.
    let v = check_file(
        "crates/bpred/src/fake.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoPanic), "{v:?}");

    // A crate root that forgot to deny unsafe code.
    let v = check_file("crates/core/src/lib.rs", "pub fn f() {}\n");
    assert!(v.iter().any(|x| x.rule == Rule::DenyUnsafe), "{v:?}");

    // An allocation token in the pipeline hot path (advisory rule).
    let v = check_file(
        HOT_PATH_FILE,
        "pub fn step(v: &[u32]) { let _scratch: Vec<u32> = v.to_vec().clone(); }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoAllocInStep), "{v:?}");
}

/// The experiments crate is wall-clock-banned (results must be pure
/// functions of the seed); the single audited exception is the sweep
/// executor's per-cell harness timer. This test pins that audit: any new
/// `Instant::now`/`SystemTime::now` use — or a new `lint:allow(no-wall-clock)`
/// escape — anywhere in `crates/experiments` outside `sweep.rs` fails here
/// and must be argued past this list instead of slipping in silently.
#[test]
fn experiments_wall_clock_exception_is_confined_to_the_sweep_timer() {
    let src_dir = workspace_root().join("crates/experiments/src");
    let mut offenders = Vec::new();
    let mut stack = vec![src_dir];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read experiments src") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read source file");
            let uses_clock = [
                "Instant::now",
                "SystemTime::now",
                "lint:allow(no-wall-clock)",
            ]
            .iter()
            .any(|t| text.contains(t));
            if uses_clock && path.file_name().is_none_or(|n| n != "sweep.rs") {
                offenders.push(path);
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "wall-clock use outside the audited sweep timer: {offenders:?}"
    );
    // And the exception itself is present and annotated where we expect it.
    let sweep = std::fs::read_to_string(workspace_root().join("crates/experiments/src/sweep.rs"))
        .expect("read sweep.rs");
    assert!(
        sweep.contains("lint:allow(no-wall-clock)"),
        "sweep.rs timer lost its audited lint:allow annotation"
    );
}

/// The hot path (`crates/core/src/sim.rs`) is subject to the advisory
/// `no-alloc-in-step` rule; the zero-allocation property itself is proven at
/// runtime by `tests/alloc_gate.rs`. This test pins the audited escape set:
/// exactly the construction-time clones in `Simulator::new` (the seeded RAS
/// template and the memory-config copy), which run once per simulator, never
/// per cycle. A new `lint:allow(no-alloc-in-step)` anywhere else must be
/// argued past this list instead of slipping in silently.
#[test]
fn hot_path_alloc_escapes_are_pinned() {
    let sim = std::fs::read_to_string(workspace_root().join(HOT_PATH_FILE)).expect("read sim.rs");
    let escapes: Vec<&str> = sim
        .lines()
        .filter(|l| l.contains("lint:allow(no-alloc-in-step)"))
        .map(str::trim)
        .collect();
    let pinned = ["ras.clone()", "cfg.mem.clone()"];
    assert_eq!(
        escapes.len(),
        pinned.len(),
        "escape set changed — audit it here:\n{escapes:#?}"
    );
    for (escape, expect) in escapes.iter().zip(pinned) {
        assert!(
            escape.contains(expect),
            "escaped line {escape:?} is not the audited {expect:?}"
        );
    }
    // With those escapes in place the rule reports nothing on the shipped
    // file (also covered by `workspace_is_lint_clean`, restated here so a
    // failure names the advisory rule directly).
    let advisories: Vec<_> = check_file(HOT_PATH_FILE, &sim)
        .into_iter()
        .filter(|v| v.rule == Rule::NoAllocInStep)
        .collect();
    assert!(
        advisories.is_empty(),
        "hot-path allocations: {advisories:?}"
    );
}

#[test]
fn every_experiment_config_validates_clean() {
    // The experiment suite simulates the Table 3 baseline under the paper's
    // policy sweep (and STALL/FLUSH variants) for 1..=8 threads; each such
    // configuration must pass the validator with zero diagnostics.
    let mut policies = FetchPolicy::paper_sweep().to_vec();
    policies.push(FetchPolicy::icount(1, 8).with_stall());
    policies.push(FetchPolicy::icount(1, 8).with_flush());
    policies.push(FetchPolicy::round_robin(1, 8));
    policies.push(FetchPolicy::br_count(1, 8));
    policies.push(FetchPolicy::miss_count(1, 8));
    for policy in policies {
        let cfg = SimConfig::hpca2004(policy);
        for threads in 1..=MAX_THREADS {
            let diags = cfg.validate_for_threads(threads);
            assert!(diags.is_empty(), "{policy} × {threads} threads: {diags:?}");
        }
    }
}
