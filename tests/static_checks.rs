//! The repository's static-analysis gate, run as an ordinary test so
//! `cargo test` enforces it without extra CI plumbing:
//!
//! 1. the determinism linter (`smt-lint`) reports zero violations on the
//!    shipped tree, and still detects a seeded violation (no silent
//!    self-neutering);
//! 2. every configuration the experiment suite simulates passes the
//!    semantic validator with zero errors.

use smt_lint::{
    check_file, check_workspace, is_hot_path, Rule, HOT_PATH_FILE, HOT_PATH_WALKER,
    MODULE_SIZE_LIMIT,
};
use smtfetch::core::{FetchPolicy, SimConfig};
use smtfetch::isa::MAX_THREADS;

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let violations = check_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "smt-lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn linter_detects_seeded_violations() {
    // A HashMap in a simulation crate.
    let v = check_file(
        "crates/core/src/fake.rs",
        "use std::collections::HashMap;\npub fn f() { let _: HashMap<u32, u32>; }\n",
    );
    assert!(
        v.iter().any(|x| x.rule == Rule::NoHashCollections),
        "seeded HashMap not flagged: {v:?}"
    );

    // Wall-clock time in a simulation crate.
    let v = check_file(
        "crates/mem/src/fake.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoWallClock), "{v:?}");

    // A panic in library code without an allow escape.
    let v = check_file(
        "crates/bpred/src/fake.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoPanic), "{v:?}");

    // A crate root that forgot to deny unsafe code.
    let v = check_file("crates/core/src/lib.rs", "pub fn f() {}\n");
    assert!(v.iter().any(|x| x.rule == Rule::DenyUnsafe), "{v:?}");

    // An allocation token in the pipeline hot path (advisory rule) —
    // both in the composition root and in a stage module.
    let seeded = "pub fn step(v: &[u32]) { let _scratch: Vec<u32> = v.to_vec().clone(); }\n";
    let v = check_file(HOT_PATH_FILE, seeded);
    assert!(v.iter().any(|x| x.rule == Rule::NoAllocInStep), "{v:?}");
    let v = check_file("crates/core/src/pipeline/fetch.rs", seeded);
    assert!(v.iter().any(|x| x.rule == Rule::NoAllocInStep), "{v:?}");

    // An oversized core module (advisory rule).
    let v = check_file(
        "crates/core/src/fake.rs",
        &"pub fn f() {}\n".repeat(MODULE_SIZE_LIMIT + 1),
    );
    assert!(v.iter().any(|x| x.rule == Rule::ModuleSize), "{v:?}");
}

/// The experiments crate is wall-clock-banned (results must be pure
/// functions of the seed); the single audited exception is the sweep
/// executor's per-cell harness timer. This test pins that audit: any new
/// `Instant::now`/`SystemTime::now` use — or a new `lint:allow(no-wall-clock)`
/// escape — anywhere in `crates/experiments` outside `sweep.rs` fails here
/// and must be argued past this list instead of slipping in silently.
#[test]
fn experiments_wall_clock_exception_is_confined_to_the_sweep_timer() {
    let src_dir = workspace_root().join("crates/experiments/src");
    let mut offenders = Vec::new();
    let mut stack = vec![src_dir];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read experiments src") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read source file");
            let uses_clock = [
                "Instant::now",
                "SystemTime::now",
                "lint:allow(no-wall-clock)",
            ]
            .iter()
            .any(|t| text.contains(t));
            if uses_clock && path.file_name().is_none_or(|n| n != "sweep.rs") {
                offenders.push(path);
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "wall-clock use outside the audited sweep timer: {offenders:?}"
    );
    // And the exception itself is present and annotated where we expect it.
    let sweep = std::fs::read_to_string(workspace_root().join("crates/experiments/src/sweep.rs"))
        .expect("read sweep.rs");
    assert!(
        sweep.contains("lint:allow(no-wall-clock)"),
        "sweep.rs timer lost its audited lint:allow annotation"
    );
}

/// The hot path — `crates/core/src/sim.rs`, every stage module under
/// `crates/core/src/pipeline/`, and the per-instruction workload walker
/// (`crates/workloads/src/walker.rs`) — is subject to the advisory
/// `no-alloc-in-step` rule; the zero-allocation property itself is proven at
/// runtime by `tests/alloc_gate.rs`. This test pins the audited escape set:
/// exactly the construction-time clones in `Simulator::new` (the seeded RAS
/// template and the memory-config copy), which run once per simulator, never
/// per cycle. Stage modules and the walker carry none: the stages' scratch
/// buffers are allocated by the stage constructors in `sim.rs` and reused
/// via `mem::take`, and the walker (including its `UndoRing` and the bulk
/// `next_block` path) is fixed-capacity inline state. A new
/// `lint:allow(no-alloc-in-step)` anywhere in the hot path must be argued
/// past this list instead of slipping in silently.
#[test]
fn hot_path_alloc_escapes_are_pinned() {
    let root = workspace_root();
    let mut hot_files = vec![HOT_PATH_FILE.to_string(), HOT_PATH_WALKER.to_string()];
    for entry in std::fs::read_dir(root.join("crates/core/src/pipeline")).expect("read pipeline/") {
        let name = entry.expect("dir entry").file_name();
        hot_files.push(format!(
            "crates/core/src/pipeline/{}",
            name.to_string_lossy()
        ));
    }
    hot_files.sort();

    let mut escapes = Vec::new();
    for rel in &hot_files {
        assert!(is_hot_path(rel), "{rel} must be covered by the alloc rule");
        let text = std::fs::read_to_string(root.join(rel)).expect("read hot-path file");
        escapes.extend(
            text.lines()
                .filter(|l| l.contains("lint:allow(no-alloc-in-step)"))
                .map(|l| (rel.clone(), l.trim().to_string())),
        );
        // With the escapes in place the rule reports nothing on the shipped
        // file (also covered by `workspace_is_lint_clean`, restated here so
        // a failure names the advisory rule directly).
        let advisories: Vec<_> = check_file(rel, &text)
            .into_iter()
            .filter(|v| v.rule == Rule::NoAllocInStep)
            .collect();
        assert!(
            advisories.is_empty(),
            "hot-path allocations: {advisories:?}"
        );
    }

    let pinned = [
        (HOT_PATH_FILE, "ras.clone()"),
        (HOT_PATH_FILE, "cfg.mem.clone()"),
    ];
    assert_eq!(
        escapes.len(),
        pinned.len(),
        "escape set changed — audit it here:\n{escapes:#?}"
    );
    for ((path, escape), (expect_path, expect)) in escapes.iter().zip(pinned) {
        assert_eq!(path, expect_path, "escape moved to an unaudited file");
        assert!(
            escape.contains(expect),
            "escaped line {escape:?} is not the audited {expect:?}"
        );
    }
}

/// Pins the post-refactor decomposition of the simulator core: the cycle
/// loop lives in a slim composition root (`sim.rs`) that only sequences the
/// stage modules under `pipeline/`. A regrown monolith — new logic piling
/// into `sim.rs`, a stage module ballooning past the advisory ceiling, or a
/// stage file appearing/disappearing — fails here and must update this pin
/// deliberately.
#[test]
fn core_pipeline_decomposition_is_pinned() {
    let root = workspace_root();

    let mut stages: Vec<String> = std::fs::read_dir(root.join("crates/core/src/pipeline"))
        .expect("read pipeline/")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    stages.sort();
    assert_eq!(
        stages,
        [
            "commit.rs",
            "decode_rename.rs",
            "fetch.rs",
            "idle.rs",
            "issue.rs",
            "mod.rs",
            "recovery.rs",
        ],
        "pipeline stage set changed — update the pin and DESIGN.md §10"
    );

    let sim = std::fs::read_to_string(root.join(HOT_PATH_FILE)).expect("read sim.rs");
    let sim_lines = sim.lines().count();
    assert!(
        sim_lines < 500,
        "sim.rs grew to {sim_lines} lines — stage logic belongs in pipeline/"
    );

    for name in &stages {
        let text = std::fs::read_to_string(root.join("crates/core/src/pipeline").join(name))
            .expect("read stage module");
        let lines = text.lines().count();
        assert!(
            lines <= MODULE_SIZE_LIMIT,
            "pipeline/{name} grew to {lines} lines (ceiling {MODULE_SIZE_LIMIT})"
        );
    }
}

#[test]
fn every_experiment_config_validates_clean() {
    // The experiment suite simulates the Table 3 baseline under the paper's
    // policy sweep (and STALL/FLUSH variants) for 1..=8 threads; each such
    // configuration must pass the validator with zero diagnostics.
    let mut policies = FetchPolicy::paper_sweep().to_vec();
    policies.push(FetchPolicy::icount(1, 8).with_stall());
    policies.push(FetchPolicy::icount(1, 8).with_flush());
    policies.push(FetchPolicy::round_robin(1, 8));
    policies.push(FetchPolicy::br_count(1, 8));
    policies.push(FetchPolicy::miss_count(1, 8));
    for policy in policies {
        let cfg = SimConfig::hpca2004(policy);
        for threads in 1..=MAX_THREADS {
            let diags = cfg.validate_for_threads(threads);
            assert!(diags.is_empty(), "{policy} × {threads} threads: {diags:?}");
        }
    }
}
