//! The repository's static-analysis gate, run as an ordinary test so
//! `cargo test` enforces it without extra CI plumbing:
//!
//! 1. the determinism linter (`smt-lint`) reports zero violations on the
//!    shipped tree, and still detects seeded violations of every enforced
//!    rule (no silent self-neutering);
//! 2. the escape ledger — every `lint:allow` site in the workspace — is
//!    pinned exactly: adding, moving or rewording an escape is a reviewed
//!    diff of this file, never a silent regression;
//! 3. `Cargo.lock` contains only workspace members (the zero-external-
//!    dependency policy, checked mechanically);
//! 4. every configuration the experiment suite simulates passes the
//!    semantic validator with zero errors.

use smt_lint::{
    check_deps, check_file, check_workspace, workspace_escapes, Rule, HOT_PATH_FILE,
    MODULE_SIZE_LIMIT, SERVE_LISTENER, STATS_FILE, SWEEP_EXECUTOR,
};
use smtfetch::core::{FetchPolicy, SimConfig};
use smtfetch::isa::MAX_THREADS;

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let violations = check_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "smt-lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn linter_detects_seeded_violations() {
    // A HashMap in a simulation crate.
    let v = check_file(
        "crates/core/src/fake.rs",
        "use std::collections::HashMap;\npub fn f() { let _: HashMap<u32, u32>; }\n",
    );
    assert!(
        v.iter().any(|x| x.rule == Rule::NoHashCollections),
        "seeded HashMap not flagged: {v:?}"
    );

    // A banned collection smuggled in through a `use … as` rename.
    let v = check_file(
        "crates/core/src/fake.rs",
        "use std::collections::HashMap as Map;\npub fn f() { let _: Map<u32, u32>; }\n",
    );
    assert!(
        v.iter().any(|x| x.rule == Rule::NoUnorderedIteration),
        "seeded alias not flagged: {v:?}"
    );

    // Wall-clock time in a simulation crate, and in the sweep daemon
    // (which joined CLOCK_CRATES so served results stay seed-pure).
    let seeded_clock = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    let v = check_file("crates/mem/src/fake.rs", seeded_clock);
    assert!(v.iter().any(|x| x.rule == Rule::NoWallClock), "{v:?}");
    let v = check_file("crates/serve/src/fake.rs", seeded_clock);
    assert!(v.iter().any(|x| x.rule == Rule::NoWallClock), "{v:?}");

    // An environment read in a simulation crate.
    let v = check_file(
        "crates/core/src/fake.rs",
        "pub fn f() -> bool { std::env::var_os(\"X\").is_some() }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoEnvInCore), "{v:?}");

    // A raw threading primitive outside the audited sweep executor.
    let v = check_file(
        "crates/experiments/src/fake.rs",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
    );
    assert!(
        v.iter()
            .any(|x| x.rule == Rule::NoNondeterministicThreading),
        "{v:?}"
    );

    // A truncating cast in the stats module.
    let v = check_file(STATS_FILE, "pub fn f(x: u64) -> u32 { x as u32 }\n");
    assert!(v.iter().any(|x| x.rule == Rule::NoLossyCast), "{v:?}");

    // A panic in library code without an allow escape.
    let v = check_file(
        "crates/bpred/src/fake.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert!(v.iter().any(|x| x.rule == Rule::NoPanic), "{v:?}");

    // A crate root that forgot to deny unsafe code.
    let v = check_file("crates/core/src/lib.rs", "pub fn f() {}\n");
    assert!(v.iter().any(|x| x.rule == Rule::DenyUnsafe), "{v:?}");

    // An allocation token in the pipeline hot path (advisory rule) —
    // both in the composition root and in a stage module.
    let seeded = "pub fn step(v: &[u32]) { let _scratch: Vec<u32> = v.to_vec().clone(); }\n";
    let v = check_file(HOT_PATH_FILE, seeded);
    assert!(v.iter().any(|x| x.rule == Rule::NoAllocInStep), "{v:?}");
    let v = check_file("crates/core/src/pipeline/fetch.rs", seeded);
    assert!(v.iter().any(|x| x.rule == Rule::NoAllocInStep), "{v:?}");

    // An oversized core module (advisory rule).
    let v = check_file(
        "crates/core/src/fake.rs",
        &"pub fn f() {}\n".repeat(MODULE_SIZE_LIMIT + 1),
    );
    assert!(v.iter().any(|x| x.rule == Rule::ModuleSize), "{v:?}");
}

/// The machine-checked escape ledger: every `lint:allow` / `lint:allow-file`
/// site in the workspace, pinned as (path, rule, file-level, justification)
/// in (path, line) order. A new escape, a moved escape, or a reworded
/// justification fails here and must be argued past this list instead of
/// slipping in silently. Line numbers are deliberately not pinned so that
/// unrelated edits above an escape don't churn this test; the count per
/// (path, rule) and the justification text are what the audit reviews.
///
/// Notable invariants the ledger encodes:
/// * the only `no-wall-clock` escapes are the sweep executor's harness
///   timer and the daemon's per-job `SUMMARY` timer;
/// * the only `no-env-in-core` escape is commit's debug-only stderr tracing;
/// * every `no-nondeterministic-threading` escape is inside the sweep
///   executor or the daemon's listener — the executor is the only place
///   simulation work runs in parallel; the listener's threads pump
///   protocol bytes only;
/// * every hot-path `no-alloc-in-step` escape is construction-time work:
///   the two copies in `Simulator::new` and the two column allocations in
///   `Window::presize`.
#[test]
fn escape_ledger_is_pinned() {
    let ledger = workspace_escapes(&workspace_root()).expect("escape scan");

    for e in &ledger {
        assert!(
            e.is_well_formed(),
            "malformed escape at {}:{} — rule {:?}, justification {:?}",
            e.path,
            e.line,
            e.rule_name,
            e.justification
        );
    }

    let pinned: &[(&str, &str, bool, &str)] = &[
        (
            "crates/bpred/src/assoc.rs",
            "no-panic",
            false,
            "ways.len() == cap > 0, so the set is never empty",
        ),
        (
            "crates/bpred/src/btb.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/bpred/src/counters.rs",
            "no-lossy-cast",
            false,
            "masked to two bits, cannot truncate",
        ),
        (
            "crates/bpred/src/counters.rs",
            "no-lossy-cast",
            false,
            "masked to two bits, cannot truncate",
        ),
        (
            "crates/bpred/src/ftb.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/bpred/src/gshare.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/bpred/src/gskew.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/bpred/src/gskew.rs",
            "no-lossy-cast",
            false,
            "bank < BANKS = 3, fits any width",
        ),
        (
            "crates/bpred/src/ras.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/bpred/src/stream.rs",
            "no-lossy-cast",
            false,
            "MAX_DEPTH = 16 fits u8",
        ),
        (
            "crates/bpred/src/stream.rs",
            "no-lossy-cast",
            false,
            "deliberate 32-bit path compression",
        ),
        (
            "crates/bpred/src/stream.rs",
            "no-lossy-cast",
            false,
            "MAX_DEPTH = 16 fits u32",
        ),
        (
            "crates/bpred/src/stream.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/bpred/src/tracecache.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/core/src/config.rs",
            "no-lossy-cast",
            false,
            "threads ≤ MAX_THREADS = 8",
        ),
        (
            "crates/core/src/frontend/gshare_btb.rs",
            "no-panic",
            false,
            "update only sees branch-class instructions",
        ),
        (
            "crates/core/src/frontend/gskew_ftb.rs",
            "no-panic",
            false,
            "update only sees branch-class instructions",
        ),
        (
            "crates/core/src/frontend/mod.rs",
            "no-panic",
            false,
            "the program scan returns only branches",
        ),
        (
            "crates/core/src/frontend/mod.rs",
            "no-lossy-cast",
            false,
            "dist < the BTB block-scan cap",
        ),
        (
            "crates/core/src/frontend/mod.rs",
            "no-lossy-cast",
            false,
            "max is the per-block fetch budget ≤ 16",
        ),
        (
            "crates/core/src/frontend/mod.rs",
            "no-panic",
            false,
            "the registry is compiled-in and total over FetchEngineKind",
        ),
        (
            "crates/core/src/frontend/mod.rs",
            "no-panic",
            false,
            "documented-panic preset; Table 3 geometry is valid",
        ),
        (
            "crates/core/src/frontend/trace_cache.rs",
            "no-panic",
            false,
            "update only sees branch-class instructions",
        ),
        (
            "crates/core/src/frontend/trace_cache.rs",
            "no-panic",
            false,
            "fill buffer checked non-empty before sealing",
        ),
        (
            "crates/core/src/pipeline/commit.rs",
            "no-panic",
            true,
            "stage-protocol invariants; violations must abort the simulation",
        ),
        (
            "crates/core/src/pipeline/commit.rs",
            "no-env-in-core",
            false,
            "debug-only stderr tracing; results never see it",
        ),
        (
            "crates/core/src/pipeline/decode_rename.rs",
            "no-panic",
            true,
            "stage-protocol invariants; violations must abort the simulation",
        ),
        (
            "crates/core/src/pipeline/fetch.rs",
            "no-panic",
            true,
            "stage-protocol invariants; violations must abort the simulation",
        ),
        (
            "crates/core/src/pipeline/issue.rs",
            "no-panic",
            true,
            "stage-protocol invariants; violations must abort the simulation",
        ),
        (
            "crates/core/src/pipeline/mod.rs",
            "no-panic",
            true,
            "stage-protocol invariants; violations must abort the simulation",
        ),
        (
            "crates/core/src/pipeline/recovery.rs",
            "no-panic",
            true,
            "stage-protocol invariants; violations must abort the simulation",
        ),
        (
            "crates/core/src/sim.rs",
            "no-panic",
            true,
            "construction-time invariants; inputs are validated first",
        ),
        (
            "crates/core/src/sim.rs",
            "no-alloc-in-step",
            false,
            "seeded RAS template copy, once per simulator construction",
        ),
        (
            "crates/core/src/sim.rs",
            "no-alloc-in-step",
            false,
            "memory-config copy, once per simulator construction",
        ),
        (
            "crates/core/src/thread.rs",
            "no-panic",
            false,
            "the fetch stage checked the FTQ head exists",
        ),
        (
            "crates/core/src/window.rs",
            "no-alloc-in-step",
            false,
            "column allocation, once per simulator construction",
        ),
        (
            "crates/core/src/window.rs",
            "no-alloc-in-step",
            false,
            "column allocation, once per simulator construction",
        ),
        (
            "crates/experiments/src/figures.rs",
            "no-panic",
            false,
            "compiled-in profile names are valid",
        ),
        (
            "crates/experiments/src/figures.rs",
            "no-panic",
            false,
            "single-benchmark workloads always build",
        ),
        (
            "crates/experiments/src/figures.rs",
            "no-panic",
            false,
            "compiled-in profile names are valid",
        ),
        (
            "crates/experiments/src/runner.rs",
            "no-panic",
            false,
            "validated config with 1..=8 threads",
        ),
        (
            "crates/experiments/src/runner.rs",
            "no-panic",
            false,
            "table 2 workloads are compiled-in and always build",
        ),
        (
            "crates/experiments/src/sweep.rs",
            "no-nondeterministic-threading",
            false,
            "worker-count default only; results are worker-count-invariant",
        ),
        (
            "crates/experiments/src/sweep.rs",
            "no-nondeterministic-threading",
            false,
            "the audited executor; index-claimed cells, order-independent merge",
        ),
        (
            "crates/experiments/src/sweep.rs",
            "no-wall-clock",
            false,
            "harness timer feeding CellStat observability; results never see it",
        ),
        (
            "crates/experiments/src/sweep.rs",
            "no-panic",
            false,
            "the atomic counter claims every cell index exactly once",
        ),
        (
            "crates/experiments/src/sweep.rs",
            "no-panic",
            false,
            "the atomic counter claims every cell index exactly once",
        ),
        (
            "crates/mem/src/cache.rs",
            "no-panic",
            false,
            "ways is non-empty, so min_by_key always yields a victim",
        ),
        (
            "crates/mem/src/hierarchy.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/mem/src/tlb.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/mem/src/tlb.rs",
            "no-panic",
            false,
            "preset geometry is valid by construction",
        ),
        (
            "crates/mem/src/tlb.rs",
            "no-panic",
            false,
            "entries checked non-empty before LRU eviction",
        ),
        (
            "crates/serve/src/server.rs",
            "no-nondeterministic-threading",
            false,
            "the daemon's accept loop; moves protocol bytes only, all simulation runs inside the audited sweep executor",
        ),
        (
            "crates/serve/src/server.rs",
            "no-nondeterministic-threading",
            false,
            "one protocol-pump thread per client connection; cell results are computed by the audited sweep executor, so which thread serves a client cannot affect any result",
        ),
        (
            "crates/serve/src/server.rs",
            "no-wall-clock",
            false,
            "job wall-time for the SUMMARY observability line; results never see it",
        ),
        (
            "crates/workloads/src/builder.rs",
            "no-lossy-cast",
            false,
            "bounded by min(24)",
        ),
        (
            "crates/workloads/src/builder.rs",
            "no-lossy-cast",
            false,
            "region ≤ 16 KB, so region/8 fits u32",
        ),
        (
            "crates/workloads/src/builder.rs",
            "no-lossy-cast",
            false,
            "region ≤ 16 KB, so region/8 fits u32",
        ),
        (
            "crates/workloads/src/builder.rs",
            "no-lossy-cast",
            false,
            "p_taken ∈ [0, 1], so at most 1000",
        ),
        (
            "crates/workloads/src/builder.rs",
            "no-lossy-cast",
            false,
            "remainder < dep_chains ≤ 24",
        ),
        (
            "crates/workloads/src/rng.rs",
            "no-lossy-cast",
            false,
            "draw < hi, asserted ≤ 2^32",
        ),
        (
            "crates/workloads/src/rng.rs",
            "no-lossy-cast",
            false,
            "draw < hi, asserted ≤ 2^16",
        ),
        (
            "crates/workloads/src/walker.rs",
            "no-panic",
            true,
            "the walker is the oracle; contract violations are simulator bugs and must abort",
        ),
        (
            "crates/workloads/src/walker.rs",
            "no-lossy-cast",
            false,
            "k < run, which is capped at the per-block fetch width",
        ),
        (
            "crates/workloads/src/workloads.rs",
            "no-panic",
            false,
            "table 2 names are compiled-in and valid",
        ),
        (
            "crates/workloads/src/workloads.rs",
            "no-panic",
            false,
            "a poisoned program cache is unrecoverable",
        ),
    ];

    let got: Vec<(&str, &str, bool, &str)> = ledger
        .iter()
        .map(|e| {
            (
                e.path.as_str(),
                e.rule_name.as_str(),
                e.file_level,
                e.justification.as_str(),
            )
        })
        .collect();
    assert_eq!(
        got, pinned,
        "the escape ledger changed — audit the diff and update the pin \
         (run `cargo run -p smt-lint -- --escapes` to see the live ledger)"
    );

    // Restate the confinement invariants directly, so a failure names them.
    for e in &ledger {
        if e.rule == Some(Rule::NoWallClock) || e.rule == Some(Rule::NoNondeterministicThreading) {
            assert!(
                e.path == SWEEP_EXECUTOR || e.path == SERVE_LISTENER,
                "clock/threading escape at {} — confined to the sweep \
                 executor and the daemon listener",
                e.path
            );
        }
    }
}

/// The zero-external-dependency policy, checked against `Cargo.lock`: every
/// locked package must be a workspace member. (PR 1 removed the last
/// external dev-dependency; this keeps the lockfile honest mechanically.)
#[test]
fn lockfile_contains_only_workspace_members() {
    let v = check_deps(&workspace_root()).expect("read Cargo.lock");
    assert!(v.is_empty(), "external packages in Cargo.lock: {v:?}");
    // And the check itself still bites: a fabricated lockfile entry fails.
    assert!(
        workspace_root().join("Cargo.lock").is_file(),
        "Cargo.lock missing — the dep-allowlist check would be vacuous"
    );
}

/// Pins the post-refactor decomposition of the simulator core: the cycle
/// loop lives in a slim composition root (`sim.rs`) that only sequences the
/// stage modules under `pipeline/`. A regrown monolith — new logic piling
/// into `sim.rs`, a stage module ballooning past the advisory ceiling, or a
/// stage file appearing/disappearing — fails here and must update this pin
/// deliberately.
#[test]
fn core_pipeline_decomposition_is_pinned() {
    let root = workspace_root();

    let mut stages: Vec<String> = std::fs::read_dir(root.join("crates/core/src/pipeline"))
        .expect("read pipeline/")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    stages.sort();
    assert_eq!(
        stages,
        [
            "commit.rs",
            "decode_rename.rs",
            "fetch.rs",
            "issue.rs",
            "mod.rs",
            "recovery.rs",
            "sched.rs",
        ],
        "pipeline stage set changed — update the pin and DESIGN.md §10"
    );

    let sim = std::fs::read_to_string(root.join(HOT_PATH_FILE)).expect("read sim.rs");
    let sim_lines = sim.lines().count();
    assert!(
        sim_lines < 500,
        "sim.rs grew to {sim_lines} lines — stage logic belongs in pipeline/"
    );

    for name in &stages {
        let text = std::fs::read_to_string(root.join("crates/core/src/pipeline").join(name))
            .expect("read stage module");
        let lines = text.lines().count();
        assert!(
            lines <= MODULE_SIZE_LIMIT,
            "pipeline/{name} grew to {lines} lines (ceiling {MODULE_SIZE_LIMIT})"
        );
    }
}

#[test]
fn every_experiment_config_validates_clean() {
    // The experiment suite simulates the Table 3 baseline under the paper's
    // policy sweep (and STALL/FLUSH variants) for 1..=8 threads; each such
    // configuration must pass the validator with zero diagnostics.
    let mut policies = FetchPolicy::paper_sweep().to_vec();
    policies.push(FetchPolicy::icount(1, 8).with_stall());
    policies.push(FetchPolicy::icount(1, 8).with_flush());
    policies.push(FetchPolicy::round_robin(1, 8));
    policies.push(FetchPolicy::br_count(1, 8));
    policies.push(FetchPolicy::miss_count(1, 8));
    for policy in policies {
        let cfg = SimConfig::hpca2004(policy);
        for threads in 1..=MAX_THREADS {
            let diags = cfg.validate_for_threads(threads);
            assert!(diags.is_empty(), "{policy} × {threads} threads: {diags:?}");
        }
    }
}
