//! The token-level guarantee, end to end: rule triggers quoted inside
//! string literals, raw strings, char literals and (nested) block comments
//! never fire, even under the most rule-laden path in the workspace.

/// The fixture is checked under `crates/core/src/pipeline/…`, which puts
/// every path-scoped rule in play at once: hash collections, wall clock,
/// panics, allocations (hot path), env reads (sim crate), threading,
/// lossy casts (hot path) and module size (core module).
const MAXIMAL_SCOPE_PATH: &str = "crates/core/src/pipeline/immune.rs";

#[test]
fn quoted_triggers_fire_no_rules_under_a_maximal_scope_path() {
    let src = include_str!("fixtures/immune.rs");
    let v = smt_lint::check_file(MAXIMAL_SCOPE_PATH, src);
    assert!(v.is_empty(), "expected zero violations, got: {v:#?}");
}

#[test]
fn the_same_triggers_fire_when_they_are_actual_code() {
    // Sanity check that the immunity above is earned: the identical trigger
    // text placed in code position under the same path does fire.
    let src = "fn f() { let m = HashMap::new(); let t = Instant::now(); }\n";
    let v = smt_lint::check_file(MAXIMAL_SCOPE_PATH, src);
    let rules: Vec<_> = v.iter().map(|v| v.rule.name()).collect();
    assert!(rules.contains(&"no-hash-collections"), "{v:?}");
    assert!(rules.contains(&"no-wall-clock"), "{v:?}");
}

#[test]
fn quoted_escape_markers_create_no_ledger_entries() {
    let src = include_str!("fixtures/immune.rs");
    let escapes = smt_lint::collect_escapes(MAXIMAL_SCOPE_PATH, src);
    assert!(escapes.is_empty(), "{escapes:#?}");
}
