//! Lexer integration tests: a golden token-stream snapshot over the
//! representative fixture, and totality/coverage property tests over
//! mutated source bytes driven by an in-tree splitmix64 PRNG.

use smt_lint::lexer::lex;

/// Renders a token stream one token per line: `line start..end Kind "text"`.
fn render(src: &str) -> String {
    let mut out = String::new();
    for tok in lex(src) {
        out.push_str(&format!(
            "{} {}..{} {:?} {:?}\n",
            tok.line,
            tok.start,
            tok.end,
            tok.kind,
            tok.text(src)
        ));
    }
    out
}

/// Asserts the lexer's coverage contract on `src`: spans are monotone,
/// non-overlapping, non-empty, on char boundaries, concatenate to exactly
/// the input, and every token's line number is exact.
fn assert_covers(src: &str) {
    let toks = lex(src);
    if src.is_empty() {
        assert!(toks.is_empty());
        return;
    }
    assert_eq!(toks[0].start, 0, "stream must start at byte 0");
    assert_eq!(
        toks.last().unwrap().end,
        src.len(),
        "stream must end at the last byte"
    );
    for w in toks.windows(2) {
        assert_eq!(w[0].end, w[1].start, "spans must be contiguous");
    }
    for t in &toks {
        assert!(t.start < t.end, "no empty tokens: {t:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span off char boundary: {t:?}"
        );
        assert_eq!(
            t.line,
            1 + src[..t.start].matches('\n').count(),
            "wrong line for {t:?}"
        );
    }
}

#[test]
fn representative_token_stream_matches_golden() {
    let src = include_str!("fixtures/representative.rs");
    let got = render(src);
    if std::env::var_os("UPDATE_LEXER_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/representative.tokens.txt"
        );
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = include_str!("fixtures/representative.tokens.txt");
    assert_eq!(
        got, want,
        "token stream drifted from the golden snapshot; if intentional, \
         regenerate with UPDATE_LEXER_GOLDEN=1 cargo test -p smt-lint --test lexer"
    );
}

#[test]
fn fixtures_satisfy_the_coverage_contract() {
    assert_covers(include_str!("fixtures/representative.rs"));
    assert_covers(include_str!("fixtures/immune.rs"));
    assert_covers("");
    assert_covers("\n\n\n");
}

#[test]
fn every_prefix_of_the_representative_fixture_lexes_totally() {
    // Truncation at every char boundary exercises every unterminated
    // construct: strings, raw strings mid-hash, block comments mid-nesting,
    // char literals, escape pairs cut in half.
    let src = include_str!("fixtures/representative.rs");
    for (i, _) in src.char_indices() {
        assert_covers(&src[..i]);
    }
    assert_covers(src);
}

/// splitmix64: the workspace's standard tiny PRNG (also used by the seeded
/// workload generators), inlined here to keep the lint crate zero-dep.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn lexing_is_total_over_mutated_source_bytes() {
    let base = include_str!("fixtures/representative.rs").as_bytes();
    let mut rng = SplitMix64(0x5EED_0006);
    for _ in 0..512 {
        let mut bytes = base.to_vec();
        let edits = 1 + (rng.next() % 8) as usize;
        for _ in 0..edits {
            let i = (rng.next() as usize) % bytes.len();
            match rng.next() % 3 {
                0 => bytes[i] = (rng.next() & 0xFF) as u8,
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, (rng.next() & 0xFF) as u8),
            }
        }
        // Lossy decoding keeps the input valid UTF-8 (replacement chars for
        // mangled sequences) while preserving the hostile structure: stray
        // quotes, unbalanced comment openers, orphaned escapes.
        let src = String::from_utf8_lossy(&bytes);
        assert_covers(&src);
        // The whole analyzer must be total on the same input, not just the
        // lexer: rules and escape extraction run on arbitrary bytes too.
        let _ = smt_lint::check_file("crates/core/src/pipeline/fuzzed.rs", &src);
        let _ = smt_lint::collect_escapes("crates/core/src/pipeline/fuzzed.rs", &src);
    }
}
