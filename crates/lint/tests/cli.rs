//! End-to-end tests of the `smt-lint` binary: exit codes and output against
//! fixture workspaces materialized under `CARGO_TARGET_TMPDIR`.

use std::path::Path;
use std::process::Command;

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, contents).unwrap();
}

fn run_lint(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_smt-lint"))
        .arg(root)
        .output()
        .expect("spawn smt-lint")
}

fn fixture(name: &str) -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    std::fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn clean_tree_exits_zero() {
    let root = fixture("clean");
    write(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
    );
    write(&root, "src/lib.rs", "#![forbid(unsafe_code)]\n");
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn seeded_violation_exits_nonzero() {
    let root = fixture("dirty");
    write(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n\
         pub fn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n",
    );
    let out = run_lint(&root);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-hash-collections"), "stdout: {stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs"),
        "stdout: {stdout}"
    );
}

#[test]
fn allow_escape_silences_the_line() {
    let root = fixture("allowed");
    write(
        &root,
        "crates/mem/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn f(x: Option<u32>) -> u32 {\n\
             x.expect(\"checked by caller\") // lint:allow(no-panic)\n\
         }\n",
    );
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "allowed line still flagged: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
