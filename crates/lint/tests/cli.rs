//! End-to-end tests of the `smt-lint` binary: exit codes and output against
//! fixture workspaces materialized under `CARGO_TARGET_TMPDIR`.

use std::path::Path;
use std::process::Command;

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, contents).unwrap();
}

fn run_lint(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_smt-lint"))
        .arg(root)
        .output()
        .expect("spawn smt-lint")
}

fn run_lint_args(root: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_smt-lint"))
        .arg(root)
        .args(args)
        .output()
        .expect("spawn smt-lint")
}

fn fixture(name: &str) -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    std::fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn clean_tree_exits_zero() {
    let root = fixture("clean");
    write(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
    );
    write(&root, "src/lib.rs", "#![forbid(unsafe_code)]\n");
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn seeded_violation_exits_nonzero() {
    let root = fixture("dirty");
    write(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n\
         pub fn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n",
    );
    let out = run_lint(&root);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-hash-collections"), "stdout: {stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs"),
        "stdout: {stdout}"
    );
}

#[test]
fn allow_escape_silences_the_line() {
    let root = fixture("allowed");
    write(
        &root,
        "crates/mem/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn f(x: Option<u32>) -> u32 {\n\
             x.expect(\"checked by caller\") // lint:allow(no-panic)\n\
         }\n",
    );
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "allowed line still flagged: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn escapes_mode_lists_the_ledger_and_exits_zero_when_justified() {
    let root = fixture("escapes-clean");
    write(
        &root,
        "crates/mem/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn f(x: Option<u32>) -> u32 {\n\
             x.expect(\"set\") // lint:allow(no-panic): checked by caller\n\
         }\n",
    );
    let out = run_lint_args(&root, &["--escapes"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(
        stdout.contains("crates/mem/src/lib.rs:3: allow(no-panic) — checked by caller"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("1 escape(s), all justified"), "{stdout}");
}

#[test]
fn malformed_escapes_fail_the_ledger() {
    let root = fixture("escapes-malformed");
    write(
        &root,
        "crates/mem/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // lint:allow(no-such-rule): rationale\n\
         pub fn f() {} // lint:allow(no-panic)\n",
    );
    let out = run_lint_args(&root, &["--escapes"]);
    assert_eq!(out.status.code(), Some(1), "malformed escapes must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule `no-such-rule`"), "{stderr}");
    assert!(stderr.contains("missing justification"), "{stderr}");
}

#[test]
fn escapes_json_emits_a_machine_readable_array() {
    let root = fixture("escapes-json");
    write(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // lint:allow-file(no-wall-clock): timer crate by design\n\
         pub fn f() {}\n",
    );
    let out = run_lint_args(&root, &["--escapes", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    assert!(
        stdout.contains(
            "{\"path\":\"crates/core/src/lib.rs\",\"line\":2,\"rule\":\"no-wall-clock\",\
             \"file_level\":true,\"justification\":\"timer crate by design\"}"
        ),
        "{stdout}"
    );
}

#[test]
fn json_without_escapes_is_a_usage_error() {
    let root = fixture("json-alone");
    write(&root, "src/lib.rs", "#![forbid(unsafe_code)]\n");
    let out = run_lint_args(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn external_package_in_lockfile_fails_the_dep_allowlist() {
    let root = fixture("dep-allowlist");
    write(&root, "src/lib.rs", "#![forbid(unsafe_code)]\n");
    write(
        &root,
        "Cargo.toml",
        "[workspace]\nmembers = []\n\n[package]\nname = \"ws-root\"\n",
    );
    write(
        &root,
        "Cargo.lock",
        "version = 3\n\n[[package]]\nname = \"ws-root\"\nversion = \"0.1.0\"\n\n\
         [[package]]\nname = \"rand\"\nversion = \"0.8.5\"\nsource = \"registry\"\n",
    );
    let out = run_lint(&root);
    assert_eq!(out.status.code(), Some(1), "external dep must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dep-allowlist"), "{stdout}");
    assert!(stdout.contains("`rand`"), "{stdout}");
}
