//! Representative fixture for the golden token-stream snapshot: one of
//! everything the lexer classifies, in a small, stable file. The pinned
//! stream lives in `representative.tokens.txt`; regenerate it with
//! `UPDATE_LEXER_GOLDEN=1 cargo test -p smt-lint --test lexer`.

/// A doc comment on an item.
pub struct Sample<'a> {
    text: &'a str,
}

/* plain block comment */
/** doc block comment */
/* nested /* inner */ outer again */

impl<'a> Sample<'a> {
    fn build(r#type: u32, scale: f64) -> Option<u64> {
        let hex = 0xFFu64;
        let oct = 0o77;
        let bin = 0b1010_1010;
        let f = 1.5e-3 + 2E+5 + 0.25f32 as f64;
        let range_sum: u32 = (0..10).sum();
        let s = "escaped \"quote\" and \\ backslash";
        let raw = r"no escapes \ here";
        let deep = r##"raw with "# inside"##;
        let bytes = b"\x00 bytes";
        let braw = br#"byte raw"#;
        let cstr = c"c string";
        let ch = 'x';
        let esc = '\'';
        let crab = '\u{1F980}';
        let emoji = '🦀';
        let byte = b'\n';
        let label = 'outer: loop {
            break 'outer;
        };
        let _ = (hex, oct, bin, f, range_sum, s, raw, deep, bytes, braw, cstr);
        let _ = (ch, esc, crab, emoji, byte, label, r#type, scale);
        Some(hex.wrapping_mul(3) >> 1 | 7 & 2 ^ 1)
    }
}
