//! Immunity fixture: every rule trigger in this file sits inside a string
//! literal, a raw string, a char literal, or a (nested) block comment. A
//! token-level linter must report **zero** violations when this file is
//! checked under the most rule-laden path in the workspace — the test in
//! `tests/immunity.rs` lends it `crates/core/src/pipeline/immune.rs`.
//!
//! Doc-comment prose may even discuss `HashMap`, `Instant::now()` and
//! `thread::spawn` freely: comments never become code tokens.

/* A nested block comment full of triggers:
   /* inner: let m = HashMap::new(); m.insert(SystemTime::now(), x.unwrap()); */
   still inside the outer comment: std::env::var("X").expect("set");
   thread_rng(); panic!("no"); available_parallelism(); y as u16;
*/

pub const PLAIN: &str = "HashMap::new() and HashSet plus Instant::now() and x.unwrap()";

pub const ESCAPED: &str = "quote \" then std::env::var(\"PATH\").unwrap() as u32 \\";

pub const RAW: &str = r#"thread::spawn(|| thread_rng().gen::<u32>() as u16).unwrap()"#;

pub const RAW_DEEP: &str = r##"r#"nested raw with panic!("boom") and Vec::new()"# still "# inside"##;

pub const BYTES: &[u8] = br"available_parallelism() and VecDeque::new() and x.clone()";

pub const QUOTES: (char, u8, char) = ('"', b'\'', '\u{1F980}');

// The string below quotes an escape marker as data; markers inside string
// literals are prose and must create no ledger entry and waive nothing.
pub const PROSE: &str = "a lint:allow(no-panic): quoted marker is not an escape";

/// The fixture's one honest piece of code, trigger-free by construction.
pub fn answer() -> u64 {
    let total =
        PLAIN.len() + ESCAPED.len() + RAW.len() + RAW_DEEP.len() + BYTES.len() + PROSE.len();
    total as u64 + QUOTES.0 as u64 + u64::from(QUOTES.1)
}
