//! A hand-rolled, zero-dependency lexer for (a superset of) Rust source.
//!
//! The linter's rules operate on this token stream rather than on raw lines,
//! which eliminates the classic false-positive class of regex scanners by
//! construction: a banned identifier inside a string literal, a raw string,
//! or a (possibly nested) block comment is a [`TokenKind::Str`] /
//! [`TokenKind::BlockComment`] token, never an [`TokenKind::Ident`], so no
//! rule can see it.
//!
//! Design constraints, in priority order:
//!
//! 1. **Totality.** [`lex`] never panics and never rejects input. Arbitrary
//!    bytes (including invalid UTF-8 replacement output, unterminated
//!    strings and comments, stray quotes) produce a token stream; malformed
//!    trailing constructs simply extend to end-of-input or degrade to
//!    [`TokenKind::Unknown`]. This is property-tested over mutated source
//!    bytes in `tests/lexer.rs`.
//! 2. **Coverage.** Token spans are monotone, non-overlapping, and
//!    concatenate to exactly the input: `tokens[i].end == tokens[i+1].start`,
//!    `tokens[0].start == 0`, `tokens.last().end == input.len()`. Every byte
//!    is attributed to exactly one token, so line numbers derived from spans
//!    are exact.
//! 3. **Fidelity where the rules need it.** Identifiers (including raw
//!    `r#ident`), the full raw-string family (`r"…"`, `r#"…"#`, `br#"…"#`,
//!    `cr"…"`), byte/char literals, nested block comments, and doc-comment
//!    classification are lexed exactly; numeric-literal classification is
//!    best-effort (a suffix like `1u32` stays one [`TokenKind::Int`] token),
//!    which is all the rules require.
//!
//! Punctuation is emitted one character per token (`::` is two `:` tokens);
//! the rule engine matches multi-character operators as short sequences.

/// Classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// Lifetime or loop label: `'a`, `'static`.
    Lifetime,
    /// Integer literal, including base prefixes and suffixes (`0xFFu64`).
    Int,
    /// Float literal (`1.5`, `2e-3`, `1.0f32`).
    Float,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`, `cr#"…"#`. Contents are opaque to the rules.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// `// …` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* … */` comment with nesting; `doc` is true for `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// One punctuation character: `.`, `:`, `!`, `{`, …
    Punct,
    /// A run of whitespace (spaces, tabs, newlines, carriage returns).
    Whitespace,
    /// Any byte sequence the lexer cannot classify (keeps lexing total).
    Unknown,
}

impl TokenKind {
    /// Whether the token is source *code* (not a comment or whitespace) —
    /// the stream the rule passes operate on.
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether the token is a comment of either flavour.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether the token is a *doc* comment (`///`, `//!`, `/**`, `/*!`).
    /// Escape markers inside doc comments are prose, not escapes.
    pub fn is_doc_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }
}

/// One lexed token: a classification plus its byte span and starting line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte in the input.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text, sliced back out of the input it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte cursor over the input. All scanning is byte-oriented; multi-byte
/// UTF-8 sequences only ever appear inside identifiers, literals, comments,
/// or [`TokenKind::Unknown`] runs, so slicing at token boundaries is always
/// on a char boundary for valid UTF-8 input.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_to(&mut self, to: usize) {
        let to = to.min(self.src.len());
        for &b in &self.src[self.pos..to] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos = to;
    }

    /// Consumes a quoted run starting at the opening `"` at `self.pos`,
    /// honouring backslash escapes, through the closing quote (or to
    /// end-of-input if unterminated).
    fn eat_escaped_string(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        let mut i = self.pos + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2, // escape pair; may step past EOF, clamped below
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        self.bump_to(i);
    }

    /// Consumes a raw-string run: `self.pos` is at the `r`; `prefix_len`
    /// bytes (the `r` / `br` / `cr`) precede the `#`s and opening quote.
    /// Returns false (consuming nothing) if the shape is not actually a raw
    /// string (e.g. `r#ident`).
    fn eat_raw_string(&mut self, prefix_len: usize) -> bool {
        let mut hashes = 0;
        while self.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some(b'"') {
            return false;
        }
        // Scan for `"` followed by `hashes` `#`s.
        let mut i = self.pos + prefix_len + hashes + 1;
        while i < self.src.len() {
            if self.src[i] == b'"' {
                let close = &self.src[i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&b| b == b'#') {
                    self.bump_to(i + 1 + hashes);
                    return true;
                }
            }
            i += 1;
        }
        self.bump_to(self.src.len()); // unterminated: consume the rest
        true
    }
}

/// Lexes `src` into a complete token stream covering every input byte.
///
/// Never panics; see the module docs for the totality and coverage
/// guarantees.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while cur.pos < cur.src.len() {
        let start = cur.pos;
        let line = cur.line;
        let b = cur.src[cur.pos];
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                let mut i = cur.pos;
                while i < cur.src.len() && matches!(cur.src[i], b' ' | b'\t' | b'\r' | b'\n') {
                    i += 1;
                }
                cur.bump_to(i);
                TokenKind::Whitespace
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                // Doc if `///` (but not `////`) or `//!`.
                let doc = match (cur.peek(2), cur.peek(3)) {
                    (Some(b'/'), Some(b'/')) => false,
                    (Some(b'/'), _) | (Some(b'!'), _) => true,
                    _ => false,
                };
                let mut i = cur.pos;
                while i < cur.src.len() && cur.src[i] != b'\n' {
                    i += 1;
                }
                cur.bump_to(i);
                TokenKind::LineComment { doc }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                // Doc if `/**` (but not `/***` or the empty `/**/`) or `/*!`.
                let doc = match (cur.peek(2), cur.peek(3)) {
                    (Some(b'*'), Some(b'*')) | (Some(b'*'), Some(b'/')) => false,
                    (Some(b'*'), _) | (Some(b'!'), _) => true,
                    _ => false,
                };
                let mut depth = 1usize;
                let mut i = cur.pos + 2;
                while i < cur.src.len() && depth > 0 {
                    if cur.src[i] == b'/' && cur.src.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if cur.src[i] == b'*' && cur.src.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                cur.bump_to(i); // unterminated: consumes the rest
                TokenKind::BlockComment { doc }
            }
            b'"' => {
                cur.eat_escaped_string();
                TokenKind::Str
            }
            b'r' | b'b' | b'c' if raw_or_byte_literal(&mut cur) => {
                // `raw_or_byte_literal` consumed the token and reports which
                // kind it was via the cursor side channel below; the helper
                // only returns true for string/char literal shapes.
                if cur.src[start..cur.pos].contains(&b'"') {
                    TokenKind::Str
                } else {
                    TokenKind::Char
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'\…'` and `'<one char>'` are
                // char literals; `'ident` (no closing quote right after one
                // char) is a lifetime; a lone `'` degrades to Unknown.
                if cur.peek(1) == Some(b'\\') {
                    // Escaped char literal: scan to the closing quote.
                    let mut i = cur.pos + 2;
                    // Skip the escaped character itself (handles `'\''`).
                    if i < cur.src.len() {
                        i += 1;
                    }
                    while i < cur.src.len() && cur.src[i] != b'\'' && cur.src[i] != b'\n' {
                        i += 1;
                    }
                    if cur.src.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    cur.bump_to(i);
                    TokenKind::Char
                } else if let Some(c1) = cur.peek(1) {
                    // Width of the single (possibly multi-byte) char after `'`.
                    let w = utf8_width(c1);
                    if cur.peek(1 + w) == Some(b'\'') {
                        cur.bump_to(cur.pos + 2 + w);
                        TokenKind::Char
                    } else if is_ident_start(c1) {
                        let mut i = cur.pos + 1;
                        while i < cur.src.len() && is_ident_continue(cur.src[i]) {
                            i += 1;
                        }
                        cur.bump_to(i);
                        TokenKind::Lifetime
                    } else {
                        cur.bump_to(cur.pos + 1);
                        TokenKind::Unknown
                    }
                } else {
                    cur.bump_to(cur.pos + 1);
                    TokenKind::Unknown
                }
            }
            b'0'..=b'9' => {
                let mut i = cur.pos + 1;
                let mut float = false;
                while i < cur.src.len() {
                    let c = cur.src[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        // Exponent sign: `1e-3` / `2E+5`.
                        if (c == b'e' || c == b'E')
                            && matches!(cur.src.get(i + 1), Some(b'+') | Some(b'-'))
                            && cur.src.get(i + 2).is_some_and(|d| d.is_ascii_digit())
                        {
                            float = true;
                            i += 2;
                        }
                        i += 1;
                    } else if c == b'.'
                        && !float
                        && cur.src.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    {
                        // `1.5` is a float; `1..n` is a range — only consume
                        // the dot when a digit follows.
                        float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                cur.bump_to(i);
                if float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                }
            }
            b if is_ident_start(b) => {
                let mut i = cur.pos + 1;
                while i < cur.src.len() && is_ident_continue(cur.src[i]) {
                    i += 1;
                }
                cur.bump_to(i);
                TokenKind::Ident
            }
            b if b.is_ascii_punctuation() => {
                cur.bump_to(cur.pos + 1);
                TokenKind::Punct
            }
            _ => {
                // Control bytes or stray continuation bytes: consume one
                // whole UTF-8 sequence so spans stay on char boundaries.
                cur.bump_to(cur.pos + utf8_width(b).max(1));
                TokenKind::Unknown
            }
        };
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

/// Byte width of the UTF-8 sequence starting with `b` (1 for ASCII and for
/// malformed continuation bytes, so the cursor always advances).
fn utf8_width(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Handles the `r` / `b` / `c` prefixed literal family at the cursor:
/// raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
/// C strings (`c"…"`, `cr#"…"#`) and byte chars (`b'x'`). Returns true and
/// consumes the literal if one is present; returns false (consuming
/// nothing) for plain identifiers like `raw`, `break`, or `r#ident`.
fn raw_or_byte_literal(cur: &mut Cursor<'_>) -> bool {
    let b0 = cur.peek(0).unwrap_or(0);
    let b1 = cur.peek(1);
    match (b0, b1) {
        // r"…" / r#…# — but r#ident is a raw identifier, handled by the
        // ident path after eat_raw_string rejects it (no quote after #s).
        (b'r', Some(b'"')) | (b'r', Some(b'#')) => cur.eat_raw_string(1),
        (b'b', Some(b'"')) | (b'c', Some(b'"')) => {
            cur.bump_to(cur.pos + 1);
            cur.eat_escaped_string();
            true
        }
        (b'b', Some(b'r')) | (b'c', Some(b'r'))
            if matches!(cur.peek(2), Some(b'"') | Some(b'#')) =>
        {
            cur.eat_raw_string(2)
        }
        (b'b', Some(b'\'')) => {
            // Byte char: delegate to the char-literal scan by consuming the
            // `b` and re-lexing the quote inline.
            let mut i = cur.pos + 2;
            if cur.peek(2) == Some(b'\\') {
                i += 1; // skip the backslash; loop below finds the quote
            }
            while i < cur.src.len() && cur.src[i] != b'\'' && cur.src[i] != b'\n' {
                i += 1;
            }
            if cur.src.get(i) == Some(&b'\'') {
                i += 1;
            }
            cur.bump_to(i);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.kind.is_code())
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn spans_cover_input_exactly() {
        let src = "fn main() { let x = r#\"hi \\\" there\"#; } // done\n";
        let toks = lex(src);
        assert_eq!(toks.first().unwrap().start, 0);
        assert_eq!(toks.last().unwrap().end, src.len());
        for w in toks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap at {w:?}");
        }
    }

    #[test]
    fn idents_and_puncts() {
        let got = code_texts("std::env::var_os(\"X\")");
        assert_eq!(
            got,
            ["std", ":", ":", "env", ":", ":", "var_os", "(", "\"X\"", ")"]
        );
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let src = "let s = r#\"contains \"quotes\" and HashMap\"#;";
        let toks = lex(src);
        let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].text(src), "r#\"contains \"quotes\" and HashMap\"#");
        assert!(code_texts(src).iter().all(|t| t != "HashMap"));
    }

    #[test]
    fn raw_string_hash_depths() {
        for src in [
            "r\"plain\"",
            "r#\"one\"#",
            "r##\"two \"# inner\"##",
            "br#\"bytes\"#",
            "cr\"cstr\"",
            "b\"bytes\"",
            "c\"cstr\"",
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].kind, TokenKind::Str, "{src}");
            assert_eq!(toks[0].end, src.len(), "{src}");
        }
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let got = kinds("r#match");
        // `r`, `#`, `match` degrade gracefully… actually eat_raw_string
        // rejects (no quote), so the ident path lexes `r#match`? No: `r` is
        // followed by `#` but no quote, so we fall to the ident arm via the
        // guard returning false — `r` lexes as an ident, `#` as punct,
        // `match` as ident. All are code tokens; none is a string.
        assert!(got.iter().all(|(k, _)| *k != TokenKind::Str));
        assert_eq!(got.last().unwrap().1, "match");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let got = kinds(src);
        let comments: Vec<_> = got
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::BlockComment { .. }))
            .collect();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].1, "/* outer /* inner */ still comment */");
        assert_eq!(code_texts(src), ["a", "b"]);
    }

    #[test]
    fn doc_comment_classification() {
        let cases = [
            ("// plain", false),
            ("/// outer doc", true),
            ("//! inner doc", true),
            ("//// not doc (rustdoc rule)", false),
            ("/* plain */", false),
            ("/** outer doc */", true),
            ("/*! inner doc */", true),
            ("/*** not doc */", false),
            ("/**/", false),
        ];
        for (src, want_doc) in cases {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind.is_doc_comment(), want_doc, "{src}");
        }
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "let c = 'x'; let e = '\\n'; let q = '\\''; fn f<'a>(x: &'a str) {}";
        let toks = lex(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'", "'\\''"]);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn unicode_char_literal() {
        let src = "let c = '∀';";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Char));
        assert_eq!(toks.last().unwrap().end, src.len());
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "0..10 1.5 0xFFu64 2e-3 1_000";
        let got: Vec<_> = lex(src)
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect();
        assert_eq!(
            got,
            [
                (TokenKind::Int, "0".to_string()),
                (TokenKind::Int, "10".to_string()),
                (TokenKind::Float, "1.5".to_string()),
                (TokenKind::Int, "0xFFu64".to_string()),
                (TokenKind::Float, "2e-3".to_string()),
                (TokenKind::Int, "1_000".to_string()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "a\nb\n\n  c // x\n/* m\nn */ d";
        let lines: Vec<(String, usize)> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            [
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 4),
                ("d".to_string(), 6),
            ]
        );
    }

    #[test]
    fn unterminated_constructs_are_total() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'",
            "b'",
            "let x = \"abc\\",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().unwrap().end, src.len(), "{src:?}");
        }
    }

    #[test]
    fn multiline_strings_hide_their_contents() {
        let src = "let s = \"line one\n .unwrap() HashMap\n\"; f()";
        assert!(code_texts(src)
            .iter()
            .all(|t| t != "HashMap" && t != "unwrap"));
        assert!(code_texts(src).iter().any(|t| t == "f"));
    }
}
