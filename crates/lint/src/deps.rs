//! The `dep-allowlist` check: every package named in `Cargo.lock` must be a
//! workspace member.
//!
//! PR 1 removed every external (dev-)dependency; this check keeps that
//! discipline mechanical instead of reviewed-by-eye. The allowlist is
//! derived from the manifests themselves (the root `Cargo.toml` plus every
//! `crates/*/Cargo.toml`), so adding a workspace crate needs no linter
//! change, while any external package that sneaks into the lockfile —
//! directly or transitively — is flagged with its `Cargo.lock` line.
//!
//! A workspace without a `Cargo.lock` (e.g. the linter's own CLI test
//! fixtures) is vacuously clean.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::{Rule, Violation};

/// Extracts the `[package] name = "…"` value from one manifest's text.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let l = line.trim();
        if l.starts_with('[') {
            in_package = l == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = l.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim_start();
                return rest
                    .strip_prefix('"')
                    .and_then(|r| r.split('"').next())
                    .map(str::to_string);
            }
        }
    }
    None
}

/// The workspace's own package names: the root manifest plus every
/// `crates/*/Cargo.toml`.
fn workspace_package_names(root: &Path) -> io::Result<BTreeSet<String>> {
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        manifests.extend(dirs.into_iter().map(|d| d.join("Cargo.toml")));
    }
    let mut names = BTreeSet::new();
    for manifest in manifests {
        if !manifest.is_file() {
            continue;
        }
        if let Some(name) = package_name(&fs::read_to_string(&manifest)?) {
            names.insert(name);
        }
    }
    Ok(names)
}

/// Checks `Cargo.lock` against the workspace-member allowlist, returning
/// one [`Rule::DepAllowlist`] violation per external package.
pub fn check_deps(root: &Path) -> io::Result<Vec<Violation>> {
    let lock_path = root.join("Cargo.lock");
    if !lock_path.is_file() {
        return Ok(Vec::new());
    }
    let allow = workspace_package_names(root)?;
    let lock = fs::read_to_string(&lock_path)?;

    let mut violations = Vec::new();
    let mut in_package = false;
    let mut named = false;
    for (idx, line) in lock.lines().enumerate() {
        let l = line.trim();
        if l.starts_with("[[") {
            in_package = l == "[[package]]";
            named = false;
            continue;
        }
        if l.starts_with('[') {
            in_package = false;
            continue;
        }
        if in_package && !named {
            if let Some(rest) = l.strip_prefix("name = \"") {
                named = true;
                if let Some(name) = rest.split('"').next() {
                    if !allow.contains(name) {
                        violations.push(Violation {
                            rule: Rule::DepAllowlist,
                            path: "Cargo.lock".to_string(),
                            line: idx + 1,
                            what: format!(
                                "package `{name}` is not a workspace member (zero-external-dependency policy)"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str, lock: Option<&str>) -> std::path::PathBuf {
        let root = std::env::temp_dir().join("smt-lint-unit").join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha")).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n\n[package]\nname = \"ws-root\"\n",
        )
        .unwrap();
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        if let Some(lock) = lock {
            fs::write(root.join("Cargo.lock"), lock).unwrap();
        }
        root
    }

    #[test]
    fn workspace_members_pass() {
        let root = fixture(
            "deps-clean",
            Some(
                "version = 3\n\n[[package]]\nname = \"alpha\"\nversion = \"0.1.0\"\n\n\
                 [[package]]\nname = \"ws-root\"\nversion = \"0.1.0\"\n",
            ),
        );
        assert!(check_deps(&root).unwrap().is_empty());
    }

    #[test]
    fn external_package_is_flagged_with_its_line() {
        let root = fixture(
            "deps-dirty",
            Some(
                "version = 3\n\n[[package]]\nname = \"alpha\"\nversion = \"0.1.0\"\n\n\
                 [[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry\"\n",
            ),
        );
        let v = check_deps(&root).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DepAllowlist);
        assert_eq!(v[0].path, "Cargo.lock");
        assert_eq!(v[0].line, 8);
        assert!(v[0].what.contains("`serde`"), "{}", v[0].what);
    }

    #[test]
    fn dependency_name_keys_outside_package_sections_are_ignored() {
        // `[package.metadata]`-style sections and `dependencies` arrays must
        // not be mistaken for package declarations.
        let root = fixture(
            "deps-sections",
            Some(
                "[[package]]\nname = \"alpha\"\nversion = \"0.1.0\"\ndependencies = [\n \"ws-root\",\n]\n\n\
                 [metadata]\nname = \"not-a-package\"\n",
            ),
        );
        assert!(check_deps(&root).unwrap().is_empty());
    }

    #[test]
    fn missing_lockfile_is_vacuously_clean() {
        let root = fixture("deps-nolock", None);
        assert!(check_deps(&root).unwrap().is_empty());
    }

    #[test]
    fn manifest_name_parsing() {
        assert_eq!(
            package_name("[package]\nname = \"smt-lint\"\n"),
            Some("smt-lint".to_string())
        );
        assert_eq!(
            package_name("[workspace]\nmembers = []\n\n[package]\nname    =   \"x\"\n"),
            Some("x".to_string())
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
