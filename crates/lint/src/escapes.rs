//! The escape ledger: machine-readable extraction of every `lint:allow` /
//! `lint:allow-file` marker in the workspace.
//!
//! Markers are parsed out of the *token stream*, and only out of ordinary
//! (non-doc) comment tokens: a marker quoted inside a doc comment or a
//! string literal is prose and never becomes an escape — neither for rule
//! waiving in [`crate::check_file`] nor for this ledger. Each entry records
//! the file, line, rule and the justification text following the marker
//! (`// lint:allow(<rule>): <justification>`); `tests/static_checks.rs`
//! pins the exact ledger, so adding, moving or rewording an escape is
//! always a reviewed diff.

use std::io;
use std::path::Path;

use crate::lexer::{lex, Token};
use crate::Rule;

/// One `lint:allow` site: a deliberate, justified exception to a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Escape {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line of the marker itself.
    pub line: usize,
    /// The parsed rule, if the marker names a known one.
    pub rule: Option<Rule>,
    /// The rule name exactly as written between the parentheses.
    pub rule_name: String,
    /// Whether this is a whole-file `lint:allow-file` marker.
    pub file_level: bool,
    /// Text following the marker on its line — the human argument for the
    /// exception. Empty means unjustified, which the ledger gate rejects.
    pub justification: String,
}

impl Escape {
    /// Whether the entry passes the ledger's hygiene bar: a known rule name
    /// and a non-empty justification.
    pub fn is_well_formed(&self) -> bool {
        self.rule.is_some() && !self.justification.is_empty()
    }

    /// The entry as one line of JSON (object literal, no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"file_level\":{},\"justification\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            json_escape(&self.rule_name),
            self.file_level,
            json_escape(&self.justification),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters) —
/// all this zero-dependency workspace needs to emit valid JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const MARKER: &str = "lint:allow";

/// Extracts every escape marker from one file's already-lexed token stream.
pub(crate) fn collect_from_tokens(path: &str, src: &str, toks: &[Token]) -> Vec<Escape> {
    let mut out = Vec::new();
    for tok in toks {
        if !tok.kind.is_comment() || tok.kind.is_doc_comment() {
            continue;
        }
        let text = tok.text(src);
        let mut search = 0;
        while let Some(off) = text[search..].find(MARKER) {
            let at = search + off;
            search = at + MARKER.len();
            let rest = &text[at + MARKER.len()..];
            let (file_level, rest) = match rest.strip_prefix("-file") {
                Some(r) => (true, r),
                None => (false, rest),
            };
            let Some(rest) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule_name = rest[..close].trim().to_string();
            // Justification: the remainder of the marker's line within the
            // comment, minus a leading separator and a block-comment closer.
            let after = rest[close + 1..].lines().next().unwrap_or("");
            let mut just = after.trim();
            just = just.strip_suffix("*/").unwrap_or(just).trim();
            for sep in [":", "—", "-", ","] {
                if let Some(r) = just.strip_prefix(sep) {
                    just = r.trim_start();
                    break;
                }
            }
            let line = tok.line + text[..at].matches('\n').count();
            out.push(Escape {
                path: path.to_string(),
                line,
                rule: Rule::from_name(&rule_name),
                rule_name,
                file_level,
                justification: just.to_string(),
            });
        }
    }
    out
}

/// Extracts every escape marker from one file's contents. `path` must be
/// workspace-relative with forward slashes.
pub fn collect_escapes(path: &str, contents: &str) -> Vec<Escape> {
    collect_from_tokens(path, contents, &lex(contents))
}

/// The full escape ledger of the workspace rooted at `root`, ordered by
/// path then line.
pub fn workspace_escapes(root: &Path) -> io::Result<Vec<Escape>> {
    let mut out = Vec::new();
    for (rel, file) in crate::workspace_rs_files(root)? {
        let contents = std::fs::read_to_string(&file)?;
        out.extend(collect_escapes(&rel, &contents));
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_line_marker_with_justification() {
        let src = "fn f() {} // lint:allow(no-panic): caller checked emptiness\n";
        let e = collect_escapes("crates/core/src/x.rs", src);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, Some(Rule::NoPanic));
        assert_eq!(e[0].rule_name, "no-panic");
        assert_eq!(e[0].line, 1);
        assert!(!e[0].file_level);
        assert_eq!(e[0].justification, "caller checked emptiness");
        assert!(e[0].is_well_formed());
    }

    #[test]
    fn parses_file_marker_and_em_dash_separator() {
        let src =
            "// lint:allow-file(no-panic) — invariant aborts are deliberate here\nfn f() {}\n";
        let e = collect_escapes("crates/core/src/sim.rs", src);
        assert_eq!(e.len(), 1);
        assert!(e[0].file_level);
        assert_eq!(e[0].justification, "invariant aborts are deliberate here");
    }

    #[test]
    fn unknown_rule_and_missing_justification_are_ill_formed() {
        let src = "// lint:allow(no-such-rule): reasons\nfn f() {} // lint:allow(no-panic)\n";
        let e = collect_escapes("crates/core/src/x.rs", src);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].rule, None);
        assert!(!e[0].is_well_formed());
        assert_eq!(e[1].rule, Some(Rule::NoPanic));
        assert!(e[1].justification.is_empty());
        assert!(!e[1].is_well_formed());
    }

    #[test]
    fn doc_comments_and_strings_are_not_escape_sites() {
        let src = "//! Mentions lint:allow(no-panic) in prose.\n\
                   /// And lint:allow(no-wall-clock) here.\n\
                   fn f() -> &'static str { \"lint:allow(no-panic): nope\" }\n";
        assert!(collect_escapes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn block_comment_markers_carry_their_exact_line() {
        let src = "/* leading\n   lint:allow(no-panic): argued here\n*/\nfn f() {}\n";
        let e = collect_escapes("crates/core/src/x.rs", src);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].line, 2);
        assert_eq!(e[0].justification, "argued here");
    }

    #[test]
    fn block_comment_close_is_trimmed_from_justification() {
        let src = "fn f() {} /* lint:allow(no-panic): checked above */\n";
        let e = collect_escapes("crates/core/src/x.rs", src);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].justification, "checked above");
    }

    #[test]
    fn json_is_escaped() {
        let e = Escape {
            path: "crates/core/src/x.rs".into(),
            line: 3,
            rule: Some(Rule::NoPanic),
            rule_name: "no-panic".into(),
            file_level: false,
            justification: "has \"quotes\" and \\ slashes".into(),
        };
        assert_eq!(
            e.to_json(),
            "{\"path\":\"crates/core/src/x.rs\",\"line\":3,\"rule\":\"no-panic\",\"file_level\":false,\"justification\":\"has \\\"quotes\\\" and \\\\ slashes\"}"
        );
    }
}
