//! Command-line entry point: `cargo run -p smt-lint [workspace-root] [--escapes [--json]]`.
//!
//! Default mode scans the workspace's `.rs` files (and `Cargo.lock`)
//! against the project lint rules and prints one line per violation. Exit
//! code 0 means clean, 1 means at least one *enforced* violation, 2 means
//! the scan itself failed (I/O error or bad usage). Advisory rules
//! (`no-alloc-in-step`, `module-size`) are printed with an `advisory:`
//! prefix but never fail the run.
//!
//! `--escapes` instead emits the machine-checked escape ledger: every
//! `lint:allow` / `lint:allow-file` site with its file, line, rule and
//! justification. Add `--json` for a JSON array (one object per escape) on
//! stdout, suitable for CI artifacts. The ledger mode exits 1 if any
//! escape is malformed — an unknown rule name or a missing justification —
//! so unauditable escapes can never land.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn default_root() -> PathBuf {
    // When run via `cargo run -p smt-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run_scan(root: &std::path::Path) -> ExitCode {
    match smt_lint::check_workspace(root) {
        Ok(violations) if violations.is_empty() => {
            println!("smt-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            let enforced = violations.iter().filter(|v| !v.rule.is_advisory()).count();
            let advisory = violations.len() - enforced;
            for v in &violations {
                if v.rule.is_advisory() {
                    println!("advisory: {v}");
                } else {
                    println!("{v}");
                }
            }
            if enforced == 0 {
                println!("smt-lint: clean ({advisory} advisory finding(s))");
                ExitCode::SUCCESS
            } else {
                println!("smt-lint: {enforced} violation(s), {advisory} advisory");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("smt-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_escapes(root: &std::path::Path, json: bool) -> ExitCode {
    let escapes = match smt_lint::workspace_escapes(root) {
        Ok(escapes) => escapes,
        Err(e) => {
            eprintln!("smt-lint: escape scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("[");
        for (i, e) in escapes.iter().enumerate() {
            let comma = if i + 1 < escapes.len() { "," } else { "" };
            println!("  {}{comma}", e.to_json());
        }
        println!("]");
    } else {
        for e in &escapes {
            let marker = if e.file_level { "allow-file" } else { "allow" };
            println!(
                "{}:{}: {marker}({}) — {}",
                e.path,
                e.line,
                e.rule_name,
                if e.justification.is_empty() {
                    "<unjustified>"
                } else {
                    &e.justification
                }
            );
        }
    }
    let malformed: Vec<_> = escapes.iter().filter(|e| !e.is_well_formed()).collect();
    if malformed.is_empty() {
        if !json {
            println!("smt-lint: {} escape(s), all justified", escapes.len());
        }
        ExitCode::SUCCESS
    } else {
        for e in &malformed {
            let why = if e.rule.is_none() {
                format!("unknown rule `{}`", e.rule_name)
            } else {
                "missing justification".to_string()
            };
            eprintln!("smt-lint: malformed escape at {}:{}: {why}", e.path, e.line);
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut escapes = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--escapes" => escapes = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: smt-lint [workspace-root] [--escapes [--json]]\n\n\
                     default: scan for rule violations (exit 1 on enforced findings)\n\
                     --escapes: emit the lint:allow ledger (exit 1 on malformed escapes)\n\
                     --json: with --escapes, emit the ledger as a JSON array"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("smt-lint: unknown flag {flag} (see --help)");
                return ExitCode::from(2);
            }
            path if root.is_none() => root = Some(PathBuf::from(path)),
            extra => {
                eprintln!("smt-lint: unexpected argument {extra} (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    if json && !escapes {
        eprintln!("smt-lint: --json requires --escapes");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(default_root);
    if escapes {
        run_escapes(&root, json)
    } else {
        run_scan(&root)
    }
}
