//! Command-line entry point: `cargo run -p smt-lint [workspace-root]`.
//!
//! Scans the workspace's `.rs` files against the project lint rules and
//! prints one line per violation. Exit code 0 means clean, 1 means at least
//! one *enforced* violation, 2 means the scan itself failed (I/O error).
//! Advisory rules (`no-alloc-in-step`) are printed with an `advisory:`
//! prefix but never fail the run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    // When run via `cargo run -p smt-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let root = workspace_root();
    match smt_lint::check_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("smt-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            let enforced = violations.iter().filter(|v| !v.rule.is_advisory()).count();
            let advisory = violations.len() - enforced;
            for v in &violations {
                if v.rule.is_advisory() {
                    println!("advisory: {v}");
                } else {
                    println!("{v}");
                }
            }
            if enforced == 0 {
                println!("smt-lint: clean ({advisory} advisory finding(s))");
                ExitCode::SUCCESS
            } else {
                println!("smt-lint: {enforced} violation(s), {advisory} advisory");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("smt-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
