//! # smt-lint — token-level determinism and robustness linter
//!
//! A zero-dependency static analyzer enforcing the smtfetch workspace's
//! invariants. Since v2 every rule runs as a pass over the token stream of
//! the in-tree [`lexer`] (identifiers, literals including raw strings,
//! nested block comments, punctuation — all with exact spans), so a banned
//! token inside a string literal, raw string, or comment can never fire a
//! rule: the false-positive class of line-regex scanners is eliminated by
//! construction, not by escape hatches.
//!
//! ## Rule catalog
//!
//! Enforced (exit code 1, `cargo test` gate):
//!
//! * **`no-hash-collections`** — `HashMap`/`HashSet` are banned everywhere
//!   (iteration order is nondeterministic; seeded runs must be
//!   bit-reproducible). Use `BTreeMap`/`BTreeSet`/`Vec`.
//! * **`no-unordered-iteration`** — re-introductions of the banned
//!   collections through `use … as` renames or `type` aliases are tracked
//!   per file (to a fixpoint, so aliases of aliases are caught) and every
//!   occurrence of the alias is flagged.
//! * **`no-wall-clock`** — `SystemTime::now`, `Instant::now` and
//!   `thread_rng` are banned in the simulation crates, the experiment
//!   harness *and* the sweep daemon ([`CLOCK_CRATES`]): all time comes
//!   from the simulated clock, all randomness from the seeded workload RNG
//!   stream. The audited exceptions are the sweep executor's per-cell
//!   harness timer and the daemon's per-job `SUMMARY` timer.
//! * **`no-env-in-core`** — `std::env` reads are banned in the simulation
//!   crates ([`SIM_CRATES`]): config structs are the only legal input. This
//!   is a precondition for content-hash memoization of run results — a
//!   result keyed by (config, seed, code version) is only sound if nothing
//!   else can influence it.
//! * **`no-nondeterministic-threading`** — raw `std::thread` primitives
//!   (`spawn`, `scope`, `Builder`, `current`, `ThreadId`) and
//!   `available_parallelism` are banned outside the audited sweep executor
//!   and the sweep daemon's listener ([`SERVE_LISTENER`], whose threads
//!   only pump protocol bytes); all simulation parallelism goes through
//!   the executor so parallel == serial stays provable.
//!   (The simulator's own `smt_isa::ThreadId` — a hardware context index —
//!   is unaffected: only the `thread::`-qualified path is matched.)
//! * **`no-lossy-cast`** — `as` casts to integer types narrower than 64
//!   bits are banned workspace-wide: a silent truncation anywhere — stats,
//!   predictor indexing, serialization — corrupts results without a
//!   diagnostic. Use `try_into`/`try_from` or carry an audited escape
//!   arguing why the value fits.
//! * **`no-panic`** — `.unwrap()`, `.expect(…)` and `panic!` are banned in
//!   library code outside tests; fallible constructors return
//!   `Result<_, Diagnostic>`. (`assert!` of internal invariants is allowed.)
//! * **`deny-unsafe`** — every crate root must carry
//!   `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.
//! * **`dep-allowlist`** — every package in `Cargo.lock` must be a
//!   workspace member (the PR 1 zero-external-dependency discipline,
//!   enforced mechanically; see [`check_deps`]).
//!
//! Advisory (printed by the CLI, never fail it):
//!
//! * **`no-alloc-in-step`** — heap-allocating tokens flagged in the
//!   pipeline hot path (see [`is_hot_path`]); the allocation-free property
//!   itself is *enforced* at runtime by the counting-allocator gate in
//!   `tests/alloc_gate.rs`, the lint is the early line-precise pointer.
//! * **`module-size`** — modules under `crates/core/src` with more than
//!   [`MODULE_SIZE_LIMIT`] non-test lines; keeps the simulator core
//!   decomposed.
//!
//! ## Escapes and the machine-checked ledger
//!
//! The escape hatch for the rare deliberate exception:
//!
//! * `// lint:allow(<rule>): <justification>` on the offending line or the
//!   line above;
//! * `// lint:allow-file(<rule>): <justification>` once per file to waive a
//!   rule for the whole file.
//!
//! Markers are recognised only inside ordinary (non-doc) comments — a
//! marker quoted in a doc comment or a string literal is prose, not an
//! escape. Every marker must name a known rule and carry a justification;
//! `smt-lint --escapes` (add `--json` for machines) emits the full ledger
//! (file, line, rule, justification), and `tests/static_checks.rs` pins the
//! exact ledger so any new escape is a reviewed diff, never a silent
//! regression.
//!
//! Run the CLI with `cargo run -p smt-lint` (exit code 1 on any enforced
//! violation or malformed escape, 2 on scan failure), or use
//! [`check_workspace`] / [`check_file`] / [`workspace_escapes`] from tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;

mod deps;
mod escapes;

pub use deps::check_deps;
pub use escapes::{collect_escapes, workspace_escapes, Escape};

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, Token, TokenKind};

/// Crates whose behaviour must be a pure function of the seed: wall-clock
/// reads, ambient randomness and environment reads are banned here.
pub const SIM_CRATES: [&str; 5] = ["isa", "workloads", "bpred", "mem", "core"];

/// Crates subject to the `no-wall-clock` rule: the simulation crates plus
/// the experiment harness and the sweep daemon, whose results must also be
/// pure functions of the seed. (The sweep executor's per-cell harness timer
/// and the daemon's per-job `SUMMARY` timer are the audited
/// `lint:allow(no-wall-clock)` exceptions; timing otherwise lives only in
/// `smt-bench`.)
pub const CLOCK_CRATES: [&str; 7] = [
    "isa",
    "workloads",
    "bpred",
    "mem",
    "core",
    "experiments",
    "serve",
];

/// The cycle-loop composition root, subject to the `no-alloc-in-step` rule
/// together with every pipeline stage module (see [`is_hot_path`]).
pub const HOT_PATH_FILE: &str = "crates/core/src/sim.rs";

/// Directory prefix of the pipeline stage modules, all of which are in the
/// steady-state hot path.
pub const HOT_PATH_DIR: &str = "crates/core/src/pipeline/";

/// The workload instruction generator, called by the fetch stage every
/// delivered instruction (and in bulk via `Walker::next_block`) — as hot as
/// the stages themselves.
pub const HOT_PATH_WALKER: &str = "crates/workloads/src/walker.rs";

/// The structure-of-arrays in-flight window, scanned by issue, commit and
/// squash every cycle and written by fetch every delivered instruction —
/// the data structure the stage loops spend their time in.
pub const HOT_PATH_WINDOW: &str = "crates/core/src/window.rs";

/// The statistics module — historically the seed scope of `no-lossy-cast`
/// (now workspace-wide), still named separately as the path where a silent
/// integer truncation would most directly corrupt reported results.
pub const STATS_FILE: &str = "crates/core/src/metrics.rs";

/// Directory whose modules are subject to the advisory `module-size` rule.
pub const MODULE_SIZE_DIR: &str = "crates/core/src/";

/// Advisory ceiling on non-test lines per module under [`MODULE_SIZE_DIR`].
pub const MODULE_SIZE_LIMIT: usize = 800;

/// The audited parallel executor: together with [`SERVE_LISTENER`], the
/// only file allowed to touch raw `std::thread` primitives (each use
/// carries a line-level, ledger-pinned escape).
pub const SWEEP_EXECUTOR: &str = "crates/experiments/src/sweep.rs";

/// The sweep daemon's listener: the only file besides [`SWEEP_EXECUTOR`]
/// allowed raw `std::thread` primitives (accept loop + one protocol-pump
/// thread per connection; all simulation stays inside the executor), and
/// the home of the daemon's one audited wall-clock read (the per-job
/// `SUMMARY` timer).
pub const SERVE_LISTENER: &str = "crates/serve/src/server.rs";

/// Whether `path` is in the pipeline hot path whose steady-state cycle loop
/// must not allocate: the composition root (`sim.rs`), every stage module
/// under `crates/core/src/pipeline/`, the structure-of-arrays window the
/// stages scan, and the workload walker that fetch drives once per
/// delivered instruction.
pub fn is_hot_path(path: &str) -> bool {
    path == HOT_PATH_FILE
        || path == HOT_PATH_WALKER
        || path == HOT_PATH_WINDOW
        || path.starts_with(HOT_PATH_DIR)
}

/// Whether `path` is in scope of the `no-lossy-cast` rule: all workspace
/// library source (the same scope as `no-panic` — every `crates/*/src/**`
/// file plus the facade, excluding binaries, benches, tests and the lint
/// crate itself, whose token tables must name the narrow types).
pub fn is_lossy_cast_scope(path: &str) -> bool {
    is_library_source(path)
}

/// The lint rules, as stable machine-readable names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` banned (nondeterministic iteration order).
    NoHashCollections,
    /// `SystemTime::now`/`Instant::now`/`thread_rng` banned in sim crates.
    NoWallClock,
    /// `.unwrap()`/`.expect(`/`panic!` banned in library code outside tests.
    NoPanic,
    /// Crate roots must carry `#![forbid(unsafe_code)]` (or `deny`).
    DenyUnsafe,
    /// Heap-allocating tokens flagged in the pipeline hot path (advisory).
    NoAllocInStep,
    /// Core modules above the non-test line ceiling (advisory).
    ModuleSize,
    /// `std::env` reads banned in sim crates (config is the only input).
    NoEnvInCore,
    /// Aliases of the banned unordered collections tracked and flagged.
    NoUnorderedIteration,
    /// Narrowing `as` casts banned workspace-wide.
    NoLossyCast,
    /// Raw `std::thread` primitives banned outside the sweep executor.
    NoNondeterministicThreading,
    /// `Cargo.lock` packages must all be workspace members.
    DepAllowlist,
}

impl Rule {
    /// Every rule, in declaration (= severity-sort) order.
    pub const ALL: [Rule; 11] = [
        Rule::NoHashCollections,
        Rule::NoWallClock,
        Rule::NoPanic,
        Rule::DenyUnsafe,
        Rule::NoAllocInStep,
        Rule::ModuleSize,
        Rule::NoEnvInCore,
        Rule::NoUnorderedIteration,
        Rule::NoLossyCast,
        Rule::NoNondeterministicThreading,
        Rule::DepAllowlist,
    ];

    /// The rule's name, as used in `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoHashCollections => "no-hash-collections",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoPanic => "no-panic",
            Rule::DenyUnsafe => "deny-unsafe",
            Rule::NoAllocInStep => "no-alloc-in-step",
            Rule::ModuleSize => "module-size",
            Rule::NoEnvInCore => "no-env-in-core",
            Rule::NoUnorderedIteration => "no-unordered-iteration",
            Rule::NoLossyCast => "no-lossy-cast",
            Rule::NoNondeterministicThreading => "no-nondeterministic-threading",
            Rule::DepAllowlist => "dep-allowlist",
        }
    }

    /// Parses a rule from its stable name (as written in `lint:allow(...)`).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether the rule is advisory: printed by the CLI, but not counted
    /// toward its failure exit code. (The allocation-free property itself is
    /// *enforced* by the counting-allocator test; the lint is an early,
    /// line-precise pointer to the likely culprit.)
    pub fn is_advisory(self) -> bool {
        matches!(self, Rule::NoAllocInStep | Rule::ModuleSize)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The offending token or a short description.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.what
        )
    }
}

/// Which crate (by directory name) a workspace-relative path belongs to, if
/// it is under `crates/<name>/`.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// Whether `path` contains a path segment equal to `seg`.
fn has_segment(path: &str, seg: &str) -> bool {
    path.split('/').any(|s| s == seg)
}

/// Whether `path` is library source subject to the `no-panic` rule:
/// `crates/<c>/src/**` or the workspace facade `src/lib.rs`, excluding
/// binaries, benches, examples and the linter itself.
fn is_library_source(path: &str) -> bool {
    if has_segment(path, "bin")
        || has_segment(path, "tests")
        || has_segment(path, "benches")
        || has_segment(path, "examples")
        || path.ends_with("/main.rs")
        || path == "src/main.rs"
    {
        return false;
    }
    match crate_of(path) {
        Some("lint") => false,
        Some(_) => has_segment(path, "src"),
        None => path == "src/lib.rs",
    }
}

/// Whether `path` is a crate root that must declare `unsafe_code` denial.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3)
}

/// One code token (comments and whitespace filtered out), borrowing its
/// text from the source: the stream the rule passes match against.
#[derive(Clone, Copy)]
struct CodeTok<'a> {
    kind: TokenKind,
    text: &'a str,
    line: usize,
}

fn code_tokens<'a>(src: &'a str, toks: &[Token]) -> Vec<CodeTok<'a>> {
    toks.iter()
        .filter(|t| t.kind.is_code())
        .map(|t| CodeTok {
            kind: t.kind,
            text: t.text(src),
            line: t.line,
        })
        .collect()
}

/// Whether the code tokens starting at `i` spell out `pat` exactly.
/// Multi-character operators are written as consecutive single-character
/// tokens (`::` is `":", ":"`), matching the lexer's punctuation model.
fn seq(code: &[CodeTok<'_>], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| code.get(i + k).is_some_and(|t| t.text == *p))
}

/// Whether any position in the stream spells out `pat`.
fn seq_anywhere(code: &[CodeTok<'_>], pat: &[&str]) -> bool {
    (0..code.len()).any(|i| seq(code, i, pat))
}

/// Per-line flags marking `#[cfg(test)]`-gated regions (modules or items),
/// found by brace counting on the code-token stream. Index 0 is unused;
/// lines are 1-based.
fn test_region_flags(code: &[CodeTok<'_>], nlines: usize) -> Vec<bool> {
    let mut flags = vec![false; nlines + 2];
    let mut i = 0;
    while i < code.len() {
        if !seq(code, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        let mut end_line = start_line;
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i + 7;
        while j < code.len() {
            let t = &code[j];
            end_line = t.line;
            match t.text {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => depth -= 1,
                ";" if !opened && depth == 0 => opened = true, // braceless item
                _ => {}
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        flags[start_line..=end_line.min(nlines)]
            .iter_mut()
            .for_each(|f| *f = true);
        i = j + 1;
    }
    flags
}

/// Collects the per-file alias set of the banned unordered collections:
/// names introduced by `use … HashMap as X` renames or `type X = …HashMap…;`
/// aliases, iterated to a fixpoint so aliases of aliases are caught too.
/// The base names themselves are excluded (they are `no-hash-collections`'
/// business).
fn unordered_aliases(code: &[CodeTok<'_>]) -> BTreeSet<String> {
    let mut banned: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    loop {
        let mut grew = false;
        for i in 0..code.len() {
            let t = &code[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            // `<banned> as <alias>` — the rename form, inside `use` lists or
            // anywhere else someone smuggles it.
            if banned.contains(t.text)
                && code.get(i + 1).is_some_and(|n| n.text == "as")
                && code.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                grew |= banned.insert(code[i + 2].text.to_string());
            }
            // `type <alias> … = <rhs>;` where the RHS names a banned type.
            if t.text == "type" && code.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
                let alias = code[i + 1].text;
                let mut hit = false;
                let mut saw_eq = false;
                let mut j = i + 2;
                while let Some(n) = code.get(j) {
                    match n.text {
                        ";" => break,
                        "=" => saw_eq = true,
                        _ if saw_eq && n.kind == TokenKind::Ident && banned.contains(n.text) => {
                            hit = true
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if hit {
                    grew |= banned.insert(alias.to_string());
                }
            }
        }
        if !grew {
            break;
        }
    }
    banned.remove("HashMap");
    banned.remove("HashSet");
    banned
}

/// Integer types narrower than 64 bits: the `no-lossy-cast` targets. A cast
/// *to* one of these can silently truncate a wider counter; widening casts
/// (`as u64`, `as f64`) and pointer-size casts (`as usize`, lossless from
/// `u32`/`u64` on the 64-bit targets we support) are out of scope.
const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// `thread::`-qualified primitives banned by `no-nondeterministic-threading`.
const THREAD_PRIMITIVES: [&str; 5] = ["spawn", "scope", "Builder", "current", "ThreadId"];

/// Checks one file's contents against every rule applicable to its path.
///
/// `path` must be workspace-relative with forward slashes
/// (e.g. `crates/core/src/sim.rs`). All matching happens on the lexed token
/// stream: strings, raw strings and comments can never trigger a rule.
pub fn check_file(path: &str, contents: &str) -> Vec<Violation> {
    let toks = lex(contents);
    let escape_list = escapes::collect_from_tokens(path, contents, &toks);
    let code = code_tokens(contents, &toks);
    let nlines = contents.lines().count();

    let file_allows = |rule: Rule| {
        escape_list
            .iter()
            .any(|e| e.file_level && e.rule == Some(rule))
    };
    // A line-level marker covers its own line and the next one (marker
    // above the offending line); file-level markers cover everything.
    let allowed = |rule: Rule, line: usize| {
        escape_list
            .iter()
            .any(|e| e.rule == Some(rule) && (e.file_level || e.line == line || e.line + 1 == line))
    };

    let mut violations: Vec<Violation> = Vec::new();

    // deny-unsafe: whole-file property of crate roots, matched as the token
    // sequence of the inner attribute (a doc-comment mention is invisible).
    if is_crate_root(path)
        && !file_allows(Rule::DenyUnsafe)
        && !seq_anywhere(
            &code,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
        && !seq_anywhere(
            &code,
            &["#", "!", "[", "deny", "(", "unsafe_code", ")", "]"],
        )
    {
        violations.push(Violation {
            rule: Rule::DenyUnsafe,
            path: path.to_string(),
            line: 0,
            what: "crate root lacks #![forbid(unsafe_code)] (or deny)".to_string(),
        });
    }

    let in_lint_crate = crate_of(path) == Some("lint");
    let hash_applies = !in_lint_crate && !file_allows(Rule::NoHashCollections);
    let unordered_applies = !in_lint_crate && !file_allows(Rule::NoUnorderedIteration);
    let clock_applies = crate_of(path).is_some_and(|c| CLOCK_CRATES.contains(&c))
        && !file_allows(Rule::NoWallClock);
    let panic_applies = is_library_source(path) && !file_allows(Rule::NoPanic);
    let alloc_applies = is_hot_path(path) && !file_allows(Rule::NoAllocInStep);
    let env_applies =
        crate_of(path).is_some_and(|c| SIM_CRATES.contains(&c)) && !file_allows(Rule::NoEnvInCore);
    let thread_applies = !in_lint_crate && !file_allows(Rule::NoNondeterministicThreading);
    let lossy_applies = is_lossy_cast_scope(path) && !file_allows(Rule::NoLossyCast);

    // module-size: whole-file advisory keeping the simulator core
    // decomposed. Test modules don't count — they are co-located by
    // convention and don't add reader burden to the library code.
    if path.starts_with(MODULE_SIZE_DIR) && !file_allows(Rule::ModuleSize) {
        let flags = test_region_flags(&code, nlines);
        let non_test = (1..=nlines).filter(|&l| !flags[l]).count();
        if non_test > MODULE_SIZE_LIMIT {
            violations.push(Violation {
                rule: Rule::ModuleSize,
                path: path.to_string(),
                line: 0,
                what: format!(
                    "{non_test} non-test lines (advisory ceiling {MODULE_SIZE_LIMIT}) — consider splitting the module"
                ),
            });
        }
    }

    let any_token_pass = hash_applies
        || unordered_applies
        || clock_applies
        || panic_applies
        || alloc_applies
        || env_applies
        || thread_applies
        || lossy_applies;
    if !any_token_pass {
        violations.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
        return violations;
    }

    let test_flags = test_region_flags(&code, nlines);
    let in_test = |line: usize| test_flags.get(line).copied().unwrap_or(false);
    let aliases = if unordered_applies {
        unordered_aliases(&code)
    } else {
        BTreeSet::new()
    };

    let mut push = |rule: Rule, line: usize, what: String| {
        if !allowed(rule, line) {
            violations.push(Violation {
                rule,
                path: path.to_string(),
                line,
                what,
            });
        }
    };

    for i in 0..code.len() {
        let t = &code[i];
        if hash_applies
            && t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(Rule::NoHashCollections, t.line, t.text.to_string());
        }
        if unordered_applies && t.kind == TokenKind::Ident && aliases.contains(t.text) {
            push(
                Rule::NoUnorderedIteration,
                t.line,
                format!("{} (alias of a banned unordered collection)", t.text),
            );
        }
        if clock_applies {
            if seq(&code, i, &["SystemTime", ":", ":", "now"]) {
                push(Rule::NoWallClock, t.line, "SystemTime::now".to_string());
            }
            if seq(&code, i, &["Instant", ":", ":", "now"]) {
                push(Rule::NoWallClock, t.line, "Instant::now".to_string());
            }
            if t.kind == TokenKind::Ident && t.text == "thread_rng" {
                push(Rule::NoWallClock, t.line, "thread_rng".to_string());
            }
        }
        if panic_applies && !in_test(t.line) {
            if seq(&code, i, &[".", "unwrap", "(", ")"]) {
                push(Rule::NoPanic, t.line, ".unwrap()".to_string());
            }
            if seq(&code, i, &[".", "expect", "("]) {
                push(Rule::NoPanic, t.line, ".expect(".to_string());
            }
            if seq(&code, i, &["panic", "!"]) {
                push(Rule::NoPanic, t.line, "panic!".to_string());
            }
        }
        if alloc_applies && !in_test(t.line) {
            if seq(&code, i, &["Vec", ":", ":", "new", "(", ")"]) {
                push(Rule::NoAllocInStep, t.line, "Vec::new()".to_string());
            }
            if seq(&code, i, &["VecDeque", ":", ":", "new", "(", ")"]) {
                push(Rule::NoAllocInStep, t.line, "VecDeque::new()".to_string());
            }
            if seq(&code, i, &[".", "clone", "(", ")"]) {
                push(Rule::NoAllocInStep, t.line, ".clone()".to_string());
            }
        }
        if env_applies && seq(&code, i, &["std", ":", ":", "env"]) {
            push(Rule::NoEnvInCore, t.line, "std::env".to_string());
        }
        if thread_applies {
            for prim in THREAD_PRIMITIVES {
                if seq(&code, i, &["thread", ":", ":", prim]) {
                    push(
                        Rule::NoNondeterministicThreading,
                        t.line,
                        format!("thread::{prim}"),
                    );
                }
            }
            if t.kind == TokenKind::Ident && t.text == "available_parallelism" {
                push(
                    Rule::NoNondeterministicThreading,
                    t.line,
                    "available_parallelism".to_string(),
                );
            }
        }
        if lossy_applies && !in_test(t.line) && t.kind == TokenKind::Ident && t.text == "as" {
            if let Some(ty) = code.get(i + 1) {
                if ty.kind == TokenKind::Ident && NARROW_INT_TYPES.contains(&ty.text) {
                    push(Rule::NoLossyCast, t.line, format!("as {}", ty.text));
                }
            }
        }
    }

    violations.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
    violations.dedup();
    violations
}

/// Recursively collects `.rs` files under `dir`, in sorted (deterministic)
/// order, skipping build output and VCS internals.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file of the workspace rooted at `root`, as
/// `(workspace-relative path, absolute path)` pairs in deterministic order.
pub(crate) fn workspace_rs_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut files = Vec::new();
    for top in ["src", "tests", "benches", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .rs files found under {} — wrong root?", root.display()),
        ));
    }
    Ok(files
        .into_iter()
        .map(|file| {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            (rel, file)
        })
        .collect())
}

/// Scans every `.rs` file of the workspace rooted at `root` (plus the
/// `Cargo.lock` dependency allowlist) and returns all violations, sorted by
/// path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for (rel, file) in workspace_rs_files(root)? {
        let contents = fs::read_to_string(&file)?;
        violations.extend(check_file(&rel, &contents));
    }
    violations.extend(check_deps(root)?);
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_collections_flagged_in_sim_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::NoHashCollections));
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hash_collections_flagged_even_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let v = check_file("crates/experiments/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoHashCollections);
    }

    #[test]
    fn hash_in_comments_and_strings_ignored() {
        let src = "// HashMap is banned\nfn f() { let s = \"HashMap\"; }\n/* HashSet */\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_in_raw_strings_and_nested_comments_ignored() {
        let src = "fn f() -> &'static str { r#\"HashMap<HashSet> \"quoted\"\"# }\n\
                   /* outer /* HashMap */ HashSet */\nfn g() {}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_alias_via_use_rename_is_flagged() {
        let src = "use std::collections::HashMap as FastMap;\n\
                   fn f() { let m: FastMap<u32, u32> = FastMap::new(); }\n";
        let v = check_file("crates/core/src/x.rs", src);
        let aliases: Vec<_> = v
            .iter()
            .filter(|v| v.rule == Rule::NoUnorderedIteration)
            .collect();
        // Declaration line + use line (findings dedupe per line).
        assert_eq!(aliases.len(), 2, "{v:?}");
        // The underlying HashMap token is still the hash rule's business.
        assert!(v.iter().any(|v| v.rule == Rule::NoHashCollections));
    }

    #[test]
    fn unordered_alias_via_type_alias_is_flagged_to_fixpoint() {
        let src = "use std::collections::HashMap as M0;\n\
                   type M1 = M0<u32, u32>;\n\
                   type M2 = M1;\n\
                   fn f(m: M2) {}\n";
        let v = check_file("crates/bpred/src/x.rs", src);
        let flagged: BTreeSet<_> = v
            .iter()
            .filter(|v| v.rule == Rule::NoUnorderedIteration)
            .map(|v| v.line)
            .collect();
        // Alias occurrences on every line, including the chained M2 use.
        assert_eq!(flagged, BTreeSet::from([1, 2, 3, 4]), "{v:?}");
    }

    #[test]
    fn innocent_type_aliases_are_not_flagged() {
        let src = "type Cycle = u64;\nfn f(c: Cycle) {}\nuse std::io::Error as IoError;\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_only_flagged_in_clock_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(check_file("crates/mem/src/x.rs", src).len(), 1);
        // The experiment harness is clock-banned too (results must be pure
        // functions of the seed); only the audited sweep timer is allowed.
        assert_eq!(
            check_file("crates/experiments/src/sweep.rs", src)
                .iter()
                .filter(|v| v.rule == Rule::NoWallClock)
                .count(),
            1
        );
        assert!(check_file("crates/bench/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoWallClock));
    }

    #[test]
    fn env_reads_flagged_in_sim_crates_only() {
        let src = "fn f() -> bool { std::env::var_os(\"X\").is_some() }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoEnvInCore);
        assert_eq!(v[0].what, "std::env");
        // The harness and bench crates may read env (worker counts etc).
        assert!(check_file("crates/experiments/src/x.rs", src).is_empty());
        assert!(check_file("crates/bench/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoEnvInCore));
        // The env! compile-time macro is not an env *read*.
        let src = "const DIR: &str = env!(\"CARGO_MANIFEST_DIR\");\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn threading_primitives_flagged_outside_sweep() {
        for (src, what) in [
            ("fn f() { std::thread::spawn(|| {}); }\n", "thread::spawn"),
            ("fn f() { std::thread::scope(|_| {}); }\n", "thread::scope"),
            (
                "fn f() { let n = std::thread::available_parallelism(); }\n",
                "available_parallelism",
            ),
            (
                "fn f() -> std::thread::ThreadId { std::thread::current().id() }\n",
                "thread::ThreadId",
            ),
        ] {
            let v = check_file("crates/core/src/x.rs", src);
            assert!(
                v.iter()
                    .any(|v| v.rule == Rule::NoNondeterministicThreading && v.what == what),
                "{what}: {v:?}"
            );
            // Root-level tests are covered too.
            assert!(
                check_file("tests/x.rs", src)
                    .iter()
                    .any(|v| v.rule == Rule::NoNondeterministicThreading),
                "{what} in tests"
            );
        }
        // The simulator's own ThreadId (a hardware context index) is fine.
        let src = "use smt_isa::ThreadId;\nfn f(t: ThreadId) {}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn lossy_casts_flagged_across_workspace_library_source() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        let v = check_file(HOT_PATH_FILE, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoLossyCast);
        assert_eq!(v[0].what, "as u32");
        assert_eq!(check_file(STATS_FILE, src).len(), 1);
        assert_eq!(check_file("crates/workloads/src/walker.rs", src).len(), 1);
        // Workspace-wide since the checkpoint PR: any library source file.
        assert_eq!(check_file("crates/core/src/config.rs", src).len(), 1);
        assert_eq!(check_file("crates/experiments/src/report.rs", src).len(), 1);
        // Test harnesses, binaries and the lint crate are out of scope.
        assert!(check_file("tests/golden.rs", src).is_empty());
        assert!(check_file("crates/experiments/src/bin/all.rs", src).is_empty());
        assert!(check_file("crates/lint/src/escapes.rs", src).is_empty());
        // Widening casts are always fine.
        let src = "fn f(x: u32) -> u64 { x as u64 + x as usize as u64 }\n";
        assert!(check_file(HOT_PATH_FILE, src).is_empty());
        // `as` outside a cast (use renames) is not flagged.
        let src = "use std::io::Error as E;\n";
        assert!(check_file(HOT_PATH_FILE, src).is_empty());
    }

    #[test]
    fn panics_flagged_in_library_code_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(check_file("crates/bpred/src/x.rs", src).len(), 1);
        assert!(check_file("crates/bpred/tests/x.rs", src).is_empty());
        assert!(check_file("crates/experiments/src/bin/all.rs", src).is_empty());
        assert!(check_file("tests/end_to_end.rs", src).is_empty());
    }

    #[test]
    fn panics_in_cfg_test_modules_ignored() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_after_cfg_test_module_closes_is_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn f() { panic!(\"x\") }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn spaced_panic_calls_are_still_caught() {
        // The line-regex scanner missed `.unwrap ()`; the token pass doesn't.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap () }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoPanic);
    }

    #[test]
    fn line_allow_waives_that_line_and_rule_only() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-panic): caller checked\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
        let src =
            "// lint:allow(no-panic): caller checked\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
        // The wrong rule name does not waive.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-wall-clock)\n";
        assert_eq!(check_file("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn file_allow_waives_the_whole_file() {
        let src = "// lint:allow-file(no-panic): invariant aborts are deliberate\nfn f() { panic!() }\nfn g() { panic!() }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn markers_in_strings_and_doc_comments_do_not_waive() {
        // A marker inside a string literal is data, not an escape.
        let src = "fn f() -> (&'static str, u32) {\n    (\"lint:allow(no-panic)\", None::<u32>.unwrap())\n}\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        // A marker inside a doc comment is prose, not an escape.
        let src = "/// Escape with `lint:allow(no-panic)` markers.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn crate_roots_require_unsafe_denial() {
        let v = check_file("crates/core/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DenyUnsafe);
        assert_eq!(v[0].line, 0);
        assert!(check_file("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
        assert!(check_file("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n").is_empty());
        // A doc-comment mention of the attribute does not satisfy the rule.
        let v = check_file(
            "crates/core/src/lib.rs",
            "//! Carries `#![forbid(unsafe_code)]`… except it doesn't.\npub fn f() {}\n",
        );
        assert_eq!(v.len(), 1);
        // Non-root files are not subject to the rule.
        assert!(check_file("crates/core/src/sim.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn assert_is_not_flagged() {
        let src = "fn f(n: usize) { assert!(n > 0, \"positive\"); }\n";
        assert!(check_file("crates/bpred/src/x.rs", src).is_empty());
    }

    #[test]
    fn alloc_tokens_flagged_in_hot_path_only() {
        let src = "fn step() { let v: Vec<u32> = Vec::new(); let w = v.clone(); }\n";
        let v = check_file(HOT_PATH_FILE, src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::NoAllocInStep));
        // Every pipeline stage module is hot path too.
        let v = check_file("crates/core/src/pipeline/issue.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::NoAllocInStep));
        // The same tokens anywhere else are not this rule's business.
        assert!(check_file("crates/core/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn hot_path_covers_sim_and_pipeline_stages() {
        assert!(is_hot_path(HOT_PATH_FILE));
        assert!(is_hot_path("crates/core/src/pipeline/mod.rs"));
        assert!(is_hot_path("crates/core/src/pipeline/fetch.rs"));
        assert!(is_hot_path("crates/core/src/pipeline/sched.rs"));
        assert!(is_hot_path(HOT_PATH_WALKER));
        assert!(is_hot_path(HOT_PATH_WINDOW));
        assert!(!is_hot_path("crates/core/src/config.rs"));
        assert!(!is_hot_path("crates/core/src/frontend/mod.rs"));
        assert!(!is_hot_path("crates/workloads/src/builder.rs"));
        // The lossy-cast scope is all workspace library source, minus the
        // lint crate (its token tables must name the narrow types).
        assert!(is_lossy_cast_scope(HOT_PATH_FILE));
        assert!(is_lossy_cast_scope(STATS_FILE));
        assert!(is_lossy_cast_scope("crates/core/src/config.rs"));
        assert!(is_lossy_cast_scope("crates/experiments/src/report.rs"));
        assert!(!is_lossy_cast_scope("crates/lint/src/lib.rs"));
        assert!(!is_lossy_cast_scope("tests/golden.rs"));
    }

    #[test]
    fn alloc_rule_honours_escapes_and_test_regions() {
        let src = "fn new(b: &Vec<u32>) { let a = b.clone(); } // lint:allow(no-alloc-in-step): construction only\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let v: Vec<u32> = Vec::new(); }\n}\n";
        assert!(check_file(HOT_PATH_FILE, src).is_empty());
    }

    #[test]
    fn only_the_alloc_and_size_rules_are_advisory() {
        assert!(Rule::NoAllocInStep.is_advisory());
        assert!(Rule::ModuleSize.is_advisory());
        for rule in [
            Rule::NoHashCollections,
            Rule::NoWallClock,
            Rule::NoPanic,
            Rule::DenyUnsafe,
            Rule::NoEnvInCore,
            Rule::NoUnorderedIteration,
            Rule::NoLossyCast,
            Rule::NoNondeterministicThreading,
            Rule::DepAllowlist,
        ] {
            assert!(!rule.is_advisory(), "{rule} must stay enforced");
        }
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn oversized_core_modules_flagged() {
        let src = "fn f() {}\n".repeat(MODULE_SIZE_LIMIT + 1);
        let v = check_file("crates/core/src/big.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ModuleSize);
        assert_eq!(v[0].line, 0);
        // Only core modules are in scope.
        assert!(check_file("crates/bpred/src/big.rs", &src).is_empty());
        // At the ceiling is fine.
        let src = "fn f() {}\n".repeat(MODULE_SIZE_LIMIT);
        assert!(check_file("crates/core/src/big.rs", &src).is_empty());
    }

    #[test]
    fn module_size_ignores_test_regions_and_honours_escape() {
        // A short library section plus a huge co-located test module is fine.
        let tests = "    fn t() {}\n".repeat(MODULE_SIZE_LIMIT + 1);
        let src = format!("fn lib() {{}}\n#[cfg(test)]\nmod tests {{\n{tests}}}\n");
        assert!(check_file("crates/core/src/big.rs", &src).is_empty());
        // The file-level escape waives the rule.
        let src = format!(
            "// lint:allow-file(module-size): generated table\n{}",
            "fn f() {}\n".repeat(MODULE_SIZE_LIMIT + 1)
        );
        assert!(check_file("crates/core/src/big.rs", &src).is_empty());
    }

    #[test]
    fn violation_display_is_greppable() {
        let v = Violation {
            rule: Rule::NoPanic,
            path: "crates/core/src/x.rs".into(),
            line: 7,
            what: ".unwrap()".into(),
        };
        assert_eq!(
            v.to_string(),
            "crates/core/src/x.rs:7: [no-panic] .unwrap()"
        );
    }
}
