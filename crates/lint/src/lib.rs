//! # smt-lint — determinism and robustness linter for the smtfetch workspace
//!
//! A zero-dependency source scanner enforcing the project's invariants:
//!
//! * **`no-hash-collections`** — `HashMap`/`HashSet` are banned everywhere in
//!   the simulator (iteration order is nondeterministic; seeded runs must be
//!   bit-reproducible). Use `BTreeMap`/`BTreeSet`/`Vec` instead.
//! * **`no-wall-clock`** — `SystemTime::now`, `Instant::now` and `thread_rng`
//!   are banned in the simulation crates (`isa`, `workloads`, `bpred`, `mem`,
//!   `core`) *and* the experiment harness (`experiments`): all time comes from
//!   the simulated clock, all randomness from the seeded
//!   [`Srng`](https://docs.rs) stream. The one audited exception is the sweep
//!   executor's per-cell harness timer (`experiments/src/sweep.rs`), marked
//!   `lint:allow(no-wall-clock)` — it feeds observability records only, never
//!   results.
//! * **`no-panic`** — `.unwrap()`, `.expect(…)` and `panic!` are banned in
//!   library code outside tests; fallible constructors return
//!   `Result<_, Diagnostic>`. (`assert!` of internal invariants is allowed.)
//! * **`deny-unsafe`** — every crate root must carry
//!   `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.
//! * **`no-alloc-in-step`** — *advisory*: `Vec::new()`, `VecDeque::new()` and
//!   `.clone()` are flagged in the pipeline hot path
//!   (`crates/core/src/sim.rs`, every `crates/core/src/pipeline/` stage, and
//!   the per-cycle instruction generator `crates/workloads/src/walker.rs`,
//!   see [`is_hot_path`]), whose steady-state cycle loop is allocation-free
//!   (proven by the counting-allocator gate in `tests/alloc_gate.rs`).
//!   Construction-time allocations carry audited `lint:allow` escapes pinned
//!   by `tests/static_checks.rs`. Advisory rules are printed by the CLI but
//!   do not fail it.
//! * **`module-size`** — *advisory*: modules under `crates/core/src` with
//!   more than [`MODULE_SIZE_LIMIT`] non-test lines are flagged; the
//!   simulator core stays decomposed (the refactor that split the monolithic
//!   cycle loop into `pipeline/` stages is pinned by
//!   `tests/static_checks.rs`).
//!
//! Escape hatches, for the rare deliberate exception:
//!
//! * `// lint:allow(<rule>)` on the offending line or the line above;
//! * `// lint:allow-file(<rule>)` anywhere in a file to waive a rule for the
//!   whole file (used by the cycle-accurate pipeline in `sim.rs`, whose
//!   internal invariant violations *should* abort the simulation).
//!
//! Run it with `cargo run -p smt-lint` (exit code 1 on any violation), or use
//! [`check_workspace`] / [`check_file`] from tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose behaviour must be a pure function of the seed: wall-clock
/// reads and ambient randomness are banned here.
pub const SIM_CRATES: [&str; 5] = ["isa", "workloads", "bpred", "mem", "core"];

/// Crates subject to the `no-wall-clock` rule: the simulation crates plus
/// the experiment harness, whose results must also be pure functions of the
/// seed. (The sweep executor's harness timer is the one audited
/// `lint:allow(no-wall-clock)` exception; timing otherwise lives only in
/// `smt-bench`.)
pub const CLOCK_CRATES: [&str; 6] = ["isa", "workloads", "bpred", "mem", "core", "experiments"];

/// The cycle-loop composition root, subject to the `no-alloc-in-step` rule
/// together with every pipeline stage module (see [`is_hot_path`]).
pub const HOT_PATH_FILE: &str = "crates/core/src/sim.rs";

/// Directory prefix of the pipeline stage modules, all of which are in the
/// steady-state hot path.
pub const HOT_PATH_DIR: &str = "crates/core/src/pipeline/";

/// The workload instruction generator, called by the fetch stage every
/// delivered instruction (and in bulk via `Walker::next_block`) — as hot as
/// the stages themselves.
pub const HOT_PATH_WALKER: &str = "crates/workloads/src/walker.rs";

/// Directory whose modules are subject to the advisory `module-size` rule.
pub const MODULE_SIZE_DIR: &str = "crates/core/src/";

/// Advisory ceiling on non-test lines per module under [`MODULE_SIZE_DIR`].
pub const MODULE_SIZE_LIMIT: usize = 800;

/// Whether `path` is in the pipeline hot path whose steady-state cycle loop
/// must not allocate: the composition root (`sim.rs`), every stage module
/// under `crates/core/src/pipeline/`, and the workload walker that fetch
/// drives once per delivered instruction.
pub fn is_hot_path(path: &str) -> bool {
    path == HOT_PATH_FILE || path == HOT_PATH_WALKER || path.starts_with(HOT_PATH_DIR)
}

/// The lint rules, as stable machine-readable names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` banned (nondeterministic iteration order).
    NoHashCollections,
    /// `SystemTime::now`/`Instant::now`/`thread_rng` banned in sim crates.
    NoWallClock,
    /// `.unwrap()`/`.expect(`/`panic!` banned in library code outside tests.
    NoPanic,
    /// Crate roots must carry `#![forbid(unsafe_code)]` (or `deny`).
    DenyUnsafe,
    /// Heap-allocating tokens flagged in the pipeline hot path (advisory).
    NoAllocInStep,
    /// Core modules above the non-test line ceiling (advisory).
    ModuleSize,
}

impl Rule {
    /// The rule's name, as used in `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoHashCollections => "no-hash-collections",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoPanic => "no-panic",
            Rule::DenyUnsafe => "deny-unsafe",
            Rule::NoAllocInStep => "no-alloc-in-step",
            Rule::ModuleSize => "module-size",
        }
    }

    /// Whether the rule is advisory: printed by the CLI, but not counted
    /// toward its failure exit code. (The allocation-free property itself is
    /// *enforced* by the counting-allocator test; the lint is an early,
    /// line-precise pointer to the likely culprit.)
    pub fn is_advisory(self) -> bool {
        matches!(self, Rule::NoAllocInStep | Rule::ModuleSize)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The offending token or a short description.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.what
        )
    }
}

/// Which crate (by directory name) a workspace-relative path belongs to, if
/// it is under `crates/<name>/`.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// Whether `path` contains a path segment equal to `seg`.
fn has_segment(path: &str, seg: &str) -> bool {
    path.split('/').any(|s| s == seg)
}

/// Whether `path` is library source subject to the `no-panic` rule:
/// `crates/<c>/src/**` or the workspace facade `src/lib.rs`, excluding
/// binaries, benches, examples and the linter itself.
fn is_library_source(path: &str) -> bool {
    if has_segment(path, "bin")
        || has_segment(path, "tests")
        || has_segment(path, "benches")
        || has_segment(path, "examples")
        || path.ends_with("/main.rs")
        || path == "src/main.rs"
    {
        return false;
    }
    match crate_of(path) {
        Some("lint") => false,
        Some(_) => has_segment(path, "src"),
        None => path == "src/lib.rs",
    }
}

/// Whether `path` is a crate root that must declare `unsafe_code` denial.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3)
}

/// Strips comments and blanks out string-literal contents from one line,
/// carrying block-comment state across lines. The returned string has the
/// same length-ish shape but only *code* tokens survive, so token searches
/// cannot be fooled by comments or string contents.
fn strip_code(line: &str, in_block_comment: &mut bool) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    let mut in_string = false;
    while i < b.len() {
        if *in_block_comment {
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            match b[i] {
                b'\\' => i += 2, // skip escape pair
                b'"' => {
                    in_string = false;
                    out.push('"');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            }
            continue;
        }
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                in_string = true;
                out.push('"');
                i += 1;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within 4 bytes.
                if i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'' {
                    out.push_str("' '");
                    i += 4;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push('\''); // lifetime
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// Per-line flags marking `#[cfg(test)]`-gated regions (modules or items),
/// found by brace counting on comment/string-stripped code.
fn test_region_flags(raw_lines: &[&str]) -> Vec<bool> {
    let mut in_block = false;
    let stripped: Vec<String> = raw_lines
        .iter()
        .map(|l| strip_code(l, &mut in_block))
        .collect();
    let mut flags = vec![false; raw_lines.len()];
    let mut i = 0;
    while i < stripped.len() {
        if stripped[i].trim_start().starts_with("#[cfg(test)]") {
            // Mark from the attribute until the gated item's braces balance.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < stripped.len() {
                flags[j] = true;
                for ch in stripped[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => opened = true, // braceless item
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Whether line `idx` (0-based) is covered by a `lint:allow(<rule>)` marker
/// on the same or the previous raw line.
fn allowed(raw_lines: &[&str], idx: usize, rule: Rule) -> bool {
    let marker = format!("lint:allow({})", rule.name());
    if raw_lines[idx].contains(&marker) {
        return true;
    }
    idx > 0 && raw_lines[idx - 1].contains(&marker)
}

/// Checks one file's contents against every rule applicable to its path.
///
/// `path` must be workspace-relative with forward slashes
/// (e.g. `crates/core/src/sim.rs`).
pub fn check_file(path: &str, contents: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let raw_lines: Vec<&str> = contents.lines().collect();

    let file_allows = |rule: Rule| {
        let marker = format!("lint:allow-file({})", rule.name());
        raw_lines.iter().any(|l| l.contains(&marker))
    };

    // deny-unsafe: whole-file property of crate roots.
    if is_crate_root(path)
        && !file_allows(Rule::DenyUnsafe)
        && !contents.contains("#![forbid(unsafe_code)]")
        && !contents.contains("#![deny(unsafe_code)]")
    {
        violations.push(Violation {
            rule: Rule::DenyUnsafe,
            path: path.to_string(),
            line: 0,
            what: "crate root lacks #![forbid(unsafe_code)] (or deny)".to_string(),
        });
    }

    let hash_applies = crate_of(path) != Some("lint") && !file_allows(Rule::NoHashCollections);
    let clock_applies = crate_of(path).is_some_and(|c| CLOCK_CRATES.contains(&c))
        && !file_allows(Rule::NoWallClock);
    let panic_applies = is_library_source(path) && !file_allows(Rule::NoPanic);
    let alloc_applies = is_hot_path(path) && !file_allows(Rule::NoAllocInStep);

    // module-size: whole-file advisory keeping the simulator core
    // decomposed. Test modules don't count — they are co-located by
    // convention and don't add reader burden to the library code.
    if path.starts_with(MODULE_SIZE_DIR) && !file_allows(Rule::ModuleSize) {
        let non_test = test_region_flags(&raw_lines)
            .iter()
            .filter(|&&in_test| !in_test)
            .count();
        if non_test > MODULE_SIZE_LIMIT {
            violations.push(Violation {
                rule: Rule::ModuleSize,
                path: path.to_string(),
                line: 0,
                what: format!(
                    "{non_test} non-test lines (advisory ceiling {MODULE_SIZE_LIMIT}) — consider splitting the module"
                ),
            });
        }
    }

    if !(hash_applies || clock_applies || panic_applies || alloc_applies) {
        return violations;
    }

    let test_flags = test_region_flags(&raw_lines);
    let mut in_block = false;
    for (idx, raw) in raw_lines.iter().enumerate() {
        let code = strip_code(raw, &mut in_block);
        if code.trim().is_empty() {
            continue;
        }
        let mut push = |rule: Rule, what: &str| {
            if !allowed(&raw_lines, idx, rule) {
                violations.push(Violation {
                    rule,
                    path: path.to_string(),
                    line: idx + 1,
                    what: what.to_string(),
                });
            }
        };
        if hash_applies {
            for tok in ["HashMap", "HashSet"] {
                if code.contains(tok) {
                    push(Rule::NoHashCollections, tok);
                }
            }
        }
        if clock_applies {
            for tok in ["SystemTime::now", "Instant::now", "thread_rng"] {
                if code.contains(tok) {
                    push(Rule::NoWallClock, tok);
                }
            }
        }
        if panic_applies && !test_flags[idx] {
            for tok in [".unwrap()", ".expect(", "panic!"] {
                if code.contains(tok) {
                    push(Rule::NoPanic, tok);
                }
            }
        }
        if alloc_applies && !test_flags[idx] {
            for tok in ["Vec::new()", "VecDeque::new()", ".clone()"] {
                if code.contains(tok) {
                    push(Rule::NoAllocInStep, tok);
                }
            }
        }
    }
    violations
}

/// Recursively collects `.rs` files under `dir`, in sorted (deterministic)
/// order, skipping build output and VCS internals.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file of the workspace rooted at `root` and returns all
/// violations, sorted by path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut files = Vec::new();
    for top in ["src", "tests", "benches", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .rs files found under {} — wrong root?", root.display()),
        ));
    }
    let mut violations = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let contents = fs::read_to_string(&file)?;
        violations.extend(check_file(&rel, &contents));
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_collections_flagged_in_sim_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::NoHashCollections));
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hash_collections_flagged_even_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let v = check_file("crates/experiments/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoHashCollections);
    }

    #[test]
    fn hash_in_comments_and_strings_ignored() {
        let src = "// HashMap is banned\nfn f() { let s = \"HashMap\"; }\n/* HashSet */\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_only_flagged_in_clock_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(check_file("crates/mem/src/x.rs", src).len(), 1);
        // The experiment harness is clock-banned too (results must be pure
        // functions of the seed); only the audited sweep timer is allowed.
        assert_eq!(
            check_file("crates/experiments/src/sweep.rs", src)
                .iter()
                .filter(|v| v.rule == Rule::NoWallClock)
                .count(),
            1
        );
        assert!(check_file("crates/bench/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoWallClock));
    }

    #[test]
    fn panics_flagged_in_library_code_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(check_file("crates/bpred/src/x.rs", src).len(), 1);
        assert!(check_file("crates/bpred/tests/x.rs", src).is_empty());
        assert!(check_file("crates/experiments/src/bin/all.rs", src).is_empty());
        assert!(check_file("tests/end_to_end.rs", src).is_empty());
    }

    #[test]
    fn panics_in_cfg_test_modules_ignored() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_after_cfg_test_module_closes_is_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn f() { panic!(\"x\") }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn line_allow_waives_that_line_and_rule_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-panic)\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
        let src = "// lint:allow(no-panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
        // The wrong rule name does not waive.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-wall-clock)\n";
        assert_eq!(check_file("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn file_allow_waives_the_whole_file() {
        let src = "// lint:allow-file(no-panic)\nfn f() { panic!() }\nfn g() { panic!() }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn crate_roots_require_unsafe_denial() {
        let v = check_file("crates/core/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::DenyUnsafe);
        assert_eq!(v[0].line, 0);
        assert!(check_file("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
        assert!(check_file("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n").is_empty());
        // Non-root files are not subject to the rule.
        assert!(check_file("crates/core/src/sim.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn assert_is_not_flagged() {
        let src = "fn f(n: usize) { assert!(n > 0, \"positive\"); }\n";
        assert!(check_file("crates/bpred/src/x.rs", src).is_empty());
    }

    #[test]
    fn alloc_tokens_flagged_in_hot_path_only() {
        let src = "fn step() { let v: Vec<u32> = Vec::new(); let w = v.clone(); }\n";
        let v = check_file(HOT_PATH_FILE, src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::NoAllocInStep));
        // Every pipeline stage module is hot path too.
        let v = check_file("crates/core/src/pipeline/issue.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::NoAllocInStep));
        // The same tokens anywhere else are not this rule's business.
        assert!(check_file("crates/core/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn hot_path_covers_sim_and_pipeline_stages() {
        assert!(is_hot_path(HOT_PATH_FILE));
        assert!(is_hot_path("crates/core/src/pipeline/mod.rs"));
        assert!(is_hot_path("crates/core/src/pipeline/fetch.rs"));
        assert!(is_hot_path("crates/core/src/pipeline/idle.rs"));
        assert!(is_hot_path(HOT_PATH_WALKER));
        assert!(!is_hot_path("crates/core/src/config.rs"));
        assert!(!is_hot_path("crates/core/src/frontend/mod.rs"));
        assert!(!is_hot_path("crates/workloads/src/builder.rs"));
    }

    #[test]
    fn alloc_rule_honours_escapes_and_test_regions() {
        let src = "fn new(b: &Vec<u32>) { let a = b.clone(); } // lint:allow(no-alloc-in-step)\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let v: Vec<u32> = Vec::new(); }\n}\n";
        assert!(check_file(HOT_PATH_FILE, src).is_empty());
    }

    #[test]
    fn only_the_alloc_and_size_rules_are_advisory() {
        assert!(Rule::NoAllocInStep.is_advisory());
        assert!(Rule::ModuleSize.is_advisory());
        for rule in [
            Rule::NoHashCollections,
            Rule::NoWallClock,
            Rule::NoPanic,
            Rule::DenyUnsafe,
        ] {
            assert!(!rule.is_advisory(), "{rule} must stay enforced");
        }
    }

    #[test]
    fn oversized_core_modules_flagged() {
        let src = "fn f() {}\n".repeat(MODULE_SIZE_LIMIT + 1);
        let v = check_file("crates/core/src/big.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ModuleSize);
        assert_eq!(v[0].line, 0);
        // Only core modules are in scope.
        assert!(check_file("crates/bpred/src/big.rs", &src).is_empty());
        // At the ceiling is fine.
        let src = "fn f() {}\n".repeat(MODULE_SIZE_LIMIT);
        assert!(check_file("crates/core/src/big.rs", &src).is_empty());
    }

    #[test]
    fn module_size_ignores_test_regions_and_honours_escape() {
        // A short library section plus a huge co-located test module is fine.
        let tests = "    fn t() {}\n".repeat(MODULE_SIZE_LIMIT + 1);
        let src = format!("fn lib() {{}}\n#[cfg(test)]\nmod tests {{\n{tests}}}\n");
        assert!(check_file("crates/core/src/big.rs", &src).is_empty());
        // The file-level escape waives the rule.
        let src = format!(
            "// lint:allow-file(module-size)\n{}",
            "fn f() {}\n".repeat(MODULE_SIZE_LIMIT + 1)
        );
        assert!(check_file("crates/core/src/big.rs", &src).is_empty());
    }

    #[test]
    fn violation_display_is_greppable() {
        let v = Violation {
            rule: Rule::NoPanic,
            path: "crates/core/src/x.rs".into(),
            line: 7,
            what: ".unwrap()".into(),
        };
        assert_eq!(
            v.to_string(),
            "crates/core/src/x.rs:7: [no-panic] .unwrap()"
        );
    }
}
