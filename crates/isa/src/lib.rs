//! # smt-isa — abstract instruction-set model
//!
//! Timing-relevant instruction model for the `smtfetch` simulator, which
//! reproduces Falcón, Ramirez & Valero, *"A Low-Complexity, High-Performance
//! Fetch Unit for Simultaneous Multithreading Processors"* (HPCA 2004).
//!
//! The paper simulates DEC Alpha binaries; the simulator only ever consumes
//! the *timing-relevant* properties of an instruction: its address, its class
//! (integer/floating-point/memory/branch), its register dependences, and — for
//! branches — its outcome and target. This crate defines exactly that model:
//!
//! * [`Addr`] — byte addresses in a flat instruction/data space, with
//!   cache-line and bank arithmetic ([`INST_BYTES`] = 4, as on Alpha).
//! * [`ArchReg`] / [`RegClass`] — architectural register names.
//! * [`InstClass`] / [`BranchKind`] — instruction classes and branch flavours.
//! * [`StaticInst`] — one instruction of the *static* program (the
//!   "basic-block dictionary" of the paper's modified SMTSIM).
//! * [`DynInst`] — one *dynamic* instruction flowing down the pipeline.
//! * [`FetchBlock`] — a front-end fetch request: the unit of work placed in a
//!   fetch target queue (FTQ) by the prediction stage.
//!
//! # Example
//!
//! ```
//! use smt_isa::{Addr, InstClass, BranchKind};
//!
//! let pc = Addr::new(0x1000);
//! assert_eq!(pc.line(64), Addr::new(0x1000));
//! assert_eq!(pc.offset_insts(64), 0);
//! assert!(InstClass::Branch(BranchKind::Cond).is_branch());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod block;
mod diag;
mod inst;
mod reg;
mod snap;

pub use addr::{Addr, INST_BYTES};
pub use block::{EndBranch, FetchBlock};
pub use diag::{has_errors, Diagnostic, Severity};
pub use inst::{BranchKind, DynInst, InstClass, MemAccess, StaticInst, StaticInstId};
pub use reg::{ArchReg, RegClass, NUM_ARCH_FP, NUM_ARCH_INT};
pub use snap::{
    load_vec_into, save_vec, snap_mismatch, Snap, SnapReader, SnapWriter, SNAP_ERROR_CODE,
};

/// Identifier of a hardware thread context (0-based).
///
/// The paper evaluates workloads of 2, 4, 6 and 8 threads; we allow up to
/// [`MAX_THREADS`].
pub type ThreadId = usize;

/// Maximum number of hardware thread contexts supported by the model.
pub const MAX_THREADS: usize = 8;

/// Global (per-simulation) dynamic-instruction sequence number.
///
/// Sequence numbers are allocated at fetch in program order *per thread*, and
/// are used for age comparisons inside one thread (squash on misprediction).
pub type SeqNum = u64;

/// A simulation cycle count.
pub type Cycle = u64;

/// A count or offset of instructions inside the in-flight machine: FTQ
/// consumption offsets, per-cycle fetch budgets, window-occupancy deltas.
///
/// One deliberate type for every such count keeps the arithmetic around the
/// FTQ head free of narrowing `as` casts: convert with [`inst_idx`] instead
/// of `as`, so a count that somehow escaped its geometric bound saturates
/// visibly rather than truncating silently.
pub type InstIdx = u32;

/// Converts an integer count into an [`InstIdx`] without a lossy cast.
///
/// Saturates at `InstIdx::MAX` instead of truncating. Every call site in the
/// simulator is bounded by fetch-block or window geometry (tens to a few
/// thousand), so saturation is unreachable in practice and exists only to
/// keep the conversion total and panic-free.
#[inline]
pub fn inst_idx<T: TryInto<InstIdx>>(v: T) -> InstIdx {
    v.try_into().unwrap_or(InstIdx::MAX)
}
