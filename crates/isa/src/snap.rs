//! Deterministic binary snapshot codec.
//!
//! The checkpoint/resume feature (DESIGN.md §13) serializes full simulator
//! state into a versioned, little-endian, zero-dependency byte format. This
//! module is the codec layer every crate shares:
//!
//! * [`SnapWriter`] — an append-only byte sink with typed little-endian
//!   writers. Writing is infallible.
//! * [`SnapReader`] — a cursor over snapshot bytes. Every read is checked;
//!   truncation or malformed payloads surface as [`Diagnostic`] values with
//!   the stable code `E0018` instead of panicking.
//! * [`Snap`] — the round-trip trait for small copyable values
//!   (`save`/`load`). Containers with capacity to preserve implement
//!   in-place `save_state`/`load_state` inherent methods instead (the
//!   allocation-free steady state must survive a restore, so `load_state`
//!   refills existing buffers rather than reallocating them).
//!
//! Format rules (normative, pinned by `tests/golden/snapshot_v2.bin`):
//! every integer is little-endian and fixed-width; `usize` travels as
//! `u64`; `bool` is one byte (0/1); `Option<T>` is a presence byte
//! (0 = `None`, 1 = `Some`) followed by the payload; enums are stable
//! one-byte tags that are never renumbered, only appended to.

use crate::addr::Addr;
use crate::block::{EndBranch, FetchBlock};
use crate::diag::Diagnostic;
use crate::inst::{BranchKind, DynInst, InstClass, MemAccess};
use crate::reg::{ArchReg, RegClass, NUM_ARCH_FP, NUM_ARCH_INT};

/// Stable diagnostic code for every snapshot decode failure.
pub const SNAP_ERROR_CODE: &str = "E0018";

/// Builds the `E0018` diagnostic for a snapshot mismatch discovered outside
/// the reader itself (geometry checks, version checks, bad enum tags).
pub fn snap_mismatch(field: impl Into<String>, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(
        SNAP_ERROR_CODE,
        field,
        message,
        "the snapshot does not match this build's format, version, or configuration",
    )
}

/// Append-only little-endian byte sink for snapshot serialization.
///
/// # Example
///
/// ```
/// use smt_isa::{SnapReader, SnapWriter};
///
/// let mut w = SnapWriter::new();
/// w.u32(7);
/// w.bool(true);
/// let bytes = w.into_bytes();
/// let mut r = SnapReader::new(&bytes);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert!(r.bool().unwrap());
/// assert!(r.is_exhausted());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `usize` as a `u64` (the format is 64-bit regardless of
    /// host pointer width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an [`Addr`] as its raw `u64`.
    pub fn addr(&mut self, a: Addr) {
        self.u64(a.raw());
    }
}

/// Checked cursor over snapshot bytes; every read returns
/// `Result<_, Diagnostic>` (code `E0018`) instead of panicking.
#[derive(Clone, Copy, Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed (a well-formed snapshot is read
    /// exactly to its end).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Diagnostic> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let bytes = &self.buf[self.pos..end];
                self.pos = end;
                Ok(bytes)
            }
            None => Err(snap_mismatch(
                "snapshot",
                format!(
                    "truncated snapshot: needed {n} byte(s) at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ),
            )),
        }
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, Diagnostic> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, Diagnostic> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, Diagnostic> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, Diagnostic> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is a decode error.
    pub fn bool(&mut self) -> Result<bool, Diagnostic> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(snap_mismatch(
                "snapshot",
                format!("invalid bool byte {b} at offset {}", self.pos - 1),
            )),
        }
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not fit
    /// the host pointer width.
    pub fn usize(&mut self) -> Result<usize, Diagnostic> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            snap_mismatch(
                "snapshot",
                format!("length {v} does not fit usize on this host"),
            )
        })
    }

    /// Reads an [`Addr`] from its raw `u64`.
    pub fn addr(&mut self) -> Result<Addr, Diagnostic> {
        Ok(Addr::new(self.u64()?))
    }
}

/// Round-trip serialization for small copyable values.
///
/// Implemented for the integer primitives, [`Addr`], `Option<T>`, and the
/// ISA's plain-old-data types. Containers that must preserve their
/// allocated capacity across a restore (rings, tables, queues) implement
/// in-place `save_state`/`load_state` inherent methods instead.
pub trait Snap: Sized {
    /// Appends this value to `w` in the snapshot format.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`, validating every invariant the type has.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic>;
}

macro_rules! snap_prim {
    ($($ty:ident),*) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$ty(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
                r.$ty()
            }
        }
    )*};
}

snap_prim!(u8, u16, u32, u64, usize, bool);

impl Snap for Addr {
    fn save(&self, w: &mut SnapWriter) {
        w.addr(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        r.addr()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(snap_mismatch("snapshot", format!("invalid Option tag {b}"))),
        }
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        // Build through a Vec to avoid requiring T: Default/Copy.
        let mut vals = Vec::with_capacity(N);
        for _ in 0..N {
            vals.push(T::load(r)?);
        }
        vals.try_into()
            .map_err(|_| snap_mismatch("snapshot", "array length mismatch"))
    }
}

/// Serializes a slice as a `u64` length prefix followed by the elements.
pub fn save_vec<T: Snap>(w: &mut SnapWriter, v: &[T]) {
    w.usize(v.len());
    for e in v {
        e.save(w);
    }
}

/// Decodes a length-prefixed sequence *into* `v`, clearing it first, so an
/// already-sized buffer keeps its allocation (the restore path must not
/// disturb the zero-allocation steady state when lengths fit capacity).
pub fn load_vec_into<T: Snap>(r: &mut SnapReader<'_>, v: &mut Vec<T>) -> Result<(), Diagnostic> {
    let n = r.usize()?;
    v.clear();
    v.reserve(n.saturating_sub(v.capacity()));
    for _ in 0..n {
        v.push(T::load(r)?);
    }
    Ok(())
}

impl Snap for RegClass {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        match r.u8()? {
            0 => Ok(RegClass::Int),
            1 => Ok(RegClass::Fp),
            b => Err(snap_mismatch(
                "snapshot",
                format!("invalid RegClass tag {b}"),
            )),
        }
    }
}

impl Snap for ArchReg {
    fn save(&self, w: &mut SnapWriter) {
        self.class().save(w);
        w.u16(self.index());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        let class = RegClass::load(r)?;
        let index = r.u16()?;
        let limit = match class {
            RegClass::Int => NUM_ARCH_INT,
            RegClass::Fp => NUM_ARCH_FP,
        };
        if index >= limit {
            return Err(snap_mismatch(
                "snapshot",
                format!("architectural register index {index} out of range (< {limit})"),
            ));
        }
        Ok(match class {
            RegClass::Int => ArchReg::int(index),
            RegClass::Fp => ArchReg::fp(index),
        })
    }
}

impl Snap for BranchKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            BranchKind::Cond => 0,
            BranchKind::Jump => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
            BranchKind::Indirect => 4,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        match r.u8()? {
            0 => Ok(BranchKind::Cond),
            1 => Ok(BranchKind::Jump),
            2 => Ok(BranchKind::Call),
            3 => Ok(BranchKind::Return),
            4 => Ok(BranchKind::Indirect),
            b => Err(snap_mismatch(
                "snapshot",
                format!("invalid BranchKind tag {b}"),
            )),
        }
    }
}

impl Snap for InstClass {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            InstClass::IntAlu => w.u8(0),
            InstClass::IntMul => w.u8(1),
            InstClass::FpAlu => w.u8(2),
            InstClass::Load => w.u8(3),
            InstClass::Store => w.u8(4),
            InstClass::Branch(k) => {
                w.u8(5);
                k.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        match r.u8()? {
            0 => Ok(InstClass::IntAlu),
            1 => Ok(InstClass::IntMul),
            2 => Ok(InstClass::FpAlu),
            3 => Ok(InstClass::Load),
            4 => Ok(InstClass::Store),
            5 => Ok(InstClass::Branch(BranchKind::load(r)?)),
            b => Err(snap_mismatch(
                "snapshot",
                format!("invalid InstClass tag {b}"),
            )),
        }
    }
}

impl Snap for MemAccess {
    fn save(&self, w: &mut SnapWriter) {
        w.addr(self.addr);
        w.bool(self.chased);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(MemAccess {
            addr: r.addr()?,
            chased: r.bool()?,
        })
    }
}

impl Snap for DynInst {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.thread);
        w.u32(self.static_id);
        w.addr(self.pc);
        self.class.save(w);
        self.dest.save(w);
        self.srcs.save(w);
        self.mem.save(w);
        w.bool(self.taken);
        w.addr(self.next_pc);
        w.bool(self.wrong_path);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(DynInst {
            thread: r.usize()?,
            static_id: r.u32()?,
            pc: r.addr()?,
            class: InstClass::load(r)?,
            dest: Option::<ArchReg>::load(r)?,
            srcs: <[Option<ArchReg>; 2]>::load(r)?,
            mem: Option::<MemAccess>::load(r)?,
            taken: r.bool()?,
            next_pc: r.addr()?,
            wrong_path: r.bool()?,
        })
    }
}

impl Snap for EndBranch {
    fn save(&self, w: &mut SnapWriter) {
        w.addr(self.pc);
        self.kind.save(w);
        w.bool(self.predicted_taken);
        w.addr(self.predicted_target);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(EndBranch {
            pc: r.addr()?,
            kind: BranchKind::load(r)?,
            predicted_taken: r.bool()?,
            predicted_target: r.addr()?,
        })
    }
}

impl Snap for FetchBlock {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.thread);
        w.addr(self.start);
        w.u32(self.len);
        w.u32(self.embedded_branches);
        self.end_branch.save(w);
        w.addr(self.next_fetch);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(FetchBlock {
            thread: r.usize()?,
            start: r.addr()?,
            len: r.u32()?,
            embedded_branches: r.u32()?,
            end_branch: Option::<EndBranch>::load(r)?,
            next_fetch: r.addr()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(0xab);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.bool(false);
        w.usize(12345);
        w.addr(Addr::new(0x4000));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.addr().unwrap(), Addr::new(0x4000));
        assert!(r.is_exhausted());
    }

    #[test]
    fn format_is_little_endian() {
        let mut w = SnapWriter::new();
        w.u32(0x0102_0304);
        assert_eq!(w.into_bytes(), vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn truncation_is_a_diagnostic_not_a_panic() {
        let mut r = SnapReader::new(&[1, 2]);
        let err = r.u32().unwrap_err();
        assert_eq!(err.code, SNAP_ERROR_CODE);
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        let mut r = SnapReader::new(&[7]);
        assert_eq!(r.bool().unwrap_err().code, SNAP_ERROR_CODE);
        let mut r = SnapReader::new(&[9]);
        assert_eq!(
            Option::<u8>::load(&mut r).unwrap_err().code,
            SNAP_ERROR_CODE
        );
    }

    #[test]
    fn arch_reg_round_trips_and_validates_range() {
        for reg in [ArchReg::int(0), ArchReg::int(31), ArchReg::fp(5)] {
            let mut w = SnapWriter::new();
            reg.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(ArchReg::load(&mut r).unwrap(), reg);
        }
        // Out-of-range index decodes to a diagnostic, not a panic.
        let mut w = SnapWriter::new();
        w.u8(0); // Int
        w.u16(NUM_ARCH_INT); // one past the end
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(ArchReg::load(&mut r).unwrap_err().code, SNAP_ERROR_CODE);
    }

    #[test]
    fn enums_round_trip() {
        let classes = [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::FpAlu,
            InstClass::Load,
            InstClass::Store,
            InstClass::Branch(BranchKind::Cond),
            InstClass::Branch(BranchKind::Jump),
            InstClass::Branch(BranchKind::Call),
            InstClass::Branch(BranchKind::Return),
            InstClass::Branch(BranchKind::Indirect),
        ];
        let mut w = SnapWriter::new();
        for c in classes {
            c.save(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for c in classes {
            assert_eq!(InstClass::load(&mut r).unwrap(), c);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn vec_helper_preserves_capacity() {
        let mut w = SnapWriter::new();
        save_vec(&mut w, &[1u64, 2, 3]);
        let bytes = w.into_bytes();
        let mut v: Vec<u64> = Vec::with_capacity(64);
        v.extend_from_slice(&[9; 10]);
        let cap = v.capacity();
        let mut r = SnapReader::new(&bytes);
        load_vec_into(&mut r, &mut v).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(v.capacity(), cap, "restore must not reallocate");
    }

    #[test]
    fn dyn_inst_and_fetch_block_round_trip() {
        let inst = DynInst {
            thread: 3,
            static_id: 77,
            pc: Addr::new(0x1004),
            class: InstClass::Branch(BranchKind::Call),
            dest: Some(ArchReg::int(31)),
            srcs: [Some(ArchReg::fp(2)), None],
            mem: Some(MemAccess {
                addr: Addr::new(0x20_0000),
                chased: true,
            }),
            taken: true,
            next_pc: Addr::new(0x2000),
            wrong_path: false,
        };
        let block = FetchBlock {
            thread: 1,
            start: Addr::new(0x1000),
            len: 9,
            embedded_branches: 2,
            end_branch: Some(EndBranch {
                pc: Addr::new(0x1020),
                kind: BranchKind::Cond,
                predicted_taken: true,
                predicted_target: Addr::new(0x1800),
            }),
            next_fetch: Addr::new(0x1800),
        };
        let mut w = SnapWriter::new();
        inst.save(&mut w);
        block.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(DynInst::load(&mut r).unwrap(), inst);
        assert_eq!(FetchBlock::load(&mut r).unwrap(), block);
        assert!(r.is_exhausted());
    }
}
