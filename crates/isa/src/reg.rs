//! Architectural register names.

use std::fmt;

/// Number of architectural integer registers (Alpha-like).
pub const NUM_ARCH_INT: u16 = 32;

/// Number of architectural floating-point registers (Alpha-like).
pub const NUM_ARCH_FP: u16 = 32;

/// The register file class an architectural register belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a class plus an index within that class.
///
/// Renaming in the pipeline maps these onto physical registers; the workload
/// generator assigns them when it synthesizes static programs, encoding the
/// data-dependence structure of the benchmark clone.
///
/// # Example
///
/// ```
/// use smt_isa::{ArchReg, RegClass};
///
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(ArchReg::fp(3).to_string(), "f3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    class: RegClass,
    index: u16,
}

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_INT`.
    pub fn int(index: u16) -> Self {
        assert!(index < NUM_ARCH_INT, "integer register index out of range");
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_FP`.
    pub fn fp(index: u16) -> Self {
        assert!(index < NUM_ARCH_FP, "fp register index out of range");
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// The register-file class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// Index within the register-file class.
    pub fn index(self) -> u16 {
        self.index
    }

    /// Dense index across both register files (int first, then fp), suitable
    /// for rename-map arrays.
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_ARCH_INT as usize + self.index as usize,
        }
    }

    /// Total number of architectural registers across both classes.
    pub const fn flat_count() -> usize {
        (NUM_ARCH_INT + NUM_ARCH_FP) as usize
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..NUM_ARCH_INT {
            assert!(seen.insert(ArchReg::int(i).flat_index()));
        }
        for i in 0..NUM_ARCH_FP {
            assert!(seen.insert(ArchReg::fp(i).flat_index()));
        }
        assert_eq!(seen.len(), ArchReg::flat_count());
        assert!(seen.iter().all(|&i| i < ArchReg::flat_count()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_validated() {
        let _ = ArchReg::int(NUM_ARCH_INT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_index_validated() {
        let _ = ArchReg::fp(NUM_ARCH_FP);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::int(0).to_string(), "r0");
        assert_eq!(ArchReg::fp(31).to_string(), "f31");
        assert_eq!(RegClass::Int.to_string(), "int");
        assert_eq!(RegClass::Fp.to_string(), "fp");
    }
}
