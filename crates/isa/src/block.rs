//! Fetch-block descriptors: the interface between prediction and fetch.
//!
//! In the decoupled front-end of the paper (after Reinman et al.), the
//! *prediction stage* produces one fetch request per cycle and pushes it into
//! the selected thread's fetch target queue (FTQ); the *fetch stage* later
//! drains FTQs to drive I-cache accesses. A [`FetchBlock`] is that request.

use crate::{Addr, BranchKind, ThreadId};

/// Information about the branch that terminates a fetch block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndBranch {
    /// Address of the terminating branch.
    pub pc: Addr,
    /// Branch flavour.
    pub kind: BranchKind,
    /// Predicted direction (always `true` for unconditional branches).
    pub predicted_taken: bool,
    /// Predicted target if taken. [`Addr::NULL`] when the predictor had no
    /// target (BTB/FTB miss), in which case the block falls through.
    pub predicted_target: Addr,
}

/// A fetch request produced by the prediction stage.
///
/// Depending on the front-end, a block is:
///
/// * **gshare+BTB** — up to the first branch, the end of the cache line, or
///   the fetch width, whichever is closest (one prediction per cycle limits
///   the block to one basic block);
/// * **gskew+FTB** — an FTB *fetch block*, which may embed strongly-biased
///   not-taken conditional branches and span several basic blocks;
/// * **stream** — a full instruction stream (from the target of a taken
///   branch to the next taken branch), potentially much longer than the
///   fetch width and consumed over several cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchBlock {
    /// Thread the request belongs to.
    pub thread: ThreadId,
    /// Address of the first instruction in the block.
    pub start: Addr,
    /// Number of instructions in the block (≥ 1).
    pub len: u32,
    /// Number of *embedded* conditional branches predicted not-taken inside
    /// the block (always 0 for BTB-style blocks). Used for statistics and
    /// misfetch checks.
    pub embedded_branches: u32,
    /// The branch terminating the block, if the block ends in one.
    pub end_branch: Option<EndBranch>,
    /// Predicted address of the *next* fetch block (taken target, or fall
    /// through past the end of this block).
    pub next_fetch: Addr,
}

impl FetchBlock {
    /// Address one past the last instruction of the block.
    pub fn end(&self) -> Addr {
        self.start.add_insts(self.len as u64)
    }

    /// Address of the last instruction in the block.
    pub fn last_pc(&self) -> Addr {
        self.start.add_insts(self.len as u64 - 1)
    }

    /// Whether `pc` falls inside the block.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.start && pc < self.end()
    }

    /// Whether the block was predicted to continue sequentially (either no
    /// terminating branch, or terminating branch predicted not-taken).
    pub fn predicted_sequential(&self) -> bool {
        self.next_fetch == self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> FetchBlock {
        FetchBlock {
            thread: 0,
            start: Addr::new(0x1000),
            len: 6,
            embedded_branches: 1,
            end_branch: Some(EndBranch {
                pc: Addr::new(0x1014),
                kind: BranchKind::Cond,
                predicted_taken: true,
                predicted_target: Addr::new(0x2000),
            }),
            next_fetch: Addr::new(0x2000),
        }
    }

    #[test]
    fn geometry() {
        let b = block();
        assert_eq!(b.end(), Addr::new(0x1018));
        assert_eq!(b.last_pc(), Addr::new(0x1014));
        assert!(b.contains(Addr::new(0x1000)));
        assert!(b.contains(Addr::new(0x1014)));
        assert!(!b.contains(Addr::new(0x1018)));
        assert!(!b.contains(Addr::new(0xfff)));
    }

    #[test]
    fn sequential_prediction_detection() {
        let mut b = block();
        assert!(!b.predicted_sequential());
        b.next_fetch = b.end();
        assert!(b.predicted_sequential());
    }
}
