//! Byte addresses and cache-geometry arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of one instruction in bytes (fixed-width RISC encoding, as on Alpha).
pub const INST_BYTES: u64 = 4;

/// A byte address in the simulated flat address space.
///
/// Used both for instruction addresses (PCs) and data addresses. The newtype
/// prevents accidental mixing of addresses with other integer quantities
/// (instruction counts, cycle counts, …).
///
/// # Example
///
/// ```
/// use smt_isa::Addr;
///
/// let a = Addr::new(0x10_0040);
/// assert_eq!(a.line(64), Addr::new(0x10_0040));
/// assert_eq!((a + 4).line(64), Addr::new(0x10_0040));
/// assert_eq!(a.bank(64, 8), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Used as "no target" placeholder in predictors.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Address of the cache line containing `self`, for lines of
    /// `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> Addr {
        debug_assert!(line_bytes.is_power_of_two());
        Addr(self.0 & !(line_bytes - 1))
    }

    /// Byte offset of `self` within its cache line.
    #[inline]
    pub fn line_offset(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 & (line_bytes - 1)
    }

    /// Instruction-slot offset of `self` within its cache line.
    #[inline]
    pub fn offset_insts(self, line_bytes: u64) -> u64 {
        self.line_offset(line_bytes) / INST_BYTES
    }

    /// Number of instruction slots from `self` (inclusive) to the end of its
    /// cache line.
    ///
    /// This bounds how many sequential instructions a single-line I-cache
    /// access can deliver, which is the constraint that limits classical
    /// (BTB-style) fetch blocks.
    #[inline]
    pub fn insts_to_line_end(self, line_bytes: u64) -> u64 {
        (line_bytes - self.line_offset(line_bytes)) / INST_BYTES
    }

    /// Interleaved bank index of the line containing `self`.
    ///
    /// Consecutive lines map to consecutive banks, the standard interleaving
    /// that the paper's multi-banked I-cache uses to reduce conflicts between
    /// the two simultaneous accesses of a 2.X fetch unit.
    #[inline]
    pub fn bank(self, line_bytes: u64, num_banks: u64) -> u64 {
        debug_assert!(num_banks.is_power_of_two());
        (self.0 / line_bytes) & (num_banks - 1)
    }

    /// Address advanced by `n` instruction slots.
    #[inline]
    pub fn add_insts(self, n: u64) -> Addr {
        Addr(self.0 + n * INST_BYTES)
    }

    /// Number of instruction slots between `self` and a later address.
    ///
    /// Returns `None` if `later` is before `self` or not instruction-aligned
    /// relative to `self`.
    #[inline]
    pub fn insts_until(self, later: Addr) -> Option<u64> {
        let delta = later.0.checked_sub(self.0)?;
        if delta % INST_BYTES != 0 {
            return None;
        }
        Some(delta / INST_BYTES)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_masks_low_bits() {
        assert_eq!(Addr::new(0x1234).line(64), Addr::new(0x1200));
        assert_eq!(Addr::new(0x1200).line(64), Addr::new(0x1200));
        assert_eq!(Addr::new(0x123f).line(64), Addr::new(0x1200));
    }

    #[test]
    fn line_offset_and_inst_offset() {
        let a = Addr::new(0x1210);
        assert_eq!(a.line_offset(64), 0x10);
        assert_eq!(a.offset_insts(64), 4);
    }

    #[test]
    fn insts_to_line_end_counts_inclusive_slots() {
        // 64-byte line holds 16 instructions.
        assert_eq!(Addr::new(0x1200).insts_to_line_end(64), 16);
        assert_eq!(Addr::new(0x1204).insts_to_line_end(64), 15);
        assert_eq!(Addr::new(0x123c).insts_to_line_end(64), 1);
    }

    #[test]
    fn banks_interleave_by_line() {
        let line = 64;
        assert_eq!(Addr::new(0).bank(line, 8), 0);
        assert_eq!(Addr::new(64).bank(line, 8), 1);
        assert_eq!(Addr::new(64 * 8).bank(line, 8), 0);
        assert_eq!(Addr::new(64 * 9 + 5).bank(line, 8), 1);
    }

    #[test]
    fn add_insts_advances_by_slots() {
        assert_eq!(Addr::new(0x100).add_insts(3), Addr::new(0x10c));
    }

    #[test]
    fn insts_until_forward_aligned() {
        let a = Addr::new(0x100);
        assert_eq!(a.insts_until(Addr::new(0x110)), Some(4));
        assert_eq!(a.insts_until(a), Some(0));
        assert_eq!(a.insts_until(Addr::new(0xfc)), None);
        assert_eq!(a.insts_until(Addr::new(0x102)), None);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x2a).to_string(), "0x2a");
        assert_eq!(format!("{:x}", Addr::new(0x2a)), "2a");
        assert_eq!(format!("{:X}", Addr::new(0x2a)), "2A");
    }

    #[test]
    fn conversions_round_trip() {
        let a: Addr = 0x42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0x42);
    }
}
