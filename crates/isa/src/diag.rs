//! Structured configuration diagnostics.
//!
//! Every structural check in the workspace — branch-predictor geometry,
//! cache shapes, fetch-policy compatibility — reports problems as
//! [`Diagnostic`] values instead of panicking. A diagnostic carries a
//! stable machine-readable code (`E0001`, `W0101`, …), the configuration
//! field it refers to, a human-readable message, and a hint suggesting a
//! fix. `E`-codes are errors (the configuration cannot be simulated
//! faithfully); `W`-codes are warnings (legal but suspicious).
//!
//! The code table is documented in the repository README.

use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal but suspicious; simulation proceeds.
    Warning,
    /// Structurally illegal; the configuration must be rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One structured finding about a configuration.
///
/// # Example
///
/// ```
/// use smt_isa::{Diagnostic, Severity};
///
/// let d = Diagnostic::error(
///     "E0001",
///     "predictor.gshare_entries",
///     "gshare table has 1000 entries, which is not a power of two",
///     "use 1024",
/// );
/// assert_eq!(d.severity, Severity::Error);
/// assert!(d.to_string().starts_with("error[E0001]"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`E0001` … / `W0101` …).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Dotted path of the offending configuration field.
    pub field: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(
        code: &'static str,
        field: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            field: field.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(
        code: &'static str,
        field: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            field: field.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Whether this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Replaces the field path — composite structures use this to re-scope
    /// a nested component's finding onto their own configuration field.
    pub fn in_field(mut self, field: impl Into<String>) -> Self {
        self.field = field.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} (hint: {})",
            self.severity, self.code, self.field, self.message, self.hint
        )
    }
}

/// Whether any diagnostic in `diags` is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_code_field_and_hint() {
        let d = Diagnostic::error("E0009", "mem.l1i.ways", "zero ways", "use 2");
        assert_eq!(
            d.to_string(),
            "error[E0009] mem.l1i.ways: zero ways (hint: use 2)"
        );
        let w = Diagnostic::warning("W0101", "x", "m", "h");
        assert!(w.to_string().starts_with("warning[W0101]"));
        assert!(!w.is_error());
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let w = Diagnostic::warning("W0101", "a", "b", "c");
        let e = Diagnostic::error("E0001", "a", "b", "c");
        assert!(!has_errors(std::slice::from_ref(&w)));
        assert!(has_errors(&[w, e]));
        assert!(!has_errors(&[]));
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }
}
