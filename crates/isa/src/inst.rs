//! Static and dynamic instruction models.

use std::fmt;

use crate::{Addr, ArchReg, ThreadId};

/// Index of a static instruction inside its program's instruction table.
///
/// The synthetic static program plays the role of the "separate basic block
/// dictionary" the paper adds to SMTSIM to permit wrong-path execution: any
/// PC can be looked up and fetched, whether or not it is on the correct path.
pub type StaticInstId = u32;

/// Branch flavours, matching what the front-end structures distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BranchKind {
    /// Conditional direct branch (predicted by gshare/gskew/stream).
    Cond,
    /// Unconditional direct jump.
    Jump,
    /// Direct call: pushes the return address on the RAS.
    Call,
    /// Return: target predicted by popping the RAS.
    Return,
    /// Indirect jump (target from BTB/FTB/stream table only).
    Indirect,
}

impl BranchKind {
    /// Whether the branch direction is an actual prediction problem
    /// (conditional) rather than always-taken control flow.
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Cond)
    }

    /// Whether the branch is always taken when executed.
    pub fn is_unconditional(self) -> bool {
        !self.is_conditional()
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Cond => "cond",
            BranchKind::Jump => "jump",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::Indirect => "ind",
        };
        f.write_str(s)
    }
}

/// Instruction classes with distinct timing behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer operation (multiply etc.).
    IntMul,
    /// Floating-point operation.
    FpAlu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer.
    Branch(BranchKind),
}

impl InstClass {
    /// Whether this instruction is any kind of branch.
    pub fn is_branch(self) -> bool {
        matches!(self, InstClass::Branch(_))
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// The branch kind, if this is a branch.
    pub fn branch_kind(self) -> Option<BranchKind> {
        match self {
            InstClass::Branch(k) => Some(k),
            _ => None,
        }
    }

    /// Default execution latency in cycles (excluding memory-hierarchy time
    /// for loads), matching typical values for the simulated machine.
    pub fn default_latency(self) -> u64 {
        match self {
            InstClass::IntAlu => 1,
            InstClass::IntMul => 3,
            InstClass::FpAlu => 4,
            InstClass::Load => 1,  // address generation; cache time is added
            InstClass::Store => 1, // address generation; writes at commit
            InstClass::Branch(_) => 1,
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstClass::IntAlu => write!(f, "int"),
            InstClass::IntMul => write!(f, "mul"),
            InstClass::FpAlu => write!(f, "fp"),
            InstClass::Load => write!(f, "load"),
            InstClass::Store => write!(f, "store"),
            InstClass::Branch(k) => write!(f, "br.{k}"),
        }
    }
}

/// One instruction of the static program.
///
/// This is a passive data record (public fields by design): the workload
/// generator builds these, and both the front-end (to delimit fetch blocks)
/// and the back-end (for dependences and latencies) read them. It is `Copy`
/// so the walker can hand instances out without heap traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticInst {
    /// Index in the program's instruction table.
    pub id: StaticInstId,
    /// Instruction address.
    pub addr: Addr,
    /// Timing class.
    pub class: InstClass,
    /// Destination register, if the instruction writes one.
    pub dest: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Statically-known branch target (direct branches and calls).
    ///
    /// `None` for non-branches, returns and indirect jumps.
    pub target: Option<Addr>,
}

impl StaticInst {
    /// Fall-through address (next sequential instruction).
    pub fn fall_through(&self) -> Addr {
        self.addr.add_insts(1)
    }

    /// Whether this instruction ends a classical (BTB-style) fetch block,
    /// i.e. is any branch.
    pub fn ends_basic_block(&self) -> bool {
        self.class.is_branch()
    }
}

/// A data-memory access performed by a dynamic load or store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective virtual byte address.
    pub addr: Addr,
    /// `true` if the access is part of a pointer-chase chain, meaning its
    /// address depends on the value loaded by the previous link (the
    /// dependence itself is expressed through registers; this flag is kept
    /// for statistics).
    pub chased: bool,
}

/// One dynamic instruction as produced by a program walker and carried
/// through the pipeline.
///
/// Passive data record (public fields by design). Pipeline-private state
/// (rename tags, issue state, timestamps) lives in the pipeline's own
/// wrapper, not here. It is `Copy` — a fixed-size value with no heap
/// payload — so the pipeline moves it between stages allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// Hardware thread that fetched this instruction.
    pub thread: ThreadId,
    /// Static instruction this is an instance of.
    pub static_id: StaticInstId,
    /// Address of the instruction.
    pub pc: Addr,
    /// Timing class.
    pub class: InstClass,
    /// Destination register, if any.
    pub dest: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Memory access, for loads and stores on the correct path.
    pub mem: Option<MemAccess>,
    /// For branches: `true` if the branch is actually taken.
    pub taken: bool,
    /// Actual next PC (target if taken, fall-through otherwise). For
    /// non-branches this is the fall-through address.
    pub next_pc: Addr,
    /// `true` if the instruction was fetched down a mispredicted path and
    /// will necessarily be squashed.
    pub wrong_path: bool,
}

impl DynInst {
    /// Whether this dynamic instruction is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.class, InstClass::Branch(BranchKind::Cond))
    }

    /// Whether this dynamic instruction is any branch.
    pub fn is_branch(&self) -> bool {
        self.class.is_branch()
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} {} {}{}",
            self.thread,
            self.pc,
            self.class,
            if self.wrong_path { " (wp)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_branch() -> StaticInst {
        StaticInst {
            id: 7,
            addr: Addr::new(0x100),
            class: InstClass::Branch(BranchKind::Cond),
            dest: None,
            srcs: [Some(ArchReg::int(1)), None],
            target: Some(Addr::new(0x200)),
        }
    }

    #[test]
    fn branch_kind_classification() {
        assert!(BranchKind::Cond.is_conditional());
        for k in [
            BranchKind::Jump,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::Indirect,
        ] {
            assert!(k.is_unconditional());
            assert!(!k.is_conditional());
        }
    }

    #[test]
    fn class_predicates() {
        assert!(InstClass::Load.is_mem());
        assert!(InstClass::Store.is_mem());
        assert!(!InstClass::IntAlu.is_mem());
        assert!(InstClass::Branch(BranchKind::Jump).is_branch());
        assert_eq!(
            InstClass::Branch(BranchKind::Call).branch_kind(),
            Some(BranchKind::Call)
        );
        assert_eq!(InstClass::FpAlu.branch_kind(), None);
    }

    #[test]
    fn latencies_are_sane() {
        assert_eq!(InstClass::IntAlu.default_latency(), 1);
        assert!(InstClass::IntMul.default_latency() > 1);
        assert!(InstClass::FpAlu.default_latency() > 1);
    }

    #[test]
    fn static_inst_fall_through_and_block_end() {
        let b = static_branch();
        assert_eq!(b.fall_through(), Addr::new(0x104));
        assert!(b.ends_basic_block());
    }

    #[test]
    fn dyn_inst_display_marks_wrong_path() {
        let d = DynInst {
            thread: 2,
            static_id: 7,
            pc: Addr::new(0x100),
            class: InstClass::Branch(BranchKind::Cond),
            dest: None,
            srcs: [None, None],
            mem: None,
            taken: true,
            next_pc: Addr::new(0x200),
            wrong_path: true,
        };
        let s = d.to_string();
        assert!(s.contains("t2"));
        assert!(s.contains("(wp)"));
        assert!(d.is_cond_branch());
        assert!(d.is_branch());
    }
}
