//! Benchmarks of the branch-prediction substrates: lookup/update
//! throughput of the structures the front-ends are built from.

use smt_bench::bench_with_elements;
use smt_bpred::{
    Btb, Dolc, Ftb, GlobalHistory, Gshare, Gskew, ObservedEnd, ObservedStream, ReturnStack,
    StreamPath, StreamPredictor,
};
use smt_isa::{Addr, BranchKind};

/// A deterministic PC stream resembling branch addresses.
fn pcs(n: usize) -> Vec<Addr> {
    (0..n)
        .map(|i| Addr::new(0x40_0000 + ((i * 2654435761) % 65536) as u64 * 4))
        .collect()
}

fn main() {
    let pcs = pcs(4096);
    let elems = pcs.len() as u64;

    println!("direction_predict_update (elements = predict+update pairs)");
    {
        let mut p = Gshare::hpca2004();
        let mut h = GlobalHistory::new(16);
        bench_with_elements("gshare_64k", elems, || {
            for &pc in &pcs {
                let t = p.predict(pc, h);
                p.update(pc, h, t);
                h.push(t);
            }
        });
    }
    {
        let mut p = Gskew::hpca2004();
        let mut h = GlobalHistory::new(15);
        bench_with_elements("gskew_3x32k", elems, || {
            for &pc in &pcs {
                let t = p.predict(pc, h);
                p.update(pc, h, t);
                h.push(t);
            }
        });
    }

    println!("\ntarget_structures (elements = lookups)");
    {
        let mut btb = Btb::hpca2004();
        bench_with_elements("btb_2k4w", elems, || {
            for &pc in &pcs {
                if btb.lookup(pc).is_none() {
                    btb.record_taken(pc, pc + 64, BranchKind::Jump);
                }
            }
        });
    }
    {
        let mut ftb = Ftb::hpca2004();
        bench_with_elements("ftb_2k4w", elems, || {
            for &pc in &pcs {
                if ftb.lookup(pc).is_none() {
                    ftb.record_taken(
                        pc,
                        ObservedEnd {
                            branch_pc: pc.add_insts(5),
                            kind: BranchKind::Cond,
                            target: pc + 256,
                        },
                    );
                }
            }
        });
    }
    {
        let mut sp = StreamPredictor::new(1024, 4096, 4, Dolc::HPCA2004, 64).expect("geometry");
        let mut path = StreamPath::new();
        bench_with_elements("stream_1k_4k_dolc", elems, || {
            for &pc in &pcs {
                if sp.predict(pc, &path).is_none() {
                    sp.train(
                        pc,
                        &path,
                        ObservedStream {
                            len: 12,
                            kind: BranchKind::Cond,
                            target: pc + 128,
                        },
                    );
                }
                path.push(pc);
            }
        });
    }
    {
        let mut ras = ReturnStack::hpca2004();
        bench_with_elements("ras_push_pop", elems, || {
            for &pc in &pcs {
                ras.push(pc);
                let _ = ras.pop();
            }
        });
    }
}
