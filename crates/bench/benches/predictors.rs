//! Criterion benchmarks of the branch-prediction substrates: lookup/update
//! throughput of the structures the front-ends are built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smt_bpred::{
    Btb, Dolc, Ftb, GlobalHistory, Gshare, Gskew, ObservedEnd, ObservedStream, ReturnStack,
    StreamPath, StreamPredictor,
};
use smt_isa::{Addr, BranchKind};

/// A deterministic PC stream resembling branch addresses.
fn pcs(n: usize) -> Vec<Addr> {
    (0..n)
        .map(|i| Addr::new(0x40_0000 + ((i * 2654435761) % 65536) as u64 * 4))
        .collect()
}

fn bench_direction_predictors(c: &mut Criterion) {
    let pcs = pcs(4096);
    let mut g = c.benchmark_group("direction_predict_update");
    g.throughput(Throughput::Elements(pcs.len() as u64));

    g.bench_function("gshare_64k", |b| {
        let mut p = Gshare::hpca2004();
        let mut h = GlobalHistory::new(16);
        b.iter(|| {
            for &pc in &pcs {
                let t = p.predict(pc, h);
                p.update(pc, h, t);
                h.push(t);
            }
        });
    });

    g.bench_function("gskew_3x32k", |b| {
        let mut p = Gskew::hpca2004();
        let mut h = GlobalHistory::new(15);
        b.iter(|| {
            for &pc in &pcs {
                let t = p.predict(pc, h);
                p.update(pc, h, t);
                h.push(t);
            }
        });
    });
    g.finish();
}

fn bench_target_structures(c: &mut Criterion) {
    let pcs = pcs(4096);
    let mut g = c.benchmark_group("target_structures");
    g.throughput(Throughput::Elements(pcs.len() as u64));

    g.bench_function("btb_2k4w", |b| {
        let mut btb = Btb::hpca2004();
        b.iter(|| {
            for &pc in &pcs {
                if btb.lookup(pc).is_none() {
                    btb.record_taken(pc, pc + 64, BranchKind::Jump);
                }
            }
        });
    });

    g.bench_function("ftb_2k4w", |b| {
        let mut ftb = Ftb::hpca2004();
        b.iter(|| {
            for &pc in &pcs {
                if ftb.lookup(pc).is_none() {
                    ftb.record_taken(
                        pc,
                        ObservedEnd {
                            branch_pc: pc.add_insts(5),
                            kind: BranchKind::Cond,
                            target: pc + 256,
                        },
                    );
                }
            }
        });
    });

    g.bench_function("stream_1k_4k_dolc", |b| {
        let mut sp = StreamPredictor::new(1024, 4096, 4, Dolc::HPCA2004, 64);
        let mut path = StreamPath::new();
        b.iter(|| {
            for &pc in &pcs {
                if sp.predict(pc, &path).is_none() {
                    sp.train(
                        pc,
                        &path,
                        ObservedStream {
                            len: 12,
                            kind: BranchKind::Cond,
                            target: pc + 128,
                        },
                    );
                }
                path.push(pc);
            }
        });
    });

    g.bench_function("ras_push_pop", |b| {
        let mut ras = ReturnStack::hpca2004();
        b.iter(|| {
            for &pc in &pcs {
                ras.push(pc);
                let _ = ras.pop();
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_direction_predictors, bench_target_structures);
criterion_main!(benches);
