//! Benchmarks of the simulator's own throughput: how fast the model
//! simulates cycles under each fetch architecture (useful when extending
//! the model).

use smt_bench::bench_with_elements;
use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder, Simulator};
use smt_workloads::Workload;

const CYCLES: u64 = 10_000;

fn build(engine: FetchEngineKind, policy: FetchPolicy) -> Simulator {
    let mut sim = SimBuilder::new(Workload::mix4().programs(2004).expect("programs"))
        .fetch_engine(engine)
        .fetch_policy(policy)
        .build()
        .expect("build");
    sim.run_cycles(CYCLES); // warm state so the steady state is measured
    sim
}

fn main() {
    println!("simulate_4mix_{CYCLES}_cycles (elements = simulated cycles)");
    for engine in FetchEngineKind::all() {
        let mut sim = build(engine, FetchPolicy::icount(1, 8));
        let name = engine.to_string().replace('+', "_");
        bench_with_elements(&name, CYCLES, || {
            sim.run_cycles(CYCLES);
            sim.stats().total_committed()
        });
    }
    println!("\nsimulate_policy_{CYCLES}_cycles (gskew+FTB)");
    for policy in FetchPolicy::paper_sweep() {
        let mut sim = build(FetchEngineKind::GskewFtb, policy);
        bench_with_elements(&policy.to_string(), CYCLES, || {
            sim.run_cycles(CYCLES);
            sim.stats().total_committed()
        });
    }
}
