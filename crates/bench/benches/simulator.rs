//! Criterion benchmarks of the simulator's own throughput: how many cycles
//! and instructions per second the model simulates under each fetch
//! architecture (useful when extending the model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder, Simulator};
use smt_workloads::Workload;

fn build(engine: FetchEngineKind, policy: FetchPolicy) -> Simulator {
    let mut sim = SimBuilder::new(Workload::mix4().programs(2004).expect("programs"))
        .fetch_engine(engine)
        .fetch_policy(policy)
        .build()
        .expect("build");
    sim.run_cycles(10_000); // warm state so the steady state is measured
    sim
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_4mix_10k_cycles");
    g.throughput(Throughput::Elements(10_000));
    g.sample_size(10);
    for engine in FetchEngineKind::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.to_string().replace('+', "_")),
            &engine,
            |b, &engine| {
                let mut sim = build(engine, FetchPolicy::icount(1, 8));
                b.iter(|| {
                    sim.run_cycles(10_000);
                    sim.stats().total_committed()
                });
            },
        );
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_policy_10k_cycles");
    g.throughput(Throughput::Elements(10_000));
    g.sample_size(10);
    for policy in FetchPolicy::paper_sweep() {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.to_string()),
            &policy,
            |b, &policy| {
                let mut sim = build(FetchEngineKind::GskewFtb, policy);
                b.iter(|| {
                    sim.run_cycles(10_000);
                    sim.stats().total_committed()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_policies);
criterion_main!(benches);
