//! One benchmark per paper table/figure: each runs a (shortened) version
//! of the corresponding experiment, so `cargo bench` exercises every
//! artifact-regeneration path and tracks its cost.
//!
//! Full-length regeneration is `cargo run --release -p smt-experiments
//! --bin all`; these benches use [`RunLength::SMOKE`] so the whole suite
//! stays minutes, not hours.
//!
//! The final section times the same figure-5 sweep serially and with the
//! parallel executor at the machine's available parallelism, printing the
//! observed speedup. On a single-core runner the ratio is ~1.0 (the
//! executor must not add overhead); on multi-core CI it should approach
//! the worker count for this embarrassingly parallel matrix.

use smt_bench::bench;
use smt_experiments::{figures, Jobs, RunLength};

fn main() {
    println!("tables");
    bench("table1_characteristics", || {
        figures::table1(Jobs::SERIAL).text.len()
    });
    bench("table2_workloads", || figures::table2().text.len());
    bench("table3_parameters", || figures::table3().text.len());

    println!("\nfigures_smoke");
    let len = RunLength::SMOKE;
    let serial = Jobs::SERIAL;
    bench("figure2_ipfc_1x", || {
        figures::figure2(len, serial).results.len()
    });
    bench("figure4_ipfc_2x", || {
        figures::figure4(len, serial).results.len()
    });
    bench("figure5_ilp_18_28", || {
        figures::figure5(len, serial).results.len()
    });
    bench("figure6_ilp_wide", || {
        figures::figure6(len, serial).results.len()
    });
    bench("figure7_mem_18_28", || {
        figures::figure7(len, serial).results.len()
    });
    bench("figure8_mem_18_28_wide", || {
        figures::figure8(len, serial).results.len()
    });

    println!("\nsweep_parallel_vs_serial");
    let jobs = Jobs::default_parallelism();
    let t_serial = bench("figure5_sweep_serial", || {
        figures::figure5(len, serial).results.len()
    });
    let t_parallel = bench(&format!("figure5_sweep_jobs_{jobs}"), || {
        figures::figure5(len, jobs).results.len()
    });
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-12);
    println!("figure5 sweep speedup at {jobs} worker(s): {speedup:.2}x");
}
