//! One benchmark per paper table/figure: each runs a (shortened) version
//! of the corresponding experiment, so `cargo bench` exercises every
//! artifact-regeneration path and tracks its cost.
//!
//! Full-length regeneration is `cargo run --release -p smt-experiments
//! --bin all`; these benches use [`RunLength::SMOKE`] so the whole suite
//! stays minutes, not hours.

use smt_bench::bench;
use smt_experiments::{figures, RunLength};

fn main() {
    println!("tables");
    bench("table1_characteristics", || figures::table1().text.len());
    bench("table2_workloads", || figures::table2().text.len());
    bench("table3_parameters", || figures::table3().text.len());

    println!("\nfigures_smoke");
    let len = RunLength::SMOKE;
    bench("figure2_ipfc_1x", || figures::figure2(len).results.len());
    bench("figure4_ipfc_2x", || figures::figure4(len).results.len());
    bench("figure5_ilp_18_28", || figures::figure5(len).results.len());
    bench("figure6_ilp_wide", || figures::figure6(len).results.len());
    bench("figure7_mem_18_28", || figures::figure7(len).results.len());
    bench("figure8_mem_wide", || figures::figure8(len).results.len());
}
