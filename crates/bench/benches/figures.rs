//! One Criterion benchmark per paper table/figure: each bench runs a
//! (shortened) version of the corresponding experiment, so `cargo bench`
//! exercises every artifact-regeneration path and tracks its cost.
//!
//! Full-length regeneration is `cargo run --release -p smt-experiments
//! --bin all`; these benches use [`RunLength::SMOKE`] so the whole suite
//! stays minutes, not hours.

use criterion::{criterion_group, criterion_main, Criterion};
use smt_experiments::{figures, RunLength};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_characteristics", |b| {
        b.iter(|| figures::table1().text.len())
    });
    g.bench_function("table2_workloads", |b| b.iter(|| figures::table2().text.len()));
    g.bench_function("table3_parameters", |b| b.iter(|| figures::table3().text.len()));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_smoke");
    g.sample_size(10);
    let len = RunLength::SMOKE;
    g.bench_function("figure2_ipfc_1x", |b| b.iter(|| figures::figure2(len).results.len()));
    g.bench_function("figure4_ipfc_2x", |b| b.iter(|| figures::figure4(len).results.len()));
    g.bench_function("figure5_ilp_18_28", |b| b.iter(|| figures::figure5(len).results.len()));
    g.bench_function("figure6_ilp_wide", |b| b.iter(|| figures::figure6(len).results.len()));
    g.bench_function("figure7_mem_18_28", |b| b.iter(|| figures::figure7(len).results.len()));
    g.bench_function("figure8_mem_wide", |b| b.iter(|| figures::figure8(len).results.len()));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
