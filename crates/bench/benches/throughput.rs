//! Simulator throughput baseline: how many *simulated* cycles and committed
//! instructions per wall-clock second the model sustains on the figure-5
//! workload matrix, written to `BENCH_SIM.json` so regressions are diffable.
//!
//! Run it with:
//!
//! ```text
//! cargo bench -p smt-bench --bench throughput -- \
//!     [--cycles N] [--jobs N] [--out PATH] [--baseline PATH] [--smoke]
//! ```
//!
//! * `--cycles N` — measured cycles per cell (default 40 000; warmup is a
//!   quarter of it).
//! * `--jobs N` — worker count for the whole-matrix parallel timing row
//!   (default `SMT_JOBS` or 1).
//! * `--out PATH` — where to write the JSON report (default `SMT_BENCH_OUT`
//!   or `BENCH_SIM.json`; relative paths resolve against the workspace
//!   root, not cargo's bench cwd).
//! * `--baseline PATH` — compare against a previous report; prints a
//!   `WARNING` for any cell whose committed-instructions throughput dropped
//!   more than 15% and, without `--gate`, always exits 0 (the baseline is
//!   advisory: absolute wall-time depends on the host).
//! * `--gate` — with `--baseline`, exit 1 if any cell fell more than 30%
//!   below the baseline. The wide margin absorbs host noise; a genuine
//!   hot-path regression shows up far larger than 30%.
//! * `--smoke` — small matrix (one ILP workload plus the MEM cells) for CI.
//!   The measurement length is *not* shortened: smoke cells must be
//!   statistically comparable to the checked-in full-run baseline, and a
//!   truncated warmup window sits on the cold ramp of the IPC curve.
//!
//! Per cell the report holds the *best of [`SAMPLES_PER_CELL`] samples*
//! (minimum wall time — the least noisy estimator for CPU-bound code):
//! simulated cycles/sec, committed instructions/sec, the stddev of the
//! per-sample committed-instructions rate (how noisy this cell was on this
//! host), and IPC as a sanity anchor. A trailing `matrix` row times one
//! full serial sweep and one `--jobs N` sweep through the production
//! `run_matrix_parallel` executor, and a `service_mode` row times the
//! sweep daemon: one cold query against a warm burst of memoized repeats
//! of the same matrix over TCP loopback. With `--gate`, a warm speedup
//! below 50× (or any warm miss) fails the run — the ratio is
//! host-independent, so it gates without a baseline entry.
//!
//! **Re-blessing the baseline**: after an intentional performance change
//! (or on new hardware), run `cargo bench -p smt-bench --bench throughput`
//! from the workspace root — it rewrites `BENCH_SIM.json` in place — and
//! commit the new file together with the change that explains it.

use std::fmt::Write as _;
use std::time::Instant;

use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder, Simulator};
use smt_experiments::{run_matrix_parallel, Jobs, RunLength};
use smt_serve::{Client, MatrixRequest, Server};
use smt_workloads::Workload;

/// Seed shared with the experiment suite (results are deterministic).
const SEED: u64 = 2004;

/// Timed samples per cell; the minimum is reported.
const SAMPLES_PER_CELL: u32 = 3;

struct Options {
    measure_cycles: u64,
    jobs: Jobs,
    out: String,
    baseline: Option<String>,
    smoke: bool,
    gate: bool,
}

fn parse_args() -> Options {
    let mut o = Options {
        measure_cycles: 40_000,
        jobs: Jobs::from_env().expect("invalid SMT_JOBS"),
        out: std::env::var("SMT_BENCH_OUT").unwrap_or_else(|_| "BENCH_SIM.json".to_string()),
        baseline: None,
        smoke: false,
        gate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--cycles" => o.measure_cycles = value("--cycles").parse().expect("--cycles: integer"),
            "--jobs" => {
                let n = value("--jobs").parse().expect("--jobs: integer");
                o.jobs = Jobs::new(n).expect("--jobs: 1..=256");
            }
            "--out" => o.out = value("--out"),
            "--baseline" => o.baseline = Some(value("--baseline")),
            "--gate" => o.gate = true,
            "--smoke" => o.smoke = true,
            "--bench" => {} // passed through by `cargo bench`
            other => panic!("unknown argument {other:?}"),
        }
    }
    o
}

struct CellResult {
    workload: String,
    engine: String,
    policy: String,
    cycles_per_sec: f64,
    insts_per_sec: f64,
    /// Population stddev of the per-sample committed-instructions rate —
    /// the cell's measurement noise on this host.
    insts_per_sec_stddev: f64,
    ipc: f64,
}

fn build(w: &Workload, engine: FetchEngineKind, policy: FetchPolicy) -> Simulator {
    // Shared programs: all cells for one workload reference the same
    // cached `Arc<Program>`s, so cell setup cost excludes program synthesis.
    let programs = w
        .programs_shared(SEED)
        .expect("table 2 workloads always build");
    SimBuilder::new_shared(programs)
        .fetch_engine(engine)
        .fetch_policy(policy)
        .build()
        .expect("valid configuration")
}

/// Times one cell: warm the microarchitectural state, then take the best of
/// [`SAMPLES_PER_CELL`] measured windows (stats reset per sample so the
/// committed count belongs to the timed window alone).
fn time_cell(
    w: &Workload,
    engine: FetchEngineKind,
    policy: FetchPolicy,
    len: RunLength,
) -> CellResult {
    let mut sim = build(w, engine, policy);
    sim.run_cycles(len.warmup_cycles);
    let mut best_secs = f64::INFINITY;
    let mut best_committed = 0u64;
    let mut rates = [0.0f64; SAMPLES_PER_CELL as usize];
    for rate in &mut rates {
        sim.reset_stats();
        let start = Instant::now();
        sim.run_cycles(len.measure_cycles);
        let secs = start.elapsed().as_secs_f64().max(1e-12);
        *rate = sim.stats().total_committed() as f64 / secs;
        if secs < best_secs {
            best_secs = secs;
            best_committed = sim.stats().total_committed();
        }
    }
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    let variance = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64;
    CellResult {
        workload: w.name().to_string(),
        engine: engine.to_string(),
        policy: policy.to_string(),
        cycles_per_sec: len.measure_cycles as f64 / best_secs,
        insts_per_sec: best_committed as f64 / best_secs,
        insts_per_sec_stddev: variance.sqrt(),
        ipc: best_committed as f64 / len.measure_cycles as f64,
    }
}

/// Sweep-as-a-service timing: one cold query (every cell simulated on the
/// daemon) against a burst of warm repeats of the same matrix (pure memo
/// hits), both over TCP loopback through the real client/daemon path.
struct ServiceResult {
    cells: usize,
    cold_secs: f64,
    warm_secs_per_query: f64,
    /// `cold_secs / warm_secs_per_query` — how much a memoized repeat
    /// query beats recomputation. Host-relative, so it gates on the ratio
    /// rather than on absolute wall time.
    warm_speedup: f64,
    /// Hit fraction across the warm burst (must be 1.0).
    warm_hit_rate: f64,
}

/// Warm repeats averaged per query (one burst, best-effort amortization of
/// connection and protocol overhead into the per-query figure).
const WARM_QUERIES: u32 = 10;

fn time_service(workloads: &[Workload], len: RunLength, jobs: Jobs) -> ServiceResult {
    let server = Server::bind("127.0.0.1:0", jobs).expect("bind daemon");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect to daemon");
    let req = MatrixRequest {
        workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
        engines: FetchEngineKind::all()
            .iter()
            .map(|e| e.to_string())
            .collect(),
        policies: vec!["ICOUNT.1.8".to_string(), "ICOUNT.2.8".to_string()],
        // Offset the warmup so these cells' content hashes are private to
        // the bench (the per-cell timing above runs outside the memo path,
        // but keys must not collide with any other daemon user's).
        warmup_cycles: len.warmup_cycles + 1,
        measure_cycles: len.measure_cycles,
        jobs: None,
    };

    let start = Instant::now();
    let cold = client.submit(&req).expect("cold query");
    let cold_secs = start.elapsed().as_secs_f64().max(1e-12);
    assert_eq!(cold.summary.cells, req.cells());

    let mut hits = 0usize;
    let start = Instant::now();
    for _ in 0..WARM_QUERIES {
        let job = client.submit(&req).expect("warm query");
        hits += job.hits();
    }
    let warm_secs_per_query = (start.elapsed().as_secs_f64() / f64::from(WARM_QUERIES)).max(1e-12);
    drop(client);
    server.shutdown();

    ServiceResult {
        cells: req.cells(),
        cold_secs,
        warm_secs_per_query,
        warm_speedup: cold_secs / warm_secs_per_query,
        warm_hit_rate: hits as f64 / (req.cells() as f64 * f64::from(WARM_QUERIES)),
    }
}

/// Renders the report. Each cell sits on its own line with a fixed key
/// order, which is all the baseline parser below relies on.
fn render_json(
    len: RunLength,
    cells: &[CellResult],
    jobs: Jobs,
    serial_secs: f64,
    parallel_secs: f64,
    service: &ServiceResult,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"smtfetch-bench-sim/2\",");
    let _ = writeln!(s, "  \"measure_cycles\": {},", len.measure_cycles);
    let _ = writeln!(s, "  \"warmup_cycles\": {},", len.warmup_cycles);
    let _ = writeln!(s, "  \"samples_per_cell\": {SAMPLES_PER_CELL},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"policy\": \"{}\", \
             \"sim_cycles_per_sec\": {:.1}, \"committed_insts_per_sec\": {:.1}, \
             \"committed_insts_per_sec_stddev\": {:.1}, \"ipc\": {:.4}}}",
            c.workload,
            c.engine,
            c.policy,
            c.cycles_per_sec,
            c.insts_per_sec,
            c.insts_per_sec_stddev,
            c.ipc
        );
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"matrix\": {{\"cells\": {}, \"serial_secs\": {:.3}, \"jobs\": {}, \
         \"parallel_secs\": {:.3}}},",
        cells.len(),
        serial_secs,
        jobs.get(),
        parallel_secs
    );
    let _ = writeln!(
        s,
        "  \"service_mode\": {{\"cells\": {}, \"cold_secs\": {:.3}, \
         \"warm_queries\": {WARM_QUERIES}, \"warm_secs_per_query\": {:.6}, \
         \"warm_speedup\": {:.1}, \"warm_hit_rate\": {:.4}}}",
        service.cells,
        service.cold_secs,
        service.warm_secs_per_query,
        service.warm_speedup,
        service.warm_hit_rate
    );
    s.push_str("}\n");
    s
}

/// Minimal field extractors for our own one-cell-per-line JSON (the
/// workspace is dependency-free, so no serde).
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(line.len() - start);
    line[start..start + end].parse().ok()
}

/// Compares committed-instruction throughput against a previous report.
///
/// Regressions beyond 15% print a `WARNING`; regressions beyond 30% are
/// *gate failures*, returned as a count so `--gate` can fail the run. To
/// accept an intentional slowdown, re-bless the baseline (see the module
/// docs).
fn compare_with_baseline(baseline: &str, cells: &[CellResult]) -> u32 {
    const TOLERANCE: f64 = 0.85;
    const GATE_TOLERANCE: f64 = 0.70;
    let mut warned = 0u32;
    let mut gate_failures = 0u32;
    for line in baseline.lines() {
        let (Some(w), Some(e), Some(p), Some(base)) = (
            json_str(line, "workload"),
            json_str(line, "engine"),
            json_str(line, "policy"),
            json_num(line, "committed_insts_per_sec"),
        ) else {
            continue;
        };
        let Some(cell) = cells
            .iter()
            .find(|c| c.workload == w && c.engine == e && c.policy == p)
        else {
            continue;
        };
        if base > 0.0 && cell.insts_per_sec < base * GATE_TOLERANCE {
            println!(
                "GATE: {w} | {e} | {p}: committed insts/sec fell \
                 {base:.0} -> {:.0} (more than 30% below baseline)",
                cell.insts_per_sec
            );
            gate_failures += 1;
        } else if base > 0.0 && cell.insts_per_sec < base * TOLERANCE {
            println!(
                "WARNING: {w} | {e} | {p}: committed insts/sec fell \
                 {base:.0} -> {:.0} (more than 15% below baseline)",
                cell.insts_per_sec
            );
            warned += 1;
        }
    }
    if warned == 0 && gate_failures == 0 {
        println!("baseline check: no cell more than 15% below baseline");
    } else {
        println!(
            "baseline check: {} cell(s) regressed ({gate_failures} beyond the 30% gate)",
            warned + gate_failures
        );
    }
    gate_failures
}

/// Cargo runs bench binaries with the *package* directory as cwd
/// (`crates/bench`), not the workspace root the user invoked from. Resolve
/// relative report paths against the workspace root so `--out
/// BENCH_SIM.json` lands where the checked-in baseline lives.
fn resolve(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn main() {
    let o = parse_args();
    let len = RunLength {
        warmup_cycles: o.measure_cycles / 4,
        measure_cycles: o.measure_cycles,
    };
    let workloads = if o.smoke {
        vec![Workload::ilp2()]
    } else {
        Workload::ilp_suite()
    };
    let engines = FetchEngineKind::all();
    let policies = [FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)];

    println!(
        "simulator throughput, figure-5 matrix ({} workloads x {} engines x {} policies, \
         {} measured cycles/cell)",
        workloads.len(),
        engines.len(),
        policies.len(),
        len.measure_cycles
    );
    let mut cells = Vec::new();
    for w in &workloads {
        for &policy in &policies {
            for &engine in &engines {
                let c = time_cell(w, engine, policy, len);
                println!(
                    "{:<8} {:<12} {:<12} {:>12.0} cyc/s {:>12.0} insts/s  ipc {:.3}",
                    c.workload, c.engine, c.policy, c.cycles_per_sec, c.insts_per_sec, c.ipc
                );
                cells.push(c);
            }
        }
    }

    // Skip-heavy MEM cells (kept in --smoke too, so the gated bench-smoke
    // covers the event-driven scheduler's fast path): the memory-bound
    // workload spends most of its time in ~100-cycle stall windows, under
    // plain ICOUNT and under the long-latency STALL/FLUSH gates.
    let mem2 = Workload::mem2();
    for policy in [
        FetchPolicy::icount(2, 8),
        FetchPolicy::icount(2, 8).with_stall(),
        FetchPolicy::icount(1, 8).with_flush(),
    ] {
        let c = time_cell(&mem2, FetchEngineKind::GshareBtb, policy, len);
        println!(
            "{:<8} {:<12} {:<12} {:>12.0} cyc/s {:>12.0} insts/s  ipc {:.3}",
            c.workload, c.engine, c.policy, c.cycles_per_sec, c.insts_per_sec, c.ipc
        );
        cells.push(c);
    }

    // Window-churn cell: eight threads hammering the shared instruction
    // window keeps push/pop/squash traffic — the structure-of-arrays hot
    // path — dominant, where the MEM cells above mostly exercise the
    // event-skip scheduler instead.
    let mix8 = Workload::mix8();
    let c = time_cell(
        &mix8,
        FetchEngineKind::GshareBtb,
        FetchPolicy::icount(2, 8),
        len,
    );
    println!(
        "{:<8} {:<12} {:<12} {:>12.0} cyc/s {:>12.0} insts/s  ipc {:.3}",
        c.workload, c.engine, c.policy, c.cycles_per_sec, c.insts_per_sec, c.ipc
    );
    cells.push(c);

    // Whole-matrix wall time through the production sweep executor: one
    // serial pass, one at the requested worker count.
    let start = Instant::now();
    let serial = run_matrix_parallel(&workloads, &engines, &policies, len, Jobs::SERIAL);
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel = run_matrix_parallel(&workloads, &engines, &policies, len, o.jobs);
    let parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
    println!(
        "matrix: {} cells, serial {serial_secs:.3} s, --jobs {} {parallel_secs:.3} s",
        cells.len(),
        o.jobs.get()
    );

    // Sweep-as-a-service: one cold query, then a warm burst of the same
    // matrix through the daemon's memo cache. The ratio is the product
    // being measured — it must clear 50× on any host (cold pays for real
    // simulation, warm pays for TCP round-trips and cache lookups only).
    let service = time_service(&workloads, len, o.jobs);
    println!(
        "service: {} cells, cold {:.3} s, warm {:.6} s/query over {} repeats \
         ({:.0}x speedup, hit rate {:.2})",
        service.cells,
        service.cold_secs,
        service.warm_secs_per_query,
        WARM_QUERIES,
        service.warm_speedup,
        service.warm_hit_rate
    );

    let json = render_json(len, &cells, o.jobs, serial_secs, parallel_secs, &service);
    let out = resolve(&o.out);
    std::fs::write(&out, &json).expect("write BENCH_SIM.json");
    println!("wrote {}", out.display());

    let mut gate_failed = false;
    if let Some(path) = &o.baseline {
        match std::fs::read_to_string(resolve(path)) {
            Ok(baseline) => {
                let gate_failures = compare_with_baseline(&baseline, &cells);
                if gate_failures > 0 {
                    println!(
                        "bench gate: {gate_failures} cell(s) more than 30% below baseline; \
                         re-bless BENCH_SIM.json if the slowdown is intentional"
                    );
                    gate_failed = true;
                }
            }
            Err(e) => println!("baseline check skipped: cannot read {path}: {e}"),
        }
    }
    // The service-mode gate is a host-independent ratio, so it needs no
    // baseline file: a warm (memoized) query must beat cold recomputation
    // by at least 50x, and the warm burst must be pure hits.
    const SERVICE_SPEEDUP_FLOOR: f64 = 50.0;
    if service.warm_speedup < SERVICE_SPEEDUP_FLOOR || service.warm_hit_rate < 1.0 {
        println!(
            "service gate: warm speedup {:.1}x (floor {SERVICE_SPEEDUP_FLOOR}x), \
             hit rate {:.2} (must be 1.00)",
            service.warm_speedup, service.warm_hit_rate
        );
        gate_failed = true;
    }
    if o.gate && gate_failed {
        std::process::exit(1);
    }
}
