//! A tiny, dependency-free timing harness for the workspace's benchmarks
//! (`benches/` are plain `harness = false` binaries built on it).
//!
//! Not a statistics suite: each benchmark runs a warmup pass and a fixed
//! number of timed samples, then prints the minimum and mean sample time
//! (minimum first — it is the least noisy estimator for CPU-bound code).
//! Wall-clock time is confined to this crate by design; the simulation
//! crates themselves are forbidden from reading clocks (see `smt-lint`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
pub const SAMPLES: u32 = 10;

/// Times `f` (after one untimed warmup call) and prints one report line.
///
/// Returns the minimum sample duration so callers can post-process.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    bench_with_elements(name, 0, &mut f)
}

/// Like [`bench()`], additionally reporting throughput as `elements` work
/// items per sample (e.g. simulated cycles or predictor lookups).
pub fn bench_with_elements<R>(name: &str, elements: u64, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f()); // warmup; also defeats dead-code elision
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed();
        min = min.min(dt);
        total += dt;
    }
    let mean = total / SAMPLES;
    if elements > 0 {
        let per_sec = elements as f64 / min.as_secs_f64().max(1e-12);
        println!(
            "{name:<40} min {:>12} mean {:>12} {:>14.0} elem/s",
            fmt_duration(min),
            fmt_duration(mean),
            per_sec
        );
    } else {
        println!(
            "{name:<40} min {:>12} mean {:>12}",
            fmt_duration(min),
            fmt_duration(mean)
        );
    }
    min
}

/// Renders a duration with a unit that keeps 3-4 significant digits.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_a_positive_minimum() {
        let min = bench("noop_spin", || {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(min > Duration::ZERO);
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
