//! Criterion benchmark crate (benches only; see `benches/`).
