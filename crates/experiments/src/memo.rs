//! Content-hash memoization of experiment results (DESIGN.md §16).
//!
//! Two process-wide caches keyed by [`CellKey`] share one keying discipline
//! and one bounded-cache shape:
//!
//! * the **memo cache** maps a full cell key to its finished [`RunResult`]
//!   — the steady-state "repeated query is a lookup, not a run" path the
//!   sweep service is built on;
//! * the **warm cache** maps a [`CellKey::warmup_scope`] projection to the
//!   post-warmup [`Snapshot`] (the PR 7 `SMT_WARM_START` cache, re-keyed).
//!
//! Both are bounded ([`BoundedCache`]) with deterministic FIFO eviction —
//! insertion order is a pure function of the cell schedule, so which entry
//! is evicted never depends on timing — and both are *pure accelerators*:
//! every hit returns exactly what the cold path would have computed (the
//! `CellKey` soundness argument in `smt-core`), and any cache problem falls
//! back to computing. The memo cache optionally persists entries to a
//! directory ([`set_memo_dir`] / `SMT_MEMO_DIR`), each file echoing its full
//! key so a content-hash collision or a stale format is detected and
//! recomputed instead of served.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use smt_core::{CellKey, FetchEngineKind, FetchPolicy, SimConfig, Snapshot};
use smt_workloads::Workload;

use crate::runner::{RunLength, RunResult, EXP_SEED};
use crate::sweep::{sweep_cells, Jobs, Sweep};

/// Whether a cell was served from cache or had to be computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheOutcome {
    /// Served from the memo cache (in-memory or disk layer).
    Hit,
    /// Computed fresh (and inserted for next time).
    Miss,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::Miss => write!(f, "miss"),
        }
    }
}

impl std::str::FromStr for CacheOutcome {
    type Err = String;

    fn from_str(s: &str) -> Result<CacheOutcome, String> {
        match s {
            "hit" => Ok(CacheOutcome::Hit),
            "miss" => Ok(CacheOutcome::Miss),
            other => Err(format!("expected hit|miss, got {other:?}")),
        }
    }
}

/// Lifetime counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted by the FIFO cap.
    pub evictions: u64,
}

impl CacheCounters {
    /// Counter deltas since `earlier` (saturating) — how a job computes its
    /// per-job numbers from two process-wide snapshots.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Point-in-time view of one cache: occupancy, cap, and lifetime counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Entries currently held.
    pub len: usize,
    /// Entry-count cap (FIFO eviction beyond it).
    pub cap: usize,
    /// Lifetime hit/miss/eviction counters.
    pub counters: CacheCounters,
}

/// A `BTreeMap` cache (per the determinism lint) bounded to `cap` entries
/// with FIFO eviction: when a *new* key would exceed the cap, the oldest
/// inserted key is evicted. Re-inserting a present key replaces the value
/// in place and keeps its queue position, so eviction order is a pure
/// function of the sequence of first insertions.
#[derive(Debug)]
pub struct BoundedCache<V> {
    map: BTreeMap<CellKey, V>,
    order: VecDeque<CellKey>,
    cap: usize,
    counters: CacheCounters,
}

impl<V: Clone> BoundedCache<V> {
    /// An empty cache holding at most `cap` entries (`cap` is clamped to at
    /// least 1 — a cache that can hold nothing is a configuration mistake,
    /// not a useful mode).
    pub fn new(cap: usize) -> BoundedCache<V> {
        BoundedCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            counters: CacheCounters::default(),
        }
    }

    /// Pure lookup: no counters move (outcomes are recorded by the caller
    /// via [`BoundedCache::record`], which knows whether a memory miss was
    /// rescued by the disk layer).
    pub fn get(&mut self, key: &CellKey) -> Option<V> {
        self.map.get(key).cloned()
    }

    /// Inserts (or replaces) an entry, evicting the oldest first insertion
    /// when a new key would exceed the cap.
    pub fn insert(&mut self, key: CellKey, value: V) {
        if self.map.insert(key.clone(), value).is_some() {
            return; // replaced in place; queue position unchanged
        }
        self.order.push_back(key);
        while self.map.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.map.remove(&oldest).is_some() {
                self.counters.evictions += 1;
            }
        }
    }

    /// Records a lookup outcome in the lifetime counters.
    pub fn record(&mut self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Hit => self.counters.hits += 1,
            CacheOutcome::Miss => self.counters.misses += 1,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The point-in-time [`CacheSnapshot`].
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            len: self.map.len(),
            cap: self.cap,
            counters: self.counters,
        }
    }
}

/// Entry-count cap from an environment variable, falling back to `default`
/// when unset, unparsable, or zero.
fn cap_from_env(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Default memo-cache cap (entries are one `RunResult` each — small).
const MEMO_CAP_DEFAULT: usize = 65_536;

/// Default warm-cache cap (entries are full machine snapshots — large).
const WARM_CAP_DEFAULT: usize = 256;

static MEMO: OnceLock<Mutex<BoundedCache<RunResult>>> = OnceLock::new();
static WARM: OnceLock<Mutex<BoundedCache<Snapshot>>> = OnceLock::new();
static MEMO_DIR: OnceLock<Option<PathBuf>> = OnceLock::new();

fn memo() -> &'static Mutex<BoundedCache<RunResult>> {
    MEMO.get_or_init(|| {
        Mutex::new(BoundedCache::new(cap_from_env(
            "SMT_MEMO_CAP",
            MEMO_CAP_DEFAULT,
        )))
    })
}

fn warm() -> &'static Mutex<BoundedCache<Snapshot>> {
    WARM.get_or_init(|| {
        Mutex::new(BoundedCache::new(cap_from_env(
            "SMT_WARM_CAP",
            WARM_CAP_DEFAULT,
        )))
    })
}

/// The memo cache's on-disk directory: [`set_memo_dir`] if called first,
/// else `SMT_MEMO_DIR`, else none (in-memory only).
fn memo_dir() -> Option<&'static PathBuf> {
    MEMO_DIR
        .get_or_init(|| std::env::var_os("SMT_MEMO_DIR").map(PathBuf::from))
        .as_ref()
}

/// Points the memo cache's optional disk layer at `dir` (`None` disables
/// it), overriding `SMT_MEMO_DIR`. Returns `Err` if the disk layer was
/// already initialized (by an earlier call or an earlier cache access).
pub fn set_memo_dir(dir: Option<PathBuf>) -> Result<(), &'static str> {
    let mut accepted = false;
    let chosen = MEMO_DIR.get_or_init(|| {
        accepted = true;
        dir.clone()
    });
    if accepted || *chosen == dir {
        Ok(())
    } else {
        Err("memo directory already initialized")
    }
}

/// Point-in-time view of the result memo cache.
pub fn memo_snapshot() -> CacheSnapshot {
    match memo().lock() {
        Ok(c) => c.snapshot(),
        Err(_) => CacheSnapshot {
            len: 0,
            cap: 0,
            counters: CacheCounters::default(),
        },
    }
}

/// Point-in-time view of the warm-start snapshot cache.
pub fn warm_snapshot() -> CacheSnapshot {
    match warm().lock() {
        Ok(c) => c.snapshot(),
        Err(_) => CacheSnapshot {
            len: 0,
            cap: 0,
            counters: CacheCounters::default(),
        },
    }
}

/// Warm-cache lookup for the runner's warmed-simulator path. `key` must be
/// a [`CellKey::warmup_scope`] projection. Records a hit when found; the
/// matching miss is recorded by [`warm_store`] on the cold path.
pub(crate) fn warm_get(key: &CellKey) -> Option<Snapshot> {
    let mut cache = warm().lock().ok()?;
    let found = cache.get(key);
    if found.is_some() {
        cache.record(CacheOutcome::Hit);
    }
    found
}

/// Stores a freshly warmed snapshot, recording the miss that led here.
pub(crate) fn warm_store(key: CellKey, snap: Snapshot) {
    if let Ok(mut cache) = warm().lock() {
        cache.record(CacheOutcome::Miss);
        cache.insert(key, snap);
    }
}

/// The full cell key of one `(workload, engine, cfg, len)` run under the
/// experiment seed — the identity the memo cache stores results under.
pub fn cell_key(
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: &SimConfig,
    len: RunLength,
) -> CellKey {
    CellKey::new(
        cfg,
        engine,
        workload.name(),
        EXP_SEED,
        len.warmup_cycles,
        len.measure_cycles,
    )
}

/// Renders a [`RunResult`] as one `|`-separated line, every `f64` as its
/// exact bit pattern (hex of [`f64::to_bits`]) so the decode is bit-for-bit
/// lossless — the codec the protocol's `RESULT` lines, the disk layer, and
/// the byte-identity tests all share. No vocabulary string (workload,
/// engine, policy) contains `|`.
pub fn encode_result(r: &RunResult) -> String {
    let bits = |v: f64| format!("{:016x}", v.to_bits());
    let per_thread: Vec<String> = r.per_thread_ipc.iter().map(|&v| bits(v)).collect();
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        r.workload,
        r.engine,
        r.policy,
        bits(r.ipfc),
        bits(r.ipc),
        bits(r.branch_accuracy),
        bits(r.wrong_path),
        bits(r.frac_ge4),
        bits(r.frac_ge8),
        bits(r.frac_eq8),
        bits(r.frac_ge16),
        bits(r.fairness),
        r.skipped_cycles,
        per_thread.join(",")
    )
}

/// Parses an [`encode_result`] line back into the exact [`RunResult`].
pub fn decode_result(line: &str) -> Result<RunResult, String> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 14 {
        return Err(format!("expected 14 fields, got {}", fields.len()));
    }
    let bits = |s: &str| -> Result<f64, String> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad f64 bits {s:?}"))
    };
    let per_thread_ipc = if fields[13].is_empty() {
        Vec::new()
    } else {
        fields[13]
            .split(',')
            .map(bits)
            .collect::<Result<Vec<f64>, String>>()?
    };
    Ok(RunResult {
        workload: fields[0].to_string(),
        engine: fields[1].to_string(),
        policy: fields[2].to_string(),
        ipfc: bits(fields[3])?,
        ipc: bits(fields[4])?,
        branch_accuracy: bits(fields[5])?,
        wrong_path: bits(fields[6])?,
        frac_ge4: bits(fields[7])?,
        frac_ge8: bits(fields[8])?,
        frac_eq8: bits(fields[9])?,
        frac_ge16: bits(fields[10])?,
        fairness: bits(fields[11])?,
        skipped_cycles: fields[12]
            .parse()
            .map_err(|_| format!("bad skipped_cycles {:?}", fields[12]))?,
        per_thread_ipc,
    })
}

/// The disk file an entry persists to: named by the key's content hash.
fn disk_path(dir: &Path, key: &CellKey) -> PathBuf {
    dir.join(format!("{:016x}.cell", key.hash()))
}

/// Disk-layer lookup: reads the entry file, verifies the echoed key matches
/// `key` exactly (hash collisions and stale formats decode as mismatches,
/// never as results), and decodes. Any problem — missing file, torn write,
/// key mismatch — is a miss.
fn disk_get(key: &CellKey) -> Option<RunResult> {
    let dir = memo_dir()?;
    let text = std::fs::read_to_string(disk_path(dir, key)).ok()?;
    let mut lines = text.lines();
    let echoed = CellKey::parse(lines.next()?).ok()?;
    if echoed != *key {
        return None;
    }
    decode_result(lines.next()?).ok()
}

/// Disk-layer store: key echo on line 1, encoded result on line 2. Best
/// effort — an unwritable directory just leaves the entry in-memory-only.
/// Concurrent writers of the same key write identical bytes, so the race
/// is harmless; a torn file fails [`disk_get`]'s parse and is recomputed.
fn disk_put(key: &CellKey, result: &RunResult) {
    let Some(dir) = memo_dir() else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let body = format!("{}\n{}\n", key.to_line(), encode_result(result));
    let _ = std::fs::write(disk_path(dir, key), body);
}

/// Runs one cell through the memo cache: an in-memory or disk hit returns
/// the stored result; a miss computes it — with the warm-start snapshot
/// cache unconditionally enabled, so even a cold cell skips re-warming —
/// and stores it in both layers.
///
/// The returned result is byte-identical to a fresh
/// [`crate::runner::run_with_config`] run of the same cell (pinned by the
/// memoization property tests).
pub fn run_memoized_with_config(
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: &SimConfig,
    len: RunLength,
) -> (RunResult, CacheOutcome) {
    let key = cell_key(workload, engine, cfg, len);
    if let Ok(mut cache) = memo().lock() {
        if let Some(found) = cache.get(&key) {
            cache.record(CacheOutcome::Hit);
            return (found, CacheOutcome::Hit);
        }
    }
    if let Some(found) = disk_get(&key) {
        if let Ok(mut cache) = memo().lock() {
            cache.record(CacheOutcome::Hit);
            cache.insert(key, found.clone());
        }
        return (found, CacheOutcome::Hit);
    }
    let result = crate::runner::run_with_config_warm(workload, engine, cfg.clone(), len);
    disk_put(&key, &result);
    if let Ok(mut cache) = memo().lock() {
        cache.record(CacheOutcome::Miss);
        cache.insert(key, result.clone());
    }
    (result, CacheOutcome::Miss)
}

/// [`run_memoized_with_config`] for a plain policy cell (Table 3 defaults).
pub fn run_memoized(
    workload: &Workload,
    engine: FetchEngineKind,
    policy: FetchPolicy,
    len: RunLength,
) -> (RunResult, CacheOutcome) {
    let cfg = SimConfig {
        fetch_policy: policy,
        ..SimConfig::default()
    };
    run_memoized_with_config(workload, engine, &cfg, len)
}

/// A per-cell completion callback: `(stable cell index, result, outcome)`,
/// invoked from whichever worker thread finishes the cell.
pub type OnCell<'a> = &'a (dyn Fn(usize, &RunResult, CacheOutcome) + Sync);

/// [`crate::runner::run_matrix_sweep`] through the memo cache: the full
/// `workloads × policies × engines` cross product in the same stable cell
/// order, each cell looked up before it is computed. Per-cell cache
/// outcomes are filled into the sweep's [`crate::CellStat`]s, and `on_cell`
/// (when given) is invoked from the worker thread the moment each cell
/// completes — completion order, not cell order — which is how the daemon
/// streams `RESULT` lines while the sweep is still running.
pub fn run_matrix_sweep_memoized(
    workloads: &[Workload],
    engines: &[FetchEngineKind],
    policies: &[FetchPolicy],
    len: RunLength,
    jobs: Jobs,
    on_cell: Option<OnCell<'_>>,
) -> Sweep<RunResult> {
    // Stable cell order: workload × policy × engine (see `run_matrix`).
    let cells: Vec<(&Workload, FetchEngineKind, FetchPolicy)> = workloads
        .iter()
        .flat_map(|w| {
            policies
                .iter()
                .flat_map(move |&p| engines.iter().map(move |&e| (w, e, p)))
        })
        .collect();
    let sweep = sweep_cells(
        cells.len(),
        jobs,
        len.measure_cycles,
        |i| {
            let (w, e, p) = &cells[i];
            format!("{} {} {}", w.name(), e, p)
        },
        |i| {
            let (w, e, p) = cells[i];
            let (result, outcome) = run_memoized(w, e, p, len);
            if let Some(cb) = on_cell {
                cb(i, &result, outcome);
            }
            (result, outcome)
        },
    );
    let mut stats = sweep.stats;
    let results: Vec<RunResult> = sweep
        .results
        .into_iter()
        .zip(stats.iter_mut())
        .map(|((result, outcome), stat)| {
            stat.skipped = result.skipped_cycles;
            stat.cache = Some(outcome);
            result
        })
        .collect();
    Sweep { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(workload: &str, seedish: u64) -> RunResult {
        RunResult {
            workload: workload.into(),
            engine: "trace cache".into(),
            policy: "ICOUNT.2.8".into(),
            ipfc: 3.25 + seedish as f64,
            ipc: 2.5,
            branch_accuracy: 0.9375,
            wrong_path: 0.1,
            frac_ge4: 0.5,
            frac_ge8: 0.25,
            frac_eq8: 0.125,
            frac_ge16: 0.0,
            per_thread_ipc: vec![1.25, 1.25, f64::from_bits(0x3ff0_0000_0000_0001)],
            fairness: 1.0,
            skipped_cycles: 42,
        }
    }

    fn key(n: u64) -> CellKey {
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::Stream,
            "2_MIX",
            n,
            100,
            200,
        )
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let r = result("2_MIX", 0);
        assert_eq!(decode_result(&encode_result(&r)), Ok(r.clone()));
        // Engine names with spaces survive; subnormal-adjacent bit patterns
        // survive exactly (the 0x...0001 per-thread entry).
        let again = decode_result(&encode_result(&r)).unwrap();
        assert_eq!(
            again.per_thread_ipc[2].to_bits(),
            0x3ff0_0000_0000_0001,
            "f64 bits must round-trip exactly"
        );
        assert!(decode_result("short|line").is_err());
        assert!(decode_result(&encode_result(&r).replace('|', ";")).is_err());
    }

    #[test]
    fn codec_handles_empty_per_thread() {
        let r = RunResult {
            per_thread_ipc: Vec::new(),
            ..result("1_X", 0)
        };
        assert_eq!(decode_result(&encode_result(&r)), Ok(r));
    }

    #[test]
    fn bounded_cache_evicts_fifo() {
        let mut c: BoundedCache<u64> = BoundedCache::new(2);
        c.insert(key(1), 1);
        c.insert(key(2), 2);
        assert_eq!(c.len(), 2);
        // Replacing key(1) keeps its queue position (still the oldest).
        c.insert(key(1), 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.snapshot().counters.evictions, 0);
        // A third distinct key evicts key(1), the oldest first insertion.
        c.insert(key(3), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.get(&key(2)), Some(2));
        assert_eq!(c.get(&key(3)), Some(3));
        assert_eq!(c.snapshot().counters.evictions, 1);
    }

    #[test]
    fn bounded_cache_counts_outcomes() {
        let mut c: BoundedCache<u64> = BoundedCache::new(4);
        c.record(CacheOutcome::Miss);
        c.insert(key(1), 1);
        c.record(CacheOutcome::Hit);
        c.record(CacheOutcome::Hit);
        let snap = c.snapshot();
        assert_eq!(snap.counters.hits, 2);
        assert_eq!(snap.counters.misses, 1);
        assert_eq!(snap.len, 1);
        assert_eq!(snap.cap, 4);
        let later = CacheCounters {
            hits: 5,
            misses: 3,
            evictions: 1,
        };
        assert_eq!(
            later.since(&snap.counters),
            CacheCounters {
                hits: 3,
                misses: 2,
                evictions: 1
            }
        );
    }

    #[test]
    fn cache_outcome_round_trips() {
        assert_eq!("hit".parse(), Ok(CacheOutcome::Hit));
        assert_eq!("miss".parse(), Ok(CacheOutcome::Miss));
        assert!("HIT".parse::<CacheOutcome>().is_err());
        assert_eq!(CacheOutcome::Hit.to_string(), "hit");
        assert_eq!(CacheOutcome::Miss.to_string(), "miss");
    }

    #[test]
    fn memoized_run_hits_on_repeat() {
        // GshareBtb + MISSCOUNT is used by no other test in this crate, so
        // the first memoized run is a provable miss.
        let w = Workload::mix2();
        let cfg = SimConfig {
            fetch_policy: FetchPolicy::miss_count(1, 8),
            ..SimConfig::default()
        };
        let fresh = crate::runner::run_with_config(
            &w,
            FetchEngineKind::GshareBtb,
            cfg.clone(),
            RunLength::SMOKE,
        );
        let (first, o1) =
            run_memoized_with_config(&w, FetchEngineKind::GshareBtb, &cfg, RunLength::SMOKE);
        let (second, o2) =
            run_memoized_with_config(&w, FetchEngineKind::GshareBtb, &cfg, RunLength::SMOKE);
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(first, fresh, "memoized miss == fresh, byte-identical");
        assert_eq!(second, fresh, "memoized hit == fresh, byte-identical");
    }

    #[test]
    fn memoized_sweep_fills_cache_outcomes_and_streams() {
        use std::sync::Mutex as StdMutex;
        let streamed: StdMutex<Vec<(usize, CacheOutcome)>> = StdMutex::new(Vec::new());
        let on_cell = |i: usize, r: &RunResult, o: CacheOutcome| {
            assert!(!r.workload.is_empty());
            streamed.lock().unwrap().push((i, o));
        };
        let sweep = run_matrix_sweep_memoized(
            &[Workload::mix2()],
            &[FetchEngineKind::Stream],
            &[FetchPolicy::round_robin(1, 8)],
            RunLength::SMOKE,
            Jobs::SERIAL,
            Some(&on_cell),
        );
        assert_eq!(sweep.results.len(), 1);
        assert_eq!(sweep.stats[0].cache, Some(CacheOutcome::Miss));
        assert_eq!(sweep.stats[0].skipped, sweep.results[0].skipped_cycles);
        assert_eq!(
            streamed.lock().unwrap().as_slice(),
            &[(0, CacheOutcome::Miss)]
        );

        let again = run_matrix_sweep_memoized(
            &[Workload::mix2()],
            &[FetchEngineKind::Stream],
            &[FetchPolicy::round_robin(1, 8)],
            RunLength::SMOKE,
            Jobs::SERIAL,
            None,
        );
        assert_eq!(again.results, sweep.results, "hit == miss results");
        assert_eq!(again.stats[0].cache, Some(CacheOutcome::Hit));
    }
}
