//! Chunked parallel execution from checkpoints (DESIGN.md §13.4).
//!
//! A long simulation is split into `N` chunks: a **serial pass** runs the
//! full simulation once, taking a [`Snapshot`](smt_core::Snapshot) at each
//! chunk boundary, then a **parallel pass** restores every chunk from its
//! boundary checkpoint and re-runs it on the sweep executor. Because the
//! simulator is deterministic and snapshots capture *all* mutable state,
//! each chunk's end snapshot must be byte-identical to the next chunk's
//! start checkpoint — and the last chunk's end snapshot to the monolithic
//! run's final snapshot. [`run_chunked`] verifies every one of those
//! boundaries and reports the first divergence as an `E0018` diagnostic,
//! making chunked execution a whole-simulator differential test: any state
//! the snapshot format misses, any nondeterminism in the cycle loop, or any
//! restore bug shows up as a boundary mismatch.
//!
//! The parallel pass rides the audited executor in [`crate::sweep`] — this
//! module spawns no threads of its own — so chunk results are index-ordered
//! and worker-count-invariant like every other sweep.

use std::sync::Arc;

use smt_core::{FetchEngineKind, SimBuilder, SimConfig, SimStats, Simulator, Snapshot};
use smt_isa::{snap_mismatch, Diagnostic};
use smt_workloads::Program;

use crate::sweep::{sweep_indexed, Jobs};

/// A completed chunked run, with the verification evidence attached.
#[derive(Clone, Debug)]
pub struct ChunkedRun {
    /// Statistics accumulated by the *chunked* path (the last chunk's
    /// resumed simulator) — byte-identical to the monolithic run's stats.
    pub stats: SimStats,
    /// Cycles simulated by each chunk, in order; sums to the requested
    /// total.
    pub chunk_cycles: Vec<u64>,
    /// Chunk-boundary snapshots proven byte-identical between the chunked
    /// and monolithic runs (one per chunk: `N-1` interior boundaries plus
    /// the final state).
    pub verified_boundaries: usize,
    /// The final-state snapshot (identical from both paths) — reusable as a
    /// checkpoint for a longer resumed run.
    pub final_snapshot: Snapshot,
}

/// Splits `total_cycles` into `chunks` near-equal pieces, front-loading the
/// remainder so lengths differ by at most one cycle. `chunks` is clamped to
/// at least 1; the pieces always sum to `total_cycles`.
pub fn chunk_lengths(total_cycles: u64, chunks: usize) -> Vec<u64> {
    let n = (chunks.max(1)) as u64;
    (0..n)
        .map(|i| total_cycles / n + u64::from(i < total_cycles % n))
        .collect()
}

/// Runs `total_cycles` of simulation split into `chunks` pieces executed in
/// parallel from checkpoints, verifying that the chunked execution is
/// byte-identical to the monolithic one at every chunk boundary.
///
/// The serial checkpoint-generation pass simulates the full run once (so
/// chunking never changes *what* is simulated); the parallel pass then
/// restores each chunk independently on `jobs` workers and replays it. The
/// two passes must agree snapshot-for-snapshot.
///
/// # Errors
///
/// `E0018` when `chunks` is zero, the configuration fails to build, a chunk
/// fails to restore, or — the interesting case — a chunk's end state
/// diverges from the monolithic run's state at the same cycle.
pub fn run_chunked(
    programs: &[Arc<Program>],
    engine: FetchEngineKind,
    cfg: &SimConfig,
    total_cycles: u64,
    chunks: usize,
    jobs: Jobs,
) -> Result<ChunkedRun, Diagnostic> {
    if chunks == 0 {
        return Err(snap_mismatch(
            "chunks",
            "chunked execution needs at least one chunk",
        ));
    }
    let lens = chunk_lengths(total_cycles, chunks);

    // Serial pass: one monolithic run, snapshotting at every chunk start.
    let mut sim = SimBuilder::new_shared(programs.to_vec())
        .fetch_engine(engine)
        .config(cfg.clone())
        .build()
        .map_err(|e| snap_mismatch("build", format!("chunked run could not build: {e}")))?;
    let mut checkpoints: Vec<Snapshot> = Vec::with_capacity(chunks);
    for &len in &lens {
        checkpoints.push(sim.snapshot());
        sim.run_cycles(len);
    }
    let monolithic_end = sim.snapshot();
    let monolithic_stats = sim.stats().clone();

    // Parallel pass: restore every chunk from its checkpoint and replay it.
    let chunk_runs: Vec<Result<(Snapshot, SimStats), Diagnostic>> =
        sweep_indexed(chunks, jobs, |i| {
            let mut resumed = Simulator::restore(programs.to_vec(), cfg.clone(), &checkpoints[i])?;
            resumed.run_cycles(lens[i]);
            Ok((resumed.snapshot(), resumed.stats().clone()))
        });

    // Verify: chunk i must land exactly on chunk i+1's checkpoint, and the
    // last chunk on the monolithic run's final state.
    let mut verified = 0usize;
    let mut last_stats = monolithic_stats.clone();
    for (i, run) in chunk_runs.into_iter().enumerate() {
        let (end, stats) = run?;
        let expected = checkpoints.get(i + 1).unwrap_or(&monolithic_end);
        if end != *expected {
            return Err(snap_mismatch(
                "boundary",
                format!(
                    "chunk {i} of {chunks} ended {} bytes that differ from the \
                     monolithic state at the same cycle (snapshot format or \
                     determinism bug)",
                    end.len()
                ),
            ));
        }
        verified += 1;
        last_stats = stats;
    }
    if last_stats != monolithic_stats {
        return Err(snap_mismatch(
            "stats",
            "final chunk statistics differ from the monolithic run",
        ));
    }
    Ok(ChunkedRun {
        stats: last_stats,
        chunk_cycles: lens,
        verified_boundaries: verified,
        final_snapshot: monolithic_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_core::FetchPolicy;
    use smt_workloads::Workload;

    #[test]
    fn chunk_lengths_partition_the_total() {
        assert_eq!(chunk_lengths(10, 1), vec![10]);
        assert_eq!(chunk_lengths(10, 3), vec![4, 3, 3]);
        assert_eq!(chunk_lengths(9, 3), vec![3, 3, 3]);
        assert_eq!(chunk_lengths(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(chunk_lengths(7, 0), vec![7]);
        for (total, chunks) in [(120_000u64, 8usize), (1, 2), (0, 3)] {
            assert_eq!(chunk_lengths(total, chunks).iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn zero_chunks_is_a_diagnostic() {
        let programs = Workload::mix2().programs_shared(7).expect("builds");
        let err = run_chunked(
            &programs,
            FetchEngineKind::GshareBtb,
            &SimConfig::default(),
            100,
            0,
            Jobs::SERIAL,
        )
        .expect_err("zero chunks");
        assert_eq!(err.code, "E0018");
    }

    #[test]
    fn chunked_matches_monolithic_for_every_engine() {
        let programs = Workload::mix2().programs_shared(7).expect("builds");
        let cfg = SimConfig {
            fetch_policy: FetchPolicy::icount(2, 8),
            ..SimConfig::default()
        };
        for engine in FetchEngineKind::all_with_trace_cache() {
            let mut mono = SimBuilder::new_shared(programs.clone())
                .fetch_engine(engine)
                .config(cfg.clone())
                .build()
                .expect("builds");
            mono.run_cycles(6_000);
            let mono_stats = mono.stats().clone();

            for chunks in [2usize, 4] {
                let chunked = run_chunked(
                    &programs,
                    engine,
                    &cfg,
                    6_000,
                    chunks,
                    Jobs::new(2).expect("valid"),
                )
                .expect("chunked run verifies");
                assert_eq!(chunked.stats, mono_stats, "{engine} chunks={chunks}");
                assert_eq!(chunked.verified_boundaries, chunks, "{engine}");
                assert_eq!(chunked.chunk_cycles.iter().sum::<u64>(), 6_000);
                assert_eq!(chunked.final_snapshot, mono.snapshot(), "{engine}");
            }
        }
    }
}
