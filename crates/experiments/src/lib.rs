//! # smt-experiments — the paper's evaluation, regenerated
//!
//! One runner per table and figure of *"A Low-Complexity, High-Performance
//! Fetch Unit for Simultaneous Multithreading Processors"* (HPCA 2004):
//!
//! | artifact | function | binary |
//! |---|---|---|
//! | Table 1 | [`figures::table1`] | `cargo run -p smt-experiments --bin table1` |
//! | Table 2 | [`figures::table2`] | `table2` |
//! | Table 3 | [`figures::table3`] | `table3` |
//! | Figure 2 | [`figures::figure2`] | `figure2` |
//! | Figure 4 | [`figures::figure4`] | `figure4` |
//! | Figure 5 | [`figures::figure5`] | `figure5` |
//! | Figure 6 | [`figures::figure6`] | `figure6` |
//! | Figure 7 | [`figures::figure7`] | `figure7` |
//! | Figure 8 | [`figures::figure8`] | `figure8` |
//! | §3.3 numbers | [`figures::superscalar`] | `superscalar` |
//!
//! Beyond the paper: `policies` (ICOUNT vs BRCOUNT/MISSCOUNT/STALL/FLUSH
//! with fairness), `tracecache` (stream fetch vs a trace cache), and
//! `ablations` (FTQ depth, fetch-buffer size, block caps).
//!
//! `cargo run --release -p smt-experiments --bin all` regenerates everything
//! and writes a markdown report. Set `SMT_EXP_CYCLES` to change the
//! simulated length (default 120k measured cycles after 30k warmup).
//!
//! Sweeps run on a deterministic parallel executor ([`sweep`]): every
//! binary takes `--jobs N` (or the `SMT_JOBS` environment variable,
//! defaulting to the machine's available parallelism), and results are
//! bit-for-bit identical for any worker count. Set `SMT_SWEEP_REPORT=1` to
//! print per-cell timing/straggler reports to stderr.
//!
//! # Example
//!
//! ```
//! use smt_experiments::{figures, Jobs, RunLength};
//!
//! let fig2 = figures::figure2(RunLength::SMOKE, Jobs::SERIAL);
//! assert_eq!(fig2.results.len(), 2);
//! println!("{}", fig2.text);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod figures;
pub mod memo;
pub mod report;
pub mod runner;
pub mod sweep;

pub use chunked::{chunk_lengths, run_chunked, ChunkedRun};
pub use figures::{all, Experiment};
pub use memo::{
    cell_key, decode_result, encode_result, memo_snapshot, run_matrix_sweep_memoized, run_memoized,
    run_memoized_with_config, set_memo_dir, warm_snapshot, BoundedCache, CacheCounters,
    CacheOutcome, CacheSnapshot, OnCell,
};
pub use report::{
    render_grouped_bars, render_markdown, render_stall_breakdown, render_sweep_stats, render_table,
    Metric,
};
pub use runner::{
    preflight, preflight_default, run, run_matrix, run_matrix_parallel, run_matrix_sweep,
    warm_start_enabled, RunLength, RunResult, EXP_SEED,
};
pub use sweep::{report_level, sweep_cells, sweep_indexed, CellStat, Jobs, JobsError, Sweep};
