//! Text rendering of experiment results: aligned tables and ASCII bar
//! charts shaped like the paper's grouped-bar figures.

use crate::memo::CacheOutcome;
use crate::runner::RunResult;
use crate::sweep::CellStat;

/// Which metric a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Fetch throughput, instructions per fetch cycle (the "(a)" panels).
    Ipfc,
    /// Commit throughput, instructions per cycle (the "(b)" panels).
    Ipc,
}

impl Metric {
    /// The metric's value in a result.
    pub fn of(self, r: &RunResult) -> f64 {
        match self {
            Metric::Ipfc => r.ipfc,
            Metric::Ipc => r.ipc,
        }
    }

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Ipfc => "Fetch Throughput (IPFC)",
            Metric::Ipc => "Commit Throughput (IPC)",
        }
    }
}

/// Renders a grouped-bar panel like the paper's figures: rows grouped by
/// `(workload, policy)`, one bar per engine.
pub fn render_grouped_bars(title: &str, results: &[RunResult], metric: Metric) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{}\n", metric.label()));
    let max = results
        .iter()
        .map(|r| metric.of(r))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let scale = 44.0 / max;
    let mut last_group = String::new();
    for r in results {
        let group = format!("{} {}", r.workload, r.policy);
        if group != last_group {
            out.push_str(&format!("  {group}\n"));
            last_group = group;
        }
        let v = metric.of(r);
        let bar = "#".repeat((v * scale).round() as usize);
        out.push_str(&format!("    {:<11} {:>5.2} |{bar}\n", r.engine, v));
    }
    out
}

/// Renders a plain aligned table of the given columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders results as a markdown table with IPFC and IPC columns
/// (for EXPERIMENTS.md).
pub fn render_markdown(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("| workload | policy | engine | IPFC | IPC | branch acc | wrong-path |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | {:.1}% | {:.1}% |\n",
            r.workload,
            r.policy,
            r.engine,
            r.ipfc,
            r.ipc,
            r.branch_accuracy * 100.0,
            r.wrong_path * 100.0
        ));
    }
    out
}

/// Renders a sweep's per-cell observability stats as an aligned table,
/// slowest cell first, so stragglers surface at the top. The footer line
/// sums the simulated work and reports how many workers shared it.
///
/// Wall-times and worker ids are machine- and schedule-dependent
/// diagnostics: they belong in progress reports on stderr, never in golden
/// snapshots.
pub fn render_sweep_stats(title: &str, stats: &[CellStat]) -> String {
    let mut by_wall: Vec<&CellStat> = stats.iter().collect();
    by_wall.sort_by(|a, b| b.wall.cmp(&a.wall).then(a.index.cmp(&b.index)));
    let rows: Vec<Vec<String>> = by_wall
        .iter()
        .map(|s| {
            let skip_rate = if s.sim_cycles == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", s.skipped as f64 / s.sim_cycles as f64 * 100.0)
            };
            let cache = match s.cache {
                None => "-".to_string(),
                Some(outcome) => outcome.to_string(),
            };
            vec![
                s.label.clone(),
                s.sim_cycles.to_string(),
                skip_rate,
                cache,
                format!("{:.1}", s.wall.as_secs_f64() * 1e3),
                s.worker.to_string(),
            ]
        })
        .collect();
    let mut workers: Vec<usize> = stats.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    let total_wall: f64 = stats.iter().map(|s| s.wall.as_secs_f64()).sum();
    let mut out = format!("{title}: sweep of {} cells\n", stats.len());
    out.push_str(&render_table(
        &["cell", "sim-cycles", "skip %", "cache", "wall ms", "worker"],
        &rows,
    ));
    out.push_str(&format!(
        "{} worker(s), {:.1} ms total cell time\n",
        workers.len(),
        total_wall * 1e3
    ));
    let hits = stats
        .iter()
        .filter(|s| s.cache == Some(CacheOutcome::Hit))
        .count();
    let misses = stats
        .iter()
        .filter(|s| s.cache == Some(CacheOutcome::Miss))
        .count();
    if hits + misses > 0 {
        let memo = crate::memo::memo_snapshot();
        out.push_str(&format!(
            "memo cache: {hits} hit(s), {misses} miss(es) this job; \
             {} entr(ies) held (cap {}), {} evicted lifetime\n",
            memo.len, memo.cap, memo.counters.evictions
        ));
    }
    out
}

/// Renders the per-thread stall attribution of a run as an aligned table:
/// one row per thread, each bucket as a percentage of measured cycles. The
/// buckets partition every cycle (the core charges exactly one cause per
/// thread per cycle), so each row sums to 100% up to rounding; `useful` is
/// the unstalled residual.
pub fn render_stall_breakdown(title: &str, stats: &smt_core::SimStats, threads: usize) -> String {
    let pct = |v: u64| -> String {
        if stats.cycles == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", v as f64 / stats.cycles as f64 * 100.0)
        }
    };
    let s = &stats.stalls;
    let rows: Vec<Vec<String>> = (0..threads)
        .map(|t| {
            vec![
                format!("T{t}"),
                stats.committed[t].to_string(),
                pct(s.icache_miss[t]),
                pct(s.bank_conflict[t]),
                pct(s.fetch_starved[t]),
                pct(s.rob_full[t]),
                pct(s.issue_width[t]),
                pct(s.dcache_miss[t]),
                pct(s.residual[t]),
            ]
        })
        .collect();
    let mut out = format!(
        "{title}: stall breakdown over {} cycles (%)\n",
        stats.cycles
    );
    out.push_str(&render_table(
        &[
            "thread",
            "committed",
            "icache",
            "bank",
            "starved",
            "rob-full",
            "issue",
            "dcache",
            "useful",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "skipped {} of {} cycles (mem-wait {}, issue-wait {}, ftq-wait {}, policy-idle {})\n",
        stats.skipped_cycles(),
        stats.cycles,
        stats.skip_mem_wait,
        stats.skip_issue_wait,
        stats.skip_ftq_wait,
        stats.skip_policy_idle,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn result(engine: &str, ipfc: f64, ipc: f64) -> RunResult {
        RunResult {
            workload: "2_MIX".into(),
            engine: engine.into(),
            policy: "ICOUNT.1.8".into(),
            ipfc,
            ipc,
            branch_accuracy: 0.94,
            wrong_path: 0.1,
            frac_ge4: 0.5,
            frac_ge8: 0.3,
            frac_eq8: 0.3,
            frac_ge16: 0.0,
            per_thread_ipc: vec![ipc / 2.0, ipc / 2.0],
            fairness: 1.0,
            skipped_cycles: 0,
        }
    }

    #[test]
    fn bars_scale_to_max() {
        let rs = vec![result("gshare+BTB", 4.0, 2.0), result("stream", 8.0, 3.0)];
        let s = render_grouped_bars("Figure X", &rs, Metric::Ipfc);
        assert!(s.contains("Figure X"));
        assert!(s.contains("gshare+BTB"));
        // The max bar is 44 chars; the 4.0 bar is half.
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        let gshare = lines.iter().find(|l| l.contains("gshare")).unwrap();
        let stream = lines.iter().find(|l| l.contains("stream")).unwrap();
        assert_eq!(count(stream), 44);
        assert_eq!(count(gshare), 22);
    }

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn stall_breakdown_rows_cover_requested_threads() {
        let mut stats = smt_core::SimStats {
            cycles: 1_000,
            ..Default::default()
        };
        stats.committed[0] = 1_500;
        stats.committed[1] = 500;
        stats.stalls.dcache_miss[0] = 250;
        stats.stalls.residual[0] = 750;
        stats.stalls.rob_full[1] = 1_000;
        stats.skip_mem_wait = 180;
        stats.skip_policy_idle = 20;
        let s = render_stall_breakdown("2_MIX / stream / ICOUNT.2.8", &stats, 2);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("1000 cycles"));
        // Title + header + rule + one row per thread + skip footer, nothing
        // for inactive threads.
        assert_eq!(lines.len(), 6);
        let t0 = lines[3];
        assert!(t0.starts_with("T0"), "{t0:?}");
        assert!(t0.contains("25.0") && t0.contains("75.0"), "{t0:?}");
        let t1 = lines[4];
        assert!(t1.contains("100.0"), "{t1:?}");
        assert_eq!(
            lines[5],
            "skipped 200 of 1000 cycles (mem-wait 180, issue-wait 0, \
             ftq-wait 0, policy-idle 20)"
        );
    }

    #[test]
    fn stall_breakdown_handles_zero_cycles() {
        let stats = smt_core::SimStats::default();
        let s = render_stall_breakdown("empty", &stats, 1);
        assert!(s.lines().nth(3).unwrap().contains('-'));
    }

    #[test]
    fn sweep_stats_sort_stragglers_first() {
        let stat = |index: usize, label: &str, ms: u64, worker: usize| CellStat {
            index,
            label: label.into(),
            worker,
            sim_cycles: 10_000,
            skipped: 2_500,
            cache: None,
            wall: Duration::from_millis(ms),
        };
        let s = render_sweep_stats(
            "figureX",
            &[
                stat(0, "fast-cell", 2, 0),
                stat(1, "slow-cell", 50, 1),
                stat(2, "mid-cell", 10, 0),
            ],
        );
        assert!(s.starts_with("figureX: sweep of 3 cells"));
        let slow = s.find("slow-cell").unwrap();
        let mid = s.find("mid-cell").unwrap();
        let fast = s.find("fast-cell").unwrap();
        assert!(slow < mid && mid < fast, "not straggler-first:\n{s}");
        assert!(s.contains("2 worker(s)"));
        assert!(s.contains("10000"));
        assert!(s.contains("skip %"), "missing skip-rate column:\n{s}");
        assert!(s.contains("25.0"), "missing skip rate value:\n{s}");
        assert!(s.contains("cache"), "missing cache column:\n{s}");
        assert!(
            !s.contains("memo cache:"),
            "no cache footer for uncached sweeps:\n{s}"
        );
    }

    #[test]
    fn sweep_stats_surface_cache_outcomes() {
        let stat = |index: usize, cache: Option<CacheOutcome>| CellStat {
            index,
            label: format!("cell-{index}"),
            worker: 0,
            sim_cycles: 10_000,
            skipped: 0,
            cache,
            wall: Duration::from_millis(index as u64 + 1),
        };
        let s = render_sweep_stats(
            "memoized",
            &[
                stat(0, Some(CacheOutcome::Hit)),
                stat(1, Some(CacheOutcome::Hit)),
                stat(2, Some(CacheOutcome::Miss)),
            ],
        );
        assert!(s.contains("hit"), "{s}");
        assert!(s.contains("miss"), "{s}");
        assert!(
            s.contains("memo cache: 2 hit(s), 1 miss(es) this job"),
            "missing per-job cache footer:\n{s}"
        );
    }

    #[test]
    fn markdown_has_one_row_per_result() {
        let rs = vec![result("gshare+BTB", 4.0, 2.0), result("stream", 8.0, 3.0)];
        let md = render_markdown(&rs);
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("| 2_MIX | ICOUNT.1.8 | stream | 8.00 | 3.00 |"));
    }
}
