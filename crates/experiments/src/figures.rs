//! One experiment definition per table and figure of the paper.

use smt_core::{FetchEngineKind, FetchPolicy};
use smt_workloads::{BenchmarkProfile, Walker, Workload, WorkloadClass};

use crate::report::{
    render_grouped_bars, render_markdown, render_sweep_stats, render_table, Metric,
};
use crate::runner::{run, run_matrix_sweep, RunLength, RunResult, EXP_SEED};
use crate::sweep::{progress_report_enabled, sweep_cells, CellStat, Jobs};

/// A completed experiment: its identity, rendered text, and raw results.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Paper artifact id (`"figure5"`, `"table1"`, …).
    pub id: &'static str,
    /// What the paper's artifact shows.
    pub caption: &'static str,
    /// Human-readable report (tables / ASCII bars).
    pub text: String,
    /// Markdown fragment for EXPERIMENTS.md.
    pub markdown: String,
    /// Raw results, when the experiment runs simulations.
    pub results: Vec<RunResult>,
}

fn experiment(
    id: &'static str,
    caption: &'static str,
    results: Vec<RunResult>,
    panels: &[Metric],
) -> Experiment {
    let mut text = String::new();
    for (panel, &m) in ('a'..='z').zip(panels.iter()) {
        text.push_str(&render_grouped_bars(
            &format!("{id}({panel}): {caption}"),
            &results,
            m,
        ));
        text.push('\n');
    }
    Experiment {
        id,
        caption,
        markdown: render_markdown(&results),
        text,
        results,
    }
}

/// All three fetch engines, paper order.
fn engines() -> [FetchEngineKind; 3] {
    FetchEngineKind::all()
}

/// Prints a sweep's per-cell timing report to stderr when
/// `SMT_SWEEP_REPORT` is set (progress/straggler visibility; never mixed
/// into the experiment's own stdout artifact).
fn report_progress(id: &str, stats: &[CellStat]) {
    if progress_report_enabled() {
        eprintln!("{}", render_sweep_stats(id, stats));
    }
}

/// Runs a figure's matrix on `jobs` workers, reporting sweep progress.
fn matrix(
    id: &str,
    workloads: &[Workload],
    engines: &[FetchEngineKind],
    policies: &[FetchPolicy],
    len: RunLength,
    jobs: Jobs,
) -> Vec<RunResult> {
    let sweep = run_matrix_sweep(workloads, engines, policies, len, jobs);
    report_progress(id, &sweep.stats);
    sweep.results
}

/// **Table 1** — benchmark characteristics: measured dynamic average
/// basic-block size of every clone vs the paper's target.
///
/// Each benchmark's 320k-instruction walker measurement is an independent
/// cell, so the table sweeps in parallel like the figures.
pub fn table1(jobs: Jobs) -> Experiment {
    let profiles = BenchmarkProfile::all();
    let sweep = sweep_cells(
        profiles.len(),
        jobs,
        320_000,
        |i| profiles[i].name.to_string(),
        |i| {
            let p = &profiles[i];
            let progs = Workload::custom("solo", WorkloadClass::Ilp, &[p.name])
                .expect("valid name") // lint:allow(no-panic): compiled-in profile names are valid
                .programs(EXP_SEED)
                .expect("valid"); // lint:allow(no-panic): single-benchmark workloads always build
            let mut w = Walker::new(progs[0].clone(), 0);
            let _ = w.measure(20_000);
            w.measure(300_000)
        },
    );
    report_progress("table1", &sweep.stats);
    let mut rows = Vec::new();
    let mut md = String::from(
        "| benchmark | paper avg BB | clone avg BB | taken rate | avg stream |\n|---|---|---|---|---|\n",
    );
    for (p, s) in profiles.iter().zip(&sweep.results) {
        rows.push(vec![
            p.name.to_string(),
            format!("{:.2}", p.avg_bb_size),
            format!("{:.2}", s.avg_bb_size()),
            format!("{:.2}", s.taken_rate()),
            format!("{:.1}", s.avg_stream_len()),
        ]);
        md.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.1} |\n",
            p.name,
            p.avg_bb_size,
            s.avg_bb_size(),
            s.taken_rate(),
            s.avg_stream_len()
        ));
    }
    Experiment {
        id: "table1",
        caption:
            "SPECint2000 characteristics: paper's avg basic-block size vs the synthetic clones",
        text: render_table(
            &[
                "benchmark",
                "paper avg BB",
                "clone avg BB",
                "taken rate",
                "avg stream",
            ],
            &rows,
        ),
        markdown: md,
        results: Vec::new(),
    }
}

/// **Table 2** — the multithreaded workloads.
pub fn table2() -> Experiment {
    let rows: Vec<Vec<String>> = Workload::all_table2()
        .iter()
        .map(|w| {
            vec![
                w.name().to_string(),
                w.class().to_string(),
                w.benchmarks().join(", "),
            ]
        })
        .collect();
    let mut md = String::from("| workload | class | benchmarks |\n|---|---|---|\n");
    for r in &rows {
        md.push_str(&format!("| {} | {} | {} |\n", r[0], r[1], r[2]));
    }
    Experiment {
        id: "table2",
        caption: "Multithreaded workloads",
        text: render_table(&["workload", "class", "benchmarks"], &rows),
        markdown: md,
        results: Vec::new(),
    }
}

/// **Table 3** — simulation parameters in force.
pub fn table3() -> Experiment {
    let c = smt_core::SimConfig::default();
    let rows: Vec<Vec<String>> = vec![
        vec!["Fetch width".into(), "8/16 instr.".into()],
        vec!["Fetch policy".into(), "ICOUNT".into()],
        vec!["Fetch buffer".into(), format!("{} instr.", c.fetch_buffer)],
        vec![
            "Dec. & Ren. width".into(),
            format!("{} instr.", c.decode_width),
        ],
        vec!["Gshare".into(), "64K-entry, 16 bits history".into()],
        vec!["Gskew".into(), "3 x 32K-entry, 15 bits history".into()],
        vec!["BTB/FTB".into(), "2K-entry, 4-way".into()],
        vec![
            "Stream predictor".into(),
            "1K-entry,4w + 4K-entry,4w; DOLC 16-2-4-10".into(),
        ],
        vec!["RAS (per thread)".into(), "64-entry".into()],
        vec!["FTQ (per thread)".into(), format!("{}-entry", c.ftq_depth)],
        vec![
            "Functional units".into(),
            format!("{} int, {} ld/st, {} fp", c.fu_int, c.fu_ls, c.fu_fp),
        ],
        vec![
            "Instruction queues".into(),
            format!("{}-entry int/ld-st/fp", c.iq_int),
        ],
        vec!["Reorder buffer".into(), format!("{}-entry", c.rob_size)],
        vec![
            "Physical registers".into(),
            format!("{} int + {} fp", c.regs_int, c.regs_fp),
        ],
        vec![
            "L1 I-cache".into(),
            "32KB, 2-way, 8 banks, 64B lines".into(),
        ],
        vec![
            "L1 D-cache".into(),
            "32KB, 2-way, 8 banks, 64B lines".into(),
        ],
        vec!["L2 cache".into(), "1MB, 2-way, 8 banks, 10 cyc.".into()],
        vec!["TLB".into(), "48-entry I + 128-entry D".into()],
        vec!["Main memory".into(), "100 cycles".into()],
    ];
    let mut md = String::from("| resource | value |\n|---|---|\n");
    for r in &rows {
        md.push_str(&format!("| {} | {} |\n", r[0], r[1]));
    }
    Experiment {
        id: "table3",
        caption: "Simulation parameters (Table 3)",
        text: render_table(&["resource", "value"], &rows),
        markdown: md,
        results: Vec::new(),
    }
}

/// **Figure 2** — fetch throughput of gshare+BTB fetching from one thread
/// (`1.8` vs `1.16`) on gzip–twolf, plus the §3.1 width distributions.
pub fn figure2(len: RunLength, jobs: Jobs) -> Experiment {
    let results = matrix(
        "figure2",
        &[Workload::mix2()],
        &[FetchEngineKind::GshareBtb],
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(1, 16)],
        len,
        jobs,
    );
    let mut e = experiment(
        "figure2",
        "gshare+BTB IPFC with ICOUNT.1.8 / ICOUNT.1.16 (gzip-twolf)",
        results,
        &[Metric::Ipfc],
    );
    e.text.push_str(&distribution_notes(&e.results));
    e
}

/// **Figure 4** — fetch throughput fetching from two threads
/// (`2.8`, `2.16`) against the Figure 2 single-thread results.
pub fn figure4(len: RunLength, jobs: Jobs) -> Experiment {
    let results = matrix(
        "figure4",
        &[Workload::mix2()],
        &[FetchEngineKind::GshareBtb],
        &[
            FetchPolicy::icount(1, 8),
            FetchPolicy::icount(2, 8),
            FetchPolicy::icount(1, 16),
            FetchPolicy::icount(2, 16),
        ],
        len,
        jobs,
    );
    let mut e = experiment(
        "figure4",
        "gshare+BTB IPFC fetching from up to two threads (gzip-twolf)",
        results,
        &[Metric::Ipfc],
    );
    e.text.push_str(&distribution_notes(&e.results));
    e
}

fn distribution_notes(results: &[RunResult]) -> String {
    let mut s = String::from("fetch-width distribution (fraction of fetch cycles):\n");
    for r in results {
        s.push_str(&format!(
            "  {:<11} {:>11}: >=4: {:4.0}%  =8: {:4.0}%  >=8: {:4.0}%  >=16: {:4.0}%\n",
            r.engine,
            r.policy,
            r.frac_ge4 * 100.0,
            r.frac_eq8 * 100.0,
            r.frac_ge8 * 100.0,
            r.frac_ge16 * 100.0
        ));
    }
    s
}

/// **Figure 5** — ILP workloads, `1.8` vs `2.8`, all three engines:
/// (a) IPFC, (b) IPC.
pub fn figure5(len: RunLength, jobs: Jobs) -> Experiment {
    let results = matrix(
        "figure5",
        &Workload::ilp_suite(),
        &engines(),
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)],
        len,
        jobs,
    );
    experiment(
        "figure5",
        "ICOUNT.1.8 vs ICOUNT.2.8, ILP workloads",
        results,
        &[Metric::Ipfc, Metric::Ipc],
    )
}

/// **Figure 6** — ILP workloads, `2.8` vs `1.16` vs `2.16`.
pub fn figure6(len: RunLength, jobs: Jobs) -> Experiment {
    let results = matrix(
        "figure6",
        &Workload::ilp_suite(),
        &engines(),
        &[
            FetchPolicy::icount(2, 8),
            FetchPolicy::icount(1, 16),
            FetchPolicy::icount(2, 16),
        ],
        len,
        jobs,
    );
    experiment(
        "figure6",
        "ICOUNT.1.16 vs ICOUNT.2.X, ILP workloads",
        results,
        &[Metric::Ipfc, Metric::Ipc],
    )
}

/// **Figure 7** — memory-bounded workloads (MIX & MEM), `1.8` vs `2.8`.
pub fn figure7(len: RunLength, jobs: Jobs) -> Experiment {
    let results = matrix(
        "figure7",
        &Workload::mem_suite(),
        &engines(),
        &[FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)],
        len,
        jobs,
    );
    experiment(
        "figure7",
        "ICOUNT.1.8 vs ICOUNT.2.8, memory-bounded workloads",
        results,
        &[Metric::Ipfc, Metric::Ipc],
    )
}

/// **Figure 8** — memory-bounded workloads, `1.8` vs `1.16` vs `2.16`.
pub fn figure8(len: RunLength, jobs: Jobs) -> Experiment {
    let results = matrix(
        "figure8",
        &Workload::mem_suite(),
        &engines(),
        &[
            FetchPolicy::icount(1, 8),
            FetchPolicy::icount(1, 16),
            FetchPolicy::icount(2, 16),
        ],
        len,
        jobs,
    );
    experiment(
        "figure8",
        "ICOUNT.1.16 vs ICOUNT.1.8 and ICOUNT.2.16, memory-bounded workloads",
        results,
        &[Metric::Ipfc, Metric::Ipc],
    )
}

/// **§3.3 superscalar comparison** — each benchmark alone (one thread),
/// all three engines: the front-end comparison the paper cites from its
/// earlier work (gskew+FTB ≈ +5% IPC over gshare+BTB, stream ≈ +11%).
pub fn superscalar(len: RunLength, jobs: Jobs) -> Experiment {
    // One cell per (benchmark, engine), benchmark outermost — the same
    // stable order the serial loop produced.
    let profiles = BenchmarkProfile::all();
    let workloads: Vec<Workload> = profiles
        .iter()
        .map(|p| {
            Workload::custom("1_".to_string() + p.name, WorkloadClass::Ilp, &[p.name])
                .expect("valid") // lint:allow(no-panic): compiled-in profile names are valid
        })
        .collect();
    let cells: Vec<(usize, FetchEngineKind)> = (0..profiles.len())
        .flat_map(|pi| engines().into_iter().map(move |e| (pi, e)))
        .collect();
    let sweep = sweep_cells(
        cells.len(),
        jobs,
        len.measure_cycles,
        |i| {
            let (pi, e) = cells[i];
            format!("{} {} ICOUNT.1.16", profiles[pi].name, e)
        },
        |i| {
            let (pi, e) = cells[i];
            let mut r = run(&workloads[pi], e, FetchPolicy::icount(1, 16), len);
            r.workload = profiles[pi].name.to_string();
            r
        },
    );
    report_progress("superscalar", &sweep.stats);
    let results = sweep.results;
    // Geometric-mean speedups over gshare+BTB.
    let mut text = render_grouped_bars(
        "superscalar: single-thread IPC per front-end (ICOUNT.1.16)",
        &results,
        Metric::Ipc,
    );
    let gm = |engine: &str| -> f64 {
        let ratios: Vec<f64> = results
            .chunks(3)
            .filter_map(|c| {
                let base = c.iter().find(|r| r.engine == "gshare+BTB")?.ipc;
                let x = c.iter().find(|r| r.engine == engine)?.ipc;
                (base > 0.0).then_some(x / base)
            })
            .collect();
        let prod: f64 = ratios.iter().map(|r| r.ln()).sum();
        (prod / ratios.len().max(1) as f64).exp()
    };
    text.push_str(&format!(
        "\ngeomean IPC vs gshare+BTB: gskew+FTB {:+.1}%  stream {:+.1}%\n(paper: gskew+FTB +5%, stream +11%)\n",
        (gm("gskew+FTB") - 1.0) * 100.0,
        (gm("stream") - 1.0) * 100.0
    ));
    Experiment {
        id: "superscalar",
        caption: "Single-thread front-end comparison (paper §3.3)",
        markdown: render_markdown(&results),
        text,
        results,
    }
}

/// All experiments in paper order, sweeping on `jobs` workers.
pub fn all(len: RunLength, jobs: Jobs) -> Vec<Experiment> {
    vec![
        table1(jobs),
        table2(),
        table3(),
        figure2(len, jobs),
        figure4(len, jobs),
        figure5(len, jobs),
        figure6(len, jobs),
        figure7(len, jobs),
        figure8(len, jobs),
        superscalar(len, jobs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_simulation() {
        let t1 = table1(Jobs::SERIAL);
        assert!(t1.text.contains("gzip"));
        assert!(t1.text.contains("11.02"));
        let t2 = table2();
        assert!(t2.text.contains("2_MIX"));
        assert_eq!(t2.text.lines().count(), 2 + 10);
        let t3 = table3();
        assert!(t3.text.contains("256-entry"));
        assert!(t3.markdown.contains("| Main memory | 100 cycles |"));
    }

    #[test]
    fn table1_is_jobs_invariant() {
        let serial = table1(Jobs::SERIAL);
        let parallel = table1(Jobs::new(4).expect("valid"));
        assert_eq!(serial.text, parallel.text);
        assert_eq!(serial.markdown, parallel.markdown);
    }

    #[test]
    fn figure2_runs_smoke() {
        let e = figure2(RunLength::SMOKE, Jobs::SERIAL);
        assert_eq!(e.results.len(), 2);
        assert!(e.text.contains("ICOUNT.1.8"));
        assert!(e.text.contains("fetch-width distribution"));
        assert!(e.results.iter().all(|r| r.ipfc > 0.0));
    }

    #[test]
    fn figure5_covers_ilp_suite() {
        let e = figure5(RunLength::SMOKE, Jobs::new(2).expect("valid"));
        // 4 workloads × 2 policies × 3 engines.
        assert_eq!(e.results.len(), 24);
        let names: std::collections::BTreeSet<_> =
            e.results.iter().map(|r| r.workload.clone()).collect();
        assert_eq!(names.len(), 4);
        assert!(e.text.contains("(IPFC)"));
        assert!(e.text.contains("(IPC)"));
    }
}
