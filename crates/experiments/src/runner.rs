//! Running simulator configurations and collecting results.

use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder, SimConfig, SimStats};
use smt_workloads::Workload;

/// How long to simulate each configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Cycles simulated before statistics start (predictor/cache warmup).
    pub warmup_cycles: u64,
    /// Cycles measured after warmup.
    pub measure_cycles: u64,
}

impl RunLength {
    /// The default evaluation length: 30k warmup + 120k measured cycles.
    pub const DEFAULT: RunLength = RunLength {
        warmup_cycles: 30_000,
        measure_cycles: 120_000,
    };

    /// A short length for smoke tests.
    pub const SMOKE: RunLength = RunLength {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
    };

    /// Reads an override from `SMT_EXP_CYCLES` (measured cycles; warmup is
    /// a quarter of it), falling back to [`RunLength::DEFAULT`].
    pub fn from_env() -> RunLength {
        match std::env::var("SMT_EXP_CYCLES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(c) if c > 0 => RunLength {
                warmup_cycles: c / 4,
                measure_cycles: c,
            },
            _ => RunLength::DEFAULT,
        }
    }
}

/// The outcome of one simulated configuration.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name (e.g. `"4_MIX"`).
    pub workload: String,
    /// Fetch engine name.
    pub engine: String,
    /// Fetch policy name (e.g. `"ICOUNT.1.16"`).
    pub policy: String,
    /// Fetch throughput (instructions per fetch cycle).
    pub ipfc: f64,
    /// Commit throughput (instructions per cycle).
    pub ipc: f64,
    /// Conditional direction-prediction accuracy.
    pub branch_accuracy: f64,
    /// Fraction of fetched instructions on the wrong path.
    pub wrong_path: f64,
    /// Fraction of fetch cycles delivering ≥ 4 instructions.
    pub frac_ge4: f64,
    /// Fraction of fetch cycles delivering ≥ 8 instructions.
    pub frac_ge8: f64,
    /// Fraction of fetch cycles delivering exactly 8 instructions.
    pub frac_eq8: f64,
    /// Fraction of fetch cycles delivering ≥ 16 instructions.
    pub frac_ge16: f64,
    /// Per-thread IPC, in workload thread order.
    pub per_thread_ipc: Vec<f64>,
    /// Fairness: min over max of per-thread IPC (1 = perfectly balanced,
    /// → 0 when some thread starves).
    pub fairness: f64,
}

impl RunResult {
    fn from_stats(
        workload: &Workload,
        engine: FetchEngineKind,
        policy: FetchPolicy,
        s: &SimStats,
    ) -> Self {
        RunResult {
            workload: workload.name().to_string(),
            engine: engine.to_string(),
            policy: policy.to_string(),
            ipfc: s.ipfc(),
            ipc: s.ipc(),
            branch_accuracy: s.branch_accuracy(),
            wrong_path: s.wrong_path_fraction(),
            frac_ge4: s.distribution.frac_at_least(4),
            frac_ge8: s.distribution.frac_at_least(8),
            frac_eq8: s.distribution.frac_exactly(8),
            frac_ge16: s.distribution.frac_at_least(16),
            per_thread_ipc: (0..workload.num_threads())
                .map(|t| s.committed[t] as f64 / s.cycles.max(1) as f64)
                .collect(),
            fairness: {
                let per: Vec<f64> = (0..workload.num_threads())
                    .map(|t| s.committed[t] as f64 / s.cycles.max(1) as f64)
                    .collect();
                let max = per.iter().cloned().fold(0.0, f64::max);
                let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
                if max > 0.0 {
                    min / max
                } else {
                    0.0
                }
            },
        }
    }
}

/// The seed every experiment uses (reproducibility).
pub const EXP_SEED: u64 = 2004;

/// Validates `cfg` for `threads` hardware contexts, printing every
/// diagnostic (warnings included) to stderr.
///
/// Exits the process with status 2 when the configuration has errors:
/// experiment binaries run this — directly and through [`run`] /
/// [`run_with_config`] — before any cycle is simulated, so a bad
/// configuration fails fast with stable diagnostic codes instead of
/// producing garbage numbers.
pub fn preflight(cfg: &SimConfig, threads: usize) {
    let diags = cfg.validate_for_threads(threads);
    for d in &diags {
        eprintln!("{d}");
    }
    if smt_core::has_errors(&diags) {
        eprintln!("smt-experiments: configuration rejected by validator");
        std::process::exit(2);
    }
}

/// [`preflight`] for the Table 3 default configuration at every hardware
/// thread count — the one-line sanity gate each experiment binary runs
/// first.
pub fn preflight_default() {
    for threads in 1..=smt_isa::MAX_THREADS {
        preflight(&SimConfig::default(), threads);
    }
}

/// Runs one `(workload, engine, policy)` configuration.
///
/// # Panics
///
/// Panics if the workload's programs cannot be built (impossible for the
/// built-in Table 2 workloads).
pub fn run(
    workload: &Workload,
    engine: FetchEngineKind,
    policy: FetchPolicy,
    len: RunLength,
) -> RunResult {
    let cfg = SimConfig {
        fetch_policy: policy,
        ..SimConfig::default()
    };
    preflight(&cfg, workload.num_threads());
    let programs = workload
        .programs(EXP_SEED)
        .expect("table 2 workloads always build"); // lint:allow(no-panic)
    let mut sim = SimBuilder::new(programs)
        .fetch_engine(engine)
        .fetch_policy(policy)
        .build()
        .expect("1..=8 threads and a validated config"); // lint:allow(no-panic)
    sim.run_cycles(len.warmup_cycles);
    sim.reset_stats();
    let stats = sim.run_cycles(len.measure_cycles);
    RunResult::from_stats(workload, engine, policy, &stats)
}

/// Runs one configuration with a fully custom [`smt_core::SimConfig`].
///
/// # Panics
///
/// Panics if the workload's programs cannot be built.
pub fn run_with_config(
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: smt_core::SimConfig,
    len: RunLength,
) -> RunResult {
    let policy = cfg.fetch_policy;
    preflight(&cfg, workload.num_threads());
    let programs = workload
        .programs(EXP_SEED)
        .expect("table 2 workloads always build"); // lint:allow(no-panic)
    let mut sim = SimBuilder::new(programs)
        .fetch_engine(engine)
        .config(cfg)
        .build()
        .expect("1..=8 threads and a validated config"); // lint:allow(no-panic)
    sim.run_cycles(len.warmup_cycles);
    sim.reset_stats();
    let stats = sim.run_cycles(len.measure_cycles);
    RunResult::from_stats(workload, engine, policy, &stats)
}

/// Runs the full cross product `workloads × engines × policies`.
pub fn run_matrix(
    workloads: &[Workload],
    engines: &[FetchEngineKind],
    policies: &[FetchPolicy],
    len: RunLength,
) -> Vec<RunResult> {
    let mut out = Vec::new();
    for w in workloads {
        for &p in policies {
            for &e in engines {
                out.push(run(w, e, p, len));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_sane_metrics() {
        let r = run(
            &Workload::mix2(),
            FetchEngineKind::GshareBtb,
            FetchPolicy::icount(1, 8),
            RunLength::SMOKE,
        );
        assert!(r.ipc > 0.0 && r.ipc <= 8.0, "ipc {}", r.ipc);
        assert!(r.ipfc > 0.0 && r.ipfc <= 8.0, "ipfc {}", r.ipfc);
        assert!(r.branch_accuracy > 0.5);
        assert_eq!(r.workload, "2_MIX");
        assert_eq!(r.policy, "ICOUNT.1.8");
    }

    #[test]
    fn matrix_covers_cross_product() {
        let rs = run_matrix(
            &[Workload::mix2()],
            &[FetchEngineKind::GshareBtb, FetchEngineKind::Stream],
            &[FetchPolicy::icount(1, 8)],
            RunLength::SMOKE,
        );
        assert_eq!(rs.len(), 2);
        assert_ne!(rs[0].engine, rs[1].engine);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(
            &Workload::ilp2(),
            FetchEngineKind::Stream,
            FetchPolicy::icount(2, 8),
            RunLength::SMOKE,
        );
        let b = run(
            &Workload::ilp2(),
            FetchEngineKind::Stream,
            FetchPolicy::icount(2, 8),
            RunLength::SMOKE,
        );
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.ipfc, b.ipfc);
    }
}
