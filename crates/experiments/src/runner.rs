//! Running simulator configurations and collecting results.

use std::sync::Arc;

use smt_core::{CellKey, FetchEngineKind, FetchPolicy, SimBuilder, SimConfig, SimStats, Simulator};
use smt_workloads::{Program, Workload};

use crate::sweep::{sweep_cells, Jobs, Sweep};

/// How long to simulate each configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Cycles simulated before statistics start (predictor/cache warmup).
    pub warmup_cycles: u64,
    /// Cycles measured after warmup.
    pub measure_cycles: u64,
}

impl RunLength {
    /// The default evaluation length: 30k warmup + 120k measured cycles.
    pub const DEFAULT: RunLength = RunLength {
        warmup_cycles: 30_000,
        measure_cycles: 120_000,
    };

    /// A short length for smoke tests.
    pub const SMOKE: RunLength = RunLength {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
    };

    /// Reads an override from `SMT_EXP_CYCLES` (measured cycles; warmup is
    /// a quarter of it), falling back to [`RunLength::DEFAULT`].
    pub fn from_env() -> RunLength {
        match std::env::var("SMT_EXP_CYCLES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(c) if c > 0 => RunLength {
                warmup_cycles: c / 4,
                measure_cycles: c,
            },
            _ => RunLength::DEFAULT,
        }
    }
}

/// The outcome of one simulated configuration.
///
/// Equality is bit-exact on every metric (the fields are deterministic
/// functions of the seed), which is what the parallel-vs-serial equivalence
/// tests and the golden-snapshot harness compare.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Workload name (e.g. `"4_MIX"`).
    pub workload: String,
    /// Fetch engine name.
    pub engine: String,
    /// Fetch policy name (e.g. `"ICOUNT.1.16"`).
    pub policy: String,
    /// Fetch throughput (instructions per fetch cycle).
    pub ipfc: f64,
    /// Commit throughput (instructions per cycle).
    pub ipc: f64,
    /// Conditional direction-prediction accuracy.
    pub branch_accuracy: f64,
    /// Fraction of fetched instructions on the wrong path.
    pub wrong_path: f64,
    /// Fraction of fetch cycles delivering ≥ 4 instructions.
    pub frac_ge4: f64,
    /// Fraction of fetch cycles delivering ≥ 8 instructions.
    pub frac_ge8: f64,
    /// Fraction of fetch cycles delivering exactly 8 instructions.
    pub frac_eq8: f64,
    /// Fraction of fetch cycles delivering ≥ 16 instructions.
    pub frac_ge16: f64,
    /// Per-thread IPC, in workload thread order.
    pub per_thread_ipc: Vec<f64>,
    /// Fairness: min over max of per-thread IPC (1 = perfectly balanced,
    /// → 0 when some thread starves).
    pub fairness: f64,
    /// Measured cycles the event-driven scheduler skipped rather than
    /// stepped (sum of the four per-reason counters; deterministic, like
    /// every other field).
    pub skipped_cycles: u64,
}

impl RunResult {
    fn from_stats(
        workload: &Workload,
        engine: FetchEngineKind,
        policy: FetchPolicy,
        s: &SimStats,
    ) -> Self {
        RunResult {
            workload: workload.name().to_string(),
            engine: engine.to_string(),
            policy: policy.to_string(),
            ipfc: s.ipfc(),
            ipc: s.ipc(),
            branch_accuracy: s.branch_accuracy(),
            wrong_path: s.wrong_path_fraction(),
            frac_ge4: s.distribution.frac_at_least(4),
            frac_ge8: s.distribution.frac_at_least(8),
            frac_eq8: s.distribution.frac_exactly(8),
            frac_ge16: s.distribution.frac_at_least(16),
            per_thread_ipc: (0..workload.num_threads())
                .map(|t| s.committed[t] as f64 / s.cycles.max(1) as f64)
                .collect(),
            fairness: {
                let per: Vec<f64> = (0..workload.num_threads())
                    .map(|t| s.committed[t] as f64 / s.cycles.max(1) as f64)
                    .collect();
                let max = per.iter().cloned().fold(0.0, f64::max);
                let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
                if max > 0.0 {
                    min / max
                } else {
                    0.0
                }
            },
            skipped_cycles: s.skipped_cycles(),
        }
    }
}

/// The seed every experiment uses (reproducibility).
pub const EXP_SEED: u64 = 2004;

/// Whether the warm-start snapshot cache is enabled (`SMT_WARM_START` set
/// to anything but `0`). The sweep service ([`crate::memo`]) enables it
/// unconditionally, independent of this knob.
///
/// Warm starting caches the simulator state right after the warmup phase
/// (statistics already reset) and restores it on the next run of the same
/// `(workload, engine, config, warmup)` cell instead of re-simulating the
/// warmup. The cache is the bounded, [`CellKey`]-keyed warm cache in
/// [`crate::memo`] (one key type, one hash, shared with the result memo
/// cache). Restoring resumes byte-identically — the snapshot round-trip
/// tests pin this — so results are unchanged; only repeated-warmup time is
/// saved (e.g. sweeping many measurement lengths over one configuration).
pub fn warm_start_enabled() -> bool {
    std::env::var_os("SMT_WARM_START").is_some_and(|v| v != "0")
}

/// The warm cache's key for one cell: the [`CellKey::warmup_scope`]
/// projection — measured length zeroed, because the warmed state does not
/// depend on it.
fn warm_key(workload: &Workload, engine: FetchEngineKind, cfg: &SimConfig, warmup: u64) -> CellKey {
    CellKey::new(cfg, engine, workload.name(), EXP_SEED, warmup, 0)
}

/// Builds a simulator warmed past `len.warmup_cycles` with statistics
/// reset, ready for the measurement phase.
///
/// With `warm` set, consults the process-wide snapshot cache first: a hit
/// restores the warmed state instead of re-simulating the warmup, a miss
/// simulates it once and populates the cache. Cache problems (a poisoned
/// lock, a restore rejection) silently fall back to the cold path — the
/// cache is a pure accelerator and can never change results.
fn warmed_simulator(
    programs: Vec<Arc<Program>>,
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: &SimConfig,
    warmup_cycles: u64,
    warm: bool,
) -> Simulator {
    let key = warm_key(workload, engine, cfg, warmup_cycles);
    if warm {
        if let Some(snap) = crate::memo::warm_get(&key) {
            if let Ok(sim) = Simulator::restore(programs.clone(), cfg.clone(), &snap) {
                return sim;
            }
        }
    }
    let mut sim = SimBuilder::new_shared(programs)
        .fetch_engine(engine)
        .config(cfg.clone())
        .build()
        .expect("1..=8 threads and a validated config"); // lint:allow(no-panic): validated config with 1..=8 threads
    sim.run_cycles(warmup_cycles);
    sim.reset_stats();
    if warm {
        crate::memo::warm_store(key, sim.snapshot());
    }
    sim
}

/// The shared body of [`run`] / [`run_with_config`]: preflight, warm up
/// (through the cache when `warm` is set), measure, report.
fn run_measured(
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: SimConfig,
    len: RunLength,
    warm: bool,
) -> RunResult {
    let policy = cfg.fetch_policy;
    preflight(&cfg, workload.num_threads());
    // Shared programs: every sweep cell for this workload reuses the same
    // cached `Arc<Program>`s instead of re-synthesising them per cell.
    let programs = workload
        .programs_shared(EXP_SEED)
        .expect("table 2 workloads always build"); // lint:allow(no-panic): table 2 workloads are compiled-in and always build
    let mut sim = warmed_simulator(programs, workload, engine, &cfg, len.warmup_cycles, warm);
    // Borrowed stats: sweeps summarize each cell without copying SimStats.
    let stats = sim.run_cycles(len.measure_cycles);
    report_stalls(workload, engine, policy, stats);
    RunResult::from_stats(workload, engine, policy, stats)
}

/// Prints the run's per-thread stall-attribution table to stderr when
/// `SMT_SWEEP_REPORT` is 2 or higher. Pure function of the stats: enabling
/// it cannot perturb results or golden snapshots (stdout is untouched).
fn report_stalls(workload: &Workload, engine: FetchEngineKind, policy: FetchPolicy, s: &SimStats) {
    if crate::sweep::report_level() >= 2 {
        eprintln!(
            "{}",
            crate::report::render_stall_breakdown(
                &format!("{} / {engine} / {policy}", workload.name()),
                s,
                workload.num_threads(),
            )
        );
    }
}

/// Validates `cfg` for `threads` hardware contexts, printing every
/// diagnostic (warnings included) to stderr.
///
/// Exits the process with status 2 when the configuration has errors:
/// experiment binaries run this — directly and through [`run`] /
/// [`run_with_config`] — before any cycle is simulated, so a bad
/// configuration fails fast with stable diagnostic codes instead of
/// producing garbage numbers.
pub fn preflight(cfg: &SimConfig, threads: usize) {
    let diags = cfg.validate_for_threads(threads);
    for d in &diags {
        eprintln!("{d}");
    }
    if smt_core::has_errors(&diags) {
        eprintln!("smt-experiments: configuration rejected by validator");
        std::process::exit(2);
    }
}

/// [`preflight`] for the Table 3 default configuration at every hardware
/// thread count — the one-line sanity gate each experiment binary runs
/// first.
pub fn preflight_default() {
    for threads in 1..=smt_isa::MAX_THREADS {
        preflight(&SimConfig::default(), threads);
    }
}

/// Runs one `(workload, engine, policy)` configuration.
///
/// # Panics
///
/// Panics if the workload's programs cannot be built (impossible for the
/// built-in Table 2 workloads).
pub fn run(
    workload: &Workload,
    engine: FetchEngineKind,
    policy: FetchPolicy,
    len: RunLength,
) -> RunResult {
    let cfg = SimConfig {
        fetch_policy: policy,
        ..SimConfig::default()
    };
    run_measured(workload, engine, cfg, len, warm_start_enabled())
}

/// Runs one configuration with a fully custom [`smt_core::SimConfig`].
///
/// # Panics
///
/// Panics if the workload's programs cannot be built.
pub fn run_with_config(
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: smt_core::SimConfig,
    len: RunLength,
) -> RunResult {
    run_measured(workload, engine, cfg, len, warm_start_enabled())
}

/// [`run_with_config`] with the warm-start cache unconditionally enabled:
/// the memoized-service path ([`crate::memo`]), where snapshots live for
/// the daemon's lifetime so even cold cells skip re-warming. Identical
/// results either way (the warm cache is transparent).
pub(crate) fn run_with_config_warm(
    workload: &Workload,
    engine: FetchEngineKind,
    cfg: smt_core::SimConfig,
    len: RunLength,
) -> RunResult {
    run_measured(workload, engine, cfg, len, true)
}

/// Runs the full cross product `workloads × policies × engines`, serially.
///
/// Results are ordered with the workload outermost, then the policy, then
/// the engine innermost — the nesting the paper's grouped-bar figures use
/// (rows grouped by `(workload, policy)`, one bar per engine). This order
/// is part of the API contract and is locked by the golden ordering test;
/// [`run_matrix_parallel`] returns the identical order for any worker count.
pub fn run_matrix(
    workloads: &[Workload],
    engines: &[FetchEngineKind],
    policies: &[FetchPolicy],
    len: RunLength,
) -> Vec<RunResult> {
    run_matrix_parallel(workloads, engines, policies, len, Jobs::SERIAL)
}

/// [`run_matrix`] on a pool of `jobs` workers.
///
/// Each cell is an independent deterministic simulation, and the executor
/// addresses output slots by cell index ([`sweep_cells`]), so the returned
/// vector is bit-for-bit identical to the serial [`run_matrix`] — same
/// order, same values — regardless of `jobs`.
pub fn run_matrix_parallel(
    workloads: &[Workload],
    engines: &[FetchEngineKind],
    policies: &[FetchPolicy],
    len: RunLength,
    jobs: Jobs,
) -> Vec<RunResult> {
    run_matrix_sweep(workloads, engines, policies, len, jobs).results
}

/// [`run_matrix_parallel`], additionally returning per-cell observability
/// stats (label, simulated cycles, wall-time, worker id) for progress and
/// straggler reports.
pub fn run_matrix_sweep(
    workloads: &[Workload],
    engines: &[FetchEngineKind],
    policies: &[FetchPolicy],
    len: RunLength,
    jobs: Jobs,
) -> Sweep<RunResult> {
    // Stable cell order: workload × policy × engine (see `run_matrix`).
    let cells: Vec<(&Workload, FetchEngineKind, FetchPolicy)> = workloads
        .iter()
        .flat_map(|w| {
            policies
                .iter()
                .flat_map(move |&p| engines.iter().map(move |&e| (w, e, p)))
        })
        .collect();
    let mut sweep = sweep_cells(
        cells.len(),
        jobs,
        len.measure_cycles,
        |i| {
            let (w, e, p) = &cells[i];
            format!("{} {} {}", w.name(), e, p)
        },
        |i| {
            let (w, e, p) = cells[i];
            run(w, e, p, len)
        },
    );
    // The executor has no view into the result type; fill in the per-cell
    // skip counts (for the skip-rate column of the progress report) here.
    for (stat, result) in sweep.stats.iter_mut().zip(&sweep.results) {
        stat.skipped = result.skipped_cycles;
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_sane_metrics() {
        let r = run(
            &Workload::mix2(),
            FetchEngineKind::GshareBtb,
            FetchPolicy::icount(1, 8),
            RunLength::SMOKE,
        );
        assert!(r.ipc > 0.0 && r.ipc <= 8.0, "ipc {}", r.ipc);
        assert!(r.ipfc > 0.0 && r.ipfc <= 8.0, "ipfc {}", r.ipfc);
        assert!(r.branch_accuracy > 0.5);
        assert_eq!(r.workload, "2_MIX");
        assert_eq!(r.policy, "ICOUNT.1.8");
    }

    #[test]
    fn matrix_covers_cross_product() {
        let rs = run_matrix(
            &[Workload::mix2()],
            &[FetchEngineKind::GshareBtb, FetchEngineKind::Stream],
            &[FetchPolicy::icount(1, 8)],
            RunLength::SMOKE,
        );
        assert_eq!(rs.len(), 2);
        assert_ne!(rs[0].engine, rs[1].engine);
    }

    #[test]
    fn matrix_order_is_workload_policy_engine() {
        // Doc and behaviour agree: workload outermost, policy, then engine.
        let rs = run_matrix(
            &[Workload::mix2()],
            &[FetchEngineKind::GshareBtb, FetchEngineKind::Stream],
            &[FetchPolicy::icount(1, 8), FetchPolicy::icount(1, 16)],
            RunLength::SMOKE,
        );
        let order: Vec<(String, String)> = rs
            .iter()
            .map(|r| (r.policy.clone(), r.engine.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("ICOUNT.1.8".into(), "gshare+BTB".into()),
                ("ICOUNT.1.8".into(), "stream".into()),
                ("ICOUNT.1.16".into(), "gshare+BTB".into()),
                ("ICOUNT.1.16".into(), "stream".into()),
            ]
        );
    }

    #[test]
    fn parallel_matrix_matches_serial_bit_for_bit() {
        let workloads = [Workload::mix2()];
        let engines = [FetchEngineKind::GshareBtb, FetchEngineKind::Stream];
        let policies = [FetchPolicy::icount(1, 8)];
        let serial = run_matrix(&workloads, &engines, &policies, RunLength::SMOKE);
        for jobs in [2usize, 4] {
            let parallel = run_matrix_parallel(
                &workloads,
                &engines,
                &policies,
                RunLength::SMOKE,
                Jobs::new(jobs).expect("valid"),
            );
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn matrix_sweep_reports_per_cell_stats() {
        let sweep = run_matrix_sweep(
            &[Workload::mix2()],
            &[FetchEngineKind::GshareBtb],
            &[FetchPolicy::icount(1, 8)],
            RunLength::SMOKE,
            Jobs::SERIAL,
        );
        assert_eq!(sweep.stats.len(), 1);
        assert_eq!(sweep.stats[0].label, "2_MIX gshare+BTB ICOUNT.1.8");
        assert_eq!(sweep.stats[0].sim_cycles, RunLength::SMOKE.measure_cycles);
        assert_eq!(sweep.stats[0].worker, 0);
    }

    #[test]
    fn warm_start_cache_is_transparent() {
        // One distinct cell for this test: GskewFtb + BRCOUNT is used by no
        // other runner test, so the first warm run is a provable cache miss.
        let w = Workload::mix2();
        let cfg = SimConfig {
            fetch_policy: FetchPolicy::br_count(1, 8),
            ..SimConfig::default()
        };
        let cold = run_measured(
            &w,
            FetchEngineKind::GskewFtb,
            cfg.clone(),
            RunLength::SMOKE,
            false,
        );
        let miss = run_measured(
            &w,
            FetchEngineKind::GskewFtb,
            cfg.clone(),
            RunLength::SMOKE,
            true,
        );
        let key = warm_key(
            &w,
            FetchEngineKind::GskewFtb,
            &cfg,
            RunLength::SMOKE.warmup_cycles,
        );
        assert!(
            crate::memo::warm_get(&key).is_some(),
            "warm run populated the cache"
        );
        assert_eq!(key.measure_cycles, 0, "warm keys use the warmup scope");
        let hit = run_measured(&w, FetchEngineKind::GskewFtb, cfg, RunLength::SMOKE, true);
        assert_eq!(cold, miss, "cache miss path is bit-identical to cold");
        assert_eq!(cold, hit, "cache hit path is bit-identical to cold");
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(
            &Workload::ilp2(),
            FetchEngineKind::Stream,
            FetchPolicy::icount(2, 8),
            RunLength::SMOKE,
        );
        let b = run(
            &Workload::ilp2(),
            FetchEngineKind::Stream,
            FetchPolicy::icount(2, 8),
            RunLength::SMOKE,
        );
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.ipfc, b.ipfc);
    }
}
