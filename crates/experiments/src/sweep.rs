//! Deterministic parallel sweep executor.
//!
//! Every paper experiment is a cross product of independent cells — each
//! `(workload, engine, policy)` configuration is a self-contained,
//! seed-deterministic simulation (the `Simulator` is `Send`-audited in
//! `smt-core`). The executor here exploits that: a scoped worker pool pulls
//! cell indices from an atomic work queue and writes each result into the
//! slot addressed by its *index*, never by completion order. The queue only
//! decides **who** computes a cell, never **what** the cell computes, so the
//! returned vector is bit-for-bit identical for any worker count — including
//! one.
//!
//! Zero dependencies by design (`std::thread::scope`, no rayon), per the
//! workspace's offline/zero-dep constraint. Wall-clock time is read in
//! exactly one place — the per-cell harness timer below, the one audited
//! `lint:allow(no-wall-clock)` exception in this crate — and flows only into
//! the [`CellStat`] observability records, never into results.
//!
//! The worker count comes from one shared knob: `--jobs N` on any experiment
//! binary, the `SMT_JOBS` environment variable, or
//! `std::thread::available_parallelism()` as the validated default
//! ([`Jobs::from_cli`]).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on the worker count ([`Jobs::MAX`]): far above any real
/// machine, low enough to catch a mistyped `SMT_JOBS=10000`.
const MAX_JOBS: usize = 512;

/// A validated worker count for a sweep: always in `1..=`[`Jobs::MAX`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Jobs(usize);

/// Why a requested worker count was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobsError {
    /// Zero workers can make no progress.
    Zero,
    /// More workers than [`Jobs::MAX`].
    TooMany {
        /// The rejected count.
        got: usize,
    },
    /// The value was not a positive integer.
    Unparsable {
        /// The rejected text and where it came from.
        what: String,
    },
}

impl fmt::Display for JobsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobsError::Zero => write!(f, "--jobs/SMT_JOBS must be at least 1"),
            JobsError::TooMany { got } => {
                write!(f, "--jobs/SMT_JOBS {got} exceeds the maximum of {MAX_JOBS}")
            }
            JobsError::Unparsable { what } => {
                write!(
                    f,
                    "{what} is not a valid worker count (expected 1..={MAX_JOBS})"
                )
            }
        }
    }
}

impl std::error::Error for JobsError {}

impl Jobs {
    /// One worker: the serial schedule every parallel schedule must match.
    pub const SERIAL: Jobs = Jobs(1);

    /// The largest accepted worker count.
    pub const MAX: usize = MAX_JOBS;

    /// Validates a worker count.
    pub fn new(n: usize) -> Result<Jobs, JobsError> {
        match n {
            0 => Err(JobsError::Zero),
            n if n > MAX_JOBS => Err(JobsError::TooMany { got: n }),
            n => Ok(Jobs(n)),
        }
    }

    /// The worker count, always ≥ 1.
    pub fn get(self) -> usize {
        self.0
    }

    /// The machine's available parallelism, clamped to [`Jobs::MAX`]
    /// (1 when the capacity cannot be determined).
    pub fn default_parallelism() -> Jobs {
        let n = std::thread::available_parallelism() // lint:allow(no-nondeterministic-threading): worker-count default only; results are worker-count-invariant
            .map(|n| n.get())
            .unwrap_or(1);
        Jobs(n.clamp(1, MAX_JOBS))
    }

    /// Reads `SMT_JOBS`, falling back to [`Jobs::default_parallelism`] when
    /// unset. A set-but-invalid value is an error, not a silent fallback.
    pub fn from_env() -> Result<Jobs, JobsError> {
        match std::env::var("SMT_JOBS") {
            Ok(v) => v.trim().parse(),
            Err(_) => Ok(Jobs::default_parallelism()),
        }
    }

    /// Extracts `--jobs N` / `--jobs=N` from an argument stream, returning
    /// the parsed override (if any) and the remaining arguments in order.
    pub fn parse_args<I>(args: I) -> Result<(Option<Jobs>, Vec<String>), JobsError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut jobs = None;
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--jobs" {
                let v = it.next().ok_or_else(|| JobsError::Unparsable {
                    what: "--jobs (missing value)".to_string(),
                })?;
                jobs = Some(v.parse()?);
            } else if let Some(v) = arg.strip_prefix("--jobs=") {
                jobs = Some(v.parse()?);
            } else {
                rest.push(arg);
            }
        }
        Ok((jobs, rest))
    }

    /// The worker count for an experiment binary: `--jobs` beats `SMT_JOBS`
    /// beats `available_parallelism()`. Prints the problem and exits with
    /// status 2 on an invalid request — experiment binaries fail fast rather
    /// than sweep with a worker count the user did not ask for.
    pub fn from_cli() -> Jobs {
        Jobs::from_cli_with_rest().0
    }

    /// [`Jobs::from_cli`], additionally returning the non-`--jobs` arguments
    /// for binaries that take positional arguments of their own.
    pub fn from_cli_with_rest() -> (Jobs, Vec<String>) {
        let parsed =
            Jobs::parse_args(std::env::args().skip(1)).and_then(|(jobs, rest)| match jobs {
                Some(j) => Ok((j, rest)),
                None => Jobs::from_env().map(|j| (j, rest)),
            });
        match parsed {
            Ok(ok) => ok,
            Err(err) => {
                eprintln!("smt-experiments: {err}");
                std::process::exit(2);
            }
        }
    }
}

impl std::str::FromStr for Jobs {
    type Err = JobsError;

    fn from_str(s: &str) -> Result<Jobs, JobsError> {
        let n: usize = s.trim().parse().map_err(|_| JobsError::Unparsable {
            what: format!("{s:?}"),
        })?;
        Jobs::new(n)
    }
}

impl fmt::Display for Jobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-cell observability record: who computed a cell and how long it took.
///
/// Purely diagnostic — `worker` and `wall` depend on the machine and the
/// schedule; the *results* of a sweep never do. Excluded from golden
/// snapshots for exactly that reason.
#[derive(Clone, Debug)]
pub struct CellStat {
    /// The cell's index in the sweep's stable order.
    pub index: usize,
    /// Human-readable cell label (e.g. `"2_MIX gshare+BTB ICOUNT.1.8"`).
    pub label: String,
    /// Which worker (0-based) computed the cell.
    pub worker: usize,
    /// Simulated cycles the cell measured (0 when not a simulation).
    pub sim_cycles: u64,
    /// Of `sim_cycles`, how many the event-driven scheduler skipped rather
    /// than stepped (0 when not a simulation, or not yet filled in —
    /// [`sweep_cells`] has no view into the result type, so simulation
    /// sweeps post-fill this from their results).
    pub skipped: u64,
    /// Whether the memo cache served this cell (`None` for sweeps that
    /// bypass the cache; post-filled like `skipped`).
    pub cache: Option<crate::memo::CacheOutcome>,
    /// Wall-clock time the cell took on its worker.
    pub wall: Duration,
}

/// A completed sweep: results in stable cell order plus per-cell stats.
#[derive(Clone, Debug)]
pub struct Sweep<T> {
    /// One result per cell, in cell-index order — independent of worker
    /// count and completion order.
    pub results: Vec<T>,
    /// One [`CellStat`] per cell, same order.
    pub stats: Vec<CellStat>,
}

impl<T> Sweep<T> {
    /// The `k` slowest cells, slowest first — the stragglers that bound the
    /// sweep's wall-clock time.
    pub fn stragglers(&self, k: usize) -> Vec<&CellStat> {
        let mut by_wall: Vec<&CellStat> = self.stats.iter().collect();
        by_wall.sort_by(|a, b| b.wall.cmp(&a.wall).then(a.index.cmp(&b.index)));
        by_wall.truncate(k);
        by_wall
    }

    /// How many distinct workers computed at least one cell.
    pub fn workers_used(&self) -> usize {
        let mut workers: Vec<usize> = self.stats.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        workers.len()
    }
}

/// Runs `n` independent cells on a pool of `jobs` workers and returns the
/// results in cell-index order, with per-cell stats.
///
/// `f(i)` must be a pure function of `i` (each cell builds and runs its own
/// simulator); under that contract the output is identical for every worker
/// count. `label(i)` names cell `i` for the stats; `sim_cycles` records the
/// per-cell simulated length (purely informational).
///
/// Work is distributed dynamically: workers claim the next unclaimed index
/// from an atomic counter, so long cells do not convoy short ones.
pub fn sweep_cells<T, L, F>(n: usize, jobs: Jobs, sim_cycles: u64, label: L, f: F) -> Sweep<T>
where
    T: Send,
    L: Fn(usize) -> String,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.get().min(n.max(1));
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T, Duration)>> = Vec::with_capacity(workers);
    // lint:allow(no-nondeterministic-threading): the audited executor; index-claimed cells, order-independent merge
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // The one audited wall-clock read in this crate: the
                        // harness timer feeding CellStat (results never see it).
                        let start = Instant::now(); // lint:allow(no-wall-clock): harness timer feeding CellStat observability; results never see it
                        let out = f(i);
                        claimed.push((i, out, start.elapsed()));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(claimed) => per_worker.push(claimed),
                // A cell panicked: re-raise on the caller's thread with the
                // original payload instead of a generic JoinError.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut stats: Vec<Option<CellStat>> = (0..n).map(|_| None).collect();
    for (worker, claimed) in per_worker.into_iter().enumerate() {
        for (index, out, wall) in claimed {
            results[index] = Some(out);
            stats[index] = Some(CellStat {
                index,
                label: label(index),
                worker,
                sim_cycles,
                skipped: 0,
                cache: None,
                wall,
            });
        }
    }
    Sweep {
        // The fetch_add queue hands out each index exactly once, and every
        // worker drains until the counter passes n, so every slot is filled.
        results: results
            .into_iter()
            .map(|slot| slot.expect("every cell index claimed exactly once")) // lint:allow(no-panic): the atomic counter claims every cell index exactly once
            .collect(),
        stats: stats
            .into_iter()
            .map(|slot| slot.expect("every cell index claimed exactly once")) // lint:allow(no-panic): the atomic counter claims every cell index exactly once
            .collect(),
    }
}

/// [`sweep_cells`] without the observability trimmings: just the results,
/// in cell-index order.
pub fn sweep_indexed<T, F>(n: usize, jobs: Jobs, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sweep_cells(n, jobs, 0, |i| format!("cell {i}"), f).results
}

/// Stderr report verbosity, from `SMT_SWEEP_REPORT`:
///
/// * `0` / unset — silent;
/// * `1` (or any non-numeric value) — per-sweep progress reports;
/// * `2` and up — progress plus a per-run stall-breakdown table.
///
/// Reports go to stderr only and never into golden snapshots; everything
/// above level 0 is a pure function of the simulated stats, so enabling it
/// cannot perturb results.
pub fn report_level() -> u8 {
    match std::env::var_os("SMT_SWEEP_REPORT") {
        None => 0,
        Some(v) => v.to_str().and_then(|s| s.parse::<u8>().ok()).unwrap_or(1),
    }
}

/// Whether per-sweep progress reports should be printed to stderr
/// (`SMT_SWEEP_REPORT` set to anything but `0`, i.e. [`report_level`] ≥ 1).
pub fn progress_report_enabled() -> bool {
    report_level() >= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_validate_bounds() {
        assert_eq!(Jobs::new(0), Err(JobsError::Zero));
        assert_eq!(Jobs::new(1), Ok(Jobs::SERIAL));
        assert_eq!(Jobs::new(Jobs::MAX).map(Jobs::get), Ok(Jobs::MAX));
        assert_eq!(
            Jobs::new(Jobs::MAX + 1),
            Err(JobsError::TooMany { got: Jobs::MAX + 1 })
        );
        assert!(Jobs::default_parallelism().get() >= 1);
    }

    #[test]
    fn jobs_parse_from_str() {
        assert_eq!("4".parse(), Ok(Jobs(4)));
        assert_eq!(" 8 ".parse(), Ok(Jobs(8)));
        assert!(matches!(
            "zero".parse::<Jobs>(),
            Err(JobsError::Unparsable { .. })
        ));
        assert_eq!("0".parse::<Jobs>(), Err(JobsError::Zero));
    }

    #[test]
    fn parse_args_extracts_jobs_and_keeps_rest() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (jobs, rest) = Jobs::parse_args(args(&["--jobs", "3", "out.md"])).unwrap();
        assert_eq!(jobs, Some(Jobs(3)));
        assert_eq!(rest, args(&["out.md"]));

        let (jobs, rest) = Jobs::parse_args(args(&["a", "--jobs=7", "b"])).unwrap();
        assert_eq!(jobs, Some(Jobs(7)));
        assert_eq!(rest, args(&["a", "b"]));

        let (jobs, rest) = Jobs::parse_args(args(&["plain"])).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(rest, args(&["plain"]));

        assert!(Jobs::parse_args(args(&["--jobs"])).is_err());
        assert!(Jobs::parse_args(args(&["--jobs=many"])).is_err());
    }

    #[test]
    fn results_are_index_ordered_for_any_worker_count() {
        // Cells deliberately finish out of order (larger index = less work);
        // the output must be index-ordered regardless.
        let work = |i: usize| {
            let spins = (64 - i) * 1_000;
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            i
        };
        let serial = sweep_indexed(64, Jobs::SERIAL, work);
        assert_eq!(serial, (0..64).collect::<Vec<_>>());
        for jobs in [2, 3, 8] {
            let parallel = sweep_indexed(64, Jobs::new(jobs).unwrap(), work);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn stats_cover_every_cell_once() {
        let sweep = sweep_cells(
            10,
            Jobs::new(4).unwrap(),
            123,
            |i| format!("c{i}"),
            |i| i * 2,
        );
        assert_eq!(sweep.results, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(sweep.stats.len(), 10);
        for (i, s) in sweep.stats.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.label, format!("c{i}"));
            assert_eq!(s.sim_cycles, 123);
            assert!(s.worker < 4);
        }
        assert!(sweep.workers_used() >= 1);
        let stragglers = sweep.stragglers(3);
        assert_eq!(stragglers.len(), 3);
        assert!(stragglers[0].wall >= stragglers[1].wall);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let sweep = sweep_cells(0, Jobs::new(8).unwrap(), 0, |i| i.to_string(), |i| i);
        assert!(sweep.results.is_empty());
        assert!(sweep.stats.is_empty());
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let out = sweep_indexed(3, Jobs::new(64).unwrap(), |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
