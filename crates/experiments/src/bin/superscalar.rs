//! Regenerates the paper's superscalar.
use smt_experiments::{figures, RunLength};

fn main() {
    let e = figures::superscalar(RunLength::from_env());
    println!("{}", e.text);
}
