//! Regenerates the paper's superscalar.
use smt_experiments::{figures, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::superscalar(RunLength::from_env());
    println!("{}", e.text);
}
