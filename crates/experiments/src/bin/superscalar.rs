//! Regenerates the paper's superscalar.
use smt_experiments::{figures, Jobs, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::superscalar(RunLength::from_env(), Jobs::from_cli());
    println!("{}", e.text);
}
