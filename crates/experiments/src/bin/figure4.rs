//! Regenerates the paper's figure4.
use smt_experiments::{figures, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::figure4(RunLength::from_env());
    println!("{}", e.text);
}
