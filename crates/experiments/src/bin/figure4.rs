//! Regenerates the paper's figure4.
use smt_experiments::{figures, RunLength};

fn main() {
    let e = figures::figure4(RunLength::from_env());
    println!("{}", e.text);
}
