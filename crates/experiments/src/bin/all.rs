//! Regenerates every table and figure, printing the full report and writing
//! a markdown fragment (pass a path argument to choose where; default
//! `target/experiments.md`). `--jobs N` (or `SMT_JOBS`) sets the sweep
//! worker count; `SMT_SWEEP_REPORT=1` prints per-cell timing to stderr.
use smt_experiments::{figures, Jobs, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let (jobs, rest) = Jobs::from_cli_with_rest();
    let out_path = rest
        .into_iter()
        .next()
        .unwrap_or_else(|| "target/experiments.md".to_string());
    let len = RunLength::from_env();
    let mut md = String::from("# Regenerated evaluation artifacts\n\n");
    for e in figures::all(len, jobs) {
        println!("==== {} — {}\n", e.id, e.caption);
        println!("{}", e.text);
        md.push_str(&format!("## {} — {}\n\n{}\n", e.id, e.caption, e.markdown));
    }
    if let Err(err) = std::fs::write(&out_path, md) {
        eprintln!("could not write {out_path}: {err}");
    } else {
        println!("markdown report written to {out_path}");
    }
}
