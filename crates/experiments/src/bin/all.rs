//! Regenerates every table and figure, printing the full report and writing
//! a markdown fragment (pass a path argument to choose where; default
//! `target/experiments.md`).
use smt_experiments::{figures, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/experiments.md".to_string());
    let len = RunLength::from_env();
    let mut md = String::from("# Regenerated evaluation artifacts\n\n");
    for e in figures::all(len) {
        println!("==== {} — {}\n", e.id, e.caption);
        println!("{}", e.text);
        md.push_str(&format!("## {} — {}\n\n{}\n", e.id, e.caption, e.markdown));
    }
    if let Err(err) = std::fs::write(&out_path, md) {
        eprintln!("could not write {out_path}: {err}");
    } else {
        println!("markdown report written to {out_path}");
    }
}
