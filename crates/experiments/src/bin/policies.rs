//! Beyond the paper: fetch-policy comparison on memory-bounded workloads.
//!
//! The paper's conclusion calls for "future fetch policy proposals ...
//! targeted to exploiting the fetch potential provided by a high bandwidth
//! fetch unit fetching from a single thread". This experiment compares the
//! paper's configurations against the other classic policies — BRCOUNT and
//! MISSCOUNT (Tullsen et al., ISCA'96) and the STALL / FLUSH long-latency
//! mechanisms (Tullsen & Brown, MICRO 2001, the paper's reference \[21\]) —
//! reporting both raw throughput and fairness (min/max per-thread IPC):
//! STALL and FLUSH buy their throughput by starving the memory-bound
//! thread, while the paper's ICOUNT.1.X keeps it alive.

use smt_core::{FetchEngineKind, FetchPolicy};
use smt_experiments::{render_table, run_matrix_parallel, Jobs, RunLength};
use smt_workloads::Workload;

fn main() {
    smt_experiments::preflight_default();
    let jobs = Jobs::from_cli();
    let len = RunLength::from_env();
    let engine = FetchEngineKind::GskewFtb;
    let policies: Vec<FetchPolicy> = vec![
        FetchPolicy::icount(1, 8),
        FetchPolicy::icount(1, 16),
        FetchPolicy::icount(2, 8),
        FetchPolicy::br_count(2, 8),
        FetchPolicy::miss_count(2, 8),
        FetchPolicy::icount(2, 8).with_stall(),
        FetchPolicy::icount(2, 8).with_flush(),
        FetchPolicy::icount(1, 16).with_stall(),
    ];
    let workloads = [Workload::mix2(), Workload::mix4(), Workload::mem4()];
    // One sweep over the whole workload × policy matrix; results come back
    // workload-major, policy order within each workload.
    let results = run_matrix_parallel(&workloads, &[engine], &policies, len, jobs);
    println!("fetch policies on gskew+FTB (throughput vs fairness)\n");
    for (w, chunk) in workloads.iter().zip(results.chunks(policies.len())) {
        let mut rows = Vec::new();
        for r in chunk {
            let per: Vec<String> = r.per_thread_ipc.iter().map(|v| format!("{v:.2}")).collect();
            rows.push(vec![
                r.policy.clone(),
                format!("{:.2}", r.ipc),
                format!("{:.2}", r.fairness),
                per.join("/"),
            ]);
        }
        println!("== {}", w.name());
        println!(
            "{}",
            render_table(&["policy", "IPC", "fairness", "per-thread IPC"], &rows)
        );
    }
    println!(
        "STALL/FLUSH maximize raw IPC by starving the clogging thread;\n\
         the paper's single-thread wide fetch keeps every thread progressing."
    );
}
