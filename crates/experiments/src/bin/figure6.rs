//! Regenerates the paper's figure6.
use smt_experiments::{figures, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::figure6(RunLength::from_env());
    println!("{}", e.text);
}
