//! Regenerates the paper's figure8.
use smt_experiments::{figures, Jobs, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::figure8(RunLength::from_env(), Jobs::from_cli());
    println!("{}", e.text);
}
