//! Regenerates the paper's figure8.
use smt_experiments::{figures, RunLength};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::figure8(RunLength::from_env());
    println!("{}", e.text);
}
