//! Regenerates the paper's figure2.
use smt_experiments::{figures, RunLength};

fn main() {
    let e = figures::figure2(RunLength::from_env());
    println!("{}", e.text);
}
