//! Regenerates the paper's table3.
use smt_experiments::figures;

fn main() {
    smt_experiments::preflight_default();
    let e = figures::table3();
    println!("{}", e.text);
}
