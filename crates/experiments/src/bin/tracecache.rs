//! Beyond the paper's figures: the trace-cache comparison its related work
//! cites — "[the stream fetch] is only 1.5% lower than using a trace cache
//! mechanism, but with much lower complexity" (§2/§3.3).
//!
//! Compares all three paper engines plus a trace cache (512 lines × 16
//! instructions, path-associative, gshare+BTB core fetch) on the ILP suite
//! at ICOUNT.1.16, where fetch bandwidth is the binding constraint.

use smt_core::{FetchEngineKind, FetchPolicy};
use smt_experiments::{render_table, run_matrix_parallel, Jobs, RunLength};
use smt_workloads::Workload;

fn main() {
    smt_experiments::preflight_default();
    let jobs = Jobs::from_cli();
    let len = RunLength::from_env();
    let policy = FetchPolicy::icount(1, 16);
    let workloads = Workload::ilp_suite();
    let engines = FetchEngineKind::all_with_trace_cache();
    // One sweep over the whole matrix; chunks come back per workload with
    // the engines in order.
    let results = run_matrix_parallel(&workloads, &engines, &[policy], len, jobs);
    println!("trace-cache comparison, ICOUNT.1.16 on ILP workloads\n");
    for (w, chunk) in workloads.iter().zip(results.chunks(engines.len())) {
        let mut rows = Vec::new();
        let mut stream_ipc = 0.0;
        let mut tc_ipc = 0.0;
        for r in chunk {
            if r.engine == FetchEngineKind::Stream.to_string() {
                stream_ipc = r.ipc;
            }
            if r.engine == FetchEngineKind::TraceCache.to_string() {
                tc_ipc = r.ipc;
            }
            rows.push(vec![
                r.engine.clone(),
                format!("{:.2}", r.ipfc),
                format!("{:.2}", r.ipc),
                format!("{:.1}%", r.wrong_path * 100.0),
            ]);
        }
        println!("== {}", w.name());
        println!(
            "{}",
            render_table(&["engine", "IPFC", "IPC", "wrong-path"], &rows)
        );
        println!(
            "   stream vs trace cache: {:+.1}% IPC (paper: stream ~1.5% below)\n",
            (stream_ipc / tc_ipc - 1.0) * 100.0
        );
    }
}
