//! Ablations of the design choices DESIGN.md calls out: FTQ depth,
//! fetch-buffer size, stream-length cap, and FTB block cap.
//!
//! These are *not* in the paper; they probe how sensitive the paper's
//! conclusions are to the secondary parameters of the decoupled front-end.

use smt_core::{FetchEngineKind, FetchPolicy, SimConfig};
use smt_experiments::{render_table, runner::run_with_config, sweep_indexed, Jobs, RunLength};
use smt_workloads::Workload;

fn main() {
    smt_experiments::preflight_default();
    let jobs = Jobs::from_cli();
    let len = RunLength::from_env();
    let w = Workload::ilp4();
    let policy = FetchPolicy::icount(1, 16);

    // Build the ablation grid up front; each (knob, engine, config) cell is
    // an independent simulation the sweep executor runs in parallel.
    let mut cells: Vec<(String, &'static str, FetchEngineKind, SimConfig)> = Vec::new();
    for depth in [1u32, 2, 4, 8] {
        cells.push((
            format!("FTQ depth {depth}"),
            "stream",
            FetchEngineKind::Stream,
            SimConfig {
                ftq_depth: depth,
                ..SimConfig::hpca2004(policy)
            },
        ));
    }
    for buf in [16u32, 32, 64] {
        cells.push((
            format!("fetch buffer {buf}"),
            "stream",
            FetchEngineKind::Stream,
            SimConfig {
                fetch_buffer: buf,
                ..SimConfig::hpca2004(policy)
            },
        ));
    }
    for cap in [16u32, 32, 64, 128] {
        cells.push((
            format!("stream cap {cap}"),
            "stream",
            FetchEngineKind::Stream,
            SimConfig {
                max_stream: cap,
                ..SimConfig::hpca2004(policy)
            },
        ));
    }
    for cap in [8u32, 16, 32] {
        cells.push((
            format!("FTB block cap {cap}"),
            "gskew+FTB",
            FetchEngineKind::GskewFtb,
            SimConfig {
                max_ftb_block: cap,
                ..SimConfig::hpca2004(policy)
            },
        ));
    }

    println!("ablations on {} with ICOUNT.1.16 (IPFC / IPC)\n", w.name());
    let results = sweep_indexed(cells.len(), jobs, |i| {
        let (_, _, engine, cfg) = &cells[i];
        run_with_config(&w, *engine, cfg.clone(), len)
    });
    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(&results)
        .map(|((knob, engine, _, _), r)| {
            vec![
                knob.clone(),
                engine.to_string(),
                format!("{:.2}", r.ipfc),
                format!("{:.2}", r.ipc),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["knob", "engine", "IPFC", "IPC"], &rows)
    );
    println!(
        "The decoupled front-end is robust: a 2-deep FTQ already buys most of\n\
         the latency tolerance, and fetch-block caps mainly trade fetch\n\
         throughput against wrong-path depth."
    );
}
