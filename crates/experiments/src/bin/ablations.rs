//! Ablations of the design choices DESIGN.md calls out: FTQ depth,
//! fetch-buffer size, stream-length cap, and FTB block cap.
//!
//! These are *not* in the paper; they probe how sensitive the paper's
//! conclusions are to the secondary parameters of the decoupled front-end.

use smt_core::{FetchEngineKind, FetchPolicy, SimConfig};
use smt_experiments::{render_table, runner::run_with_config, RunLength};
use smt_workloads::Workload;

fn main() {
    smt_experiments::preflight_default();
    let len = RunLength::from_env();
    let w = Workload::ilp4();
    let policy = FetchPolicy::icount(1, 16);

    println!("ablations on {} with ICOUNT.1.16 (IPFC / IPC)\n", w.name());

    let mut rows = Vec::new();
    for depth in [1u32, 2, 4, 8] {
        let cfg = SimConfig {
            ftq_depth: depth,
            ..SimConfig::hpca2004(policy)
        };
        let r = run_with_config(&w, FetchEngineKind::Stream, cfg, len);
        rows.push(vec![
            format!("FTQ depth {depth}"),
            "stream".into(),
            format!("{:.2}", r.ipfc),
            format!("{:.2}", r.ipc),
        ]);
    }
    for buf in [16u32, 32, 64] {
        let cfg = SimConfig {
            fetch_buffer: buf,
            ..SimConfig::hpca2004(policy)
        };
        let r = run_with_config(&w, FetchEngineKind::Stream, cfg, len);
        rows.push(vec![
            format!("fetch buffer {buf}"),
            "stream".into(),
            format!("{:.2}", r.ipfc),
            format!("{:.2}", r.ipc),
        ]);
    }
    for cap in [16u32, 32, 64, 128] {
        let cfg = SimConfig {
            max_stream: cap,
            ..SimConfig::hpca2004(policy)
        };
        let r = run_with_config(&w, FetchEngineKind::Stream, cfg, len);
        rows.push(vec![
            format!("stream cap {cap}"),
            "stream".into(),
            format!("{:.2}", r.ipfc),
            format!("{:.2}", r.ipc),
        ]);
    }
    for cap in [8u32, 16, 32] {
        let cfg = SimConfig {
            max_ftb_block: cap,
            ..SimConfig::hpca2004(policy)
        };
        let r = run_with_config(&w, FetchEngineKind::GskewFtb, cfg, len);
        rows.push(vec![
            format!("FTB block cap {cap}"),
            "gskew+FTB".into(),
            format!("{:.2}", r.ipfc),
            format!("{:.2}", r.ipc),
        ]);
    }
    println!(
        "{}",
        render_table(&["knob", "engine", "IPFC", "IPC"], &rows)
    );
    println!(
        "The decoupled front-end is robust: a 2-deep FTQ already buys most of\n\
         the latency tolerance, and fetch-block caps mainly trade fetch\n\
         throughput against wrong-path depth."
    );
}
