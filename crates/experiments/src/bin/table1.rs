//! Regenerates the paper's table1.
use smt_experiments::figures;

fn main() {
    smt_experiments::preflight_default();
    let e = figures::table1();
    println!("{}", e.text);
}
