//! Regenerates the paper's table1.
use smt_experiments::{figures, Jobs};

fn main() {
    smt_experiments::preflight_default();
    let e = figures::table1(Jobs::from_cli());
    println!("{}", e.text);
}
