//! Regenerates the paper's table2.
use smt_experiments::figures;

fn main() {
    smt_experiments::preflight_default();
    let e = figures::table2();
    println!("{}", e.text);
}
