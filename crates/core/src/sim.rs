//! The SMT out-of-order pipeline simulator.
//!
//! A 9-stage decoupled pipeline, cycle by cycle:
//!
//! ```text
//! predict → [FTQ] → fetch → [fetch buffer] → decode → rename → dispatch
//!          → [issue queues] → issue/execute → writeback → commit
//! ```
//!
//! The prediction stage and the fetch stage are decoupled through per-thread
//! fetch target queues (the paper's §4 modification of SMTSIM, after
//! Reinman et al. and Falcón et al. [7]); the fetch policy (ICOUNT) selects
//! both the thread the predictor serves and the FTQ(s) the fetch stage
//! drains. The fetch stage implements both architectures of the paper:
//! **1.X** (Figure 1: one thread per cycle, single I-cache port) and **2.X**
//! (Figure 3: two threads, two ports, bank-conflict logic, merge).

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic)

use std::collections::VecDeque;

use smt_bpred::{ObservedStream, ReturnStack};
use smt_isa::{ArchReg, Cycle, Diagnostic, InstClass, RegClass, MAX_THREADS};
use smt_mem::{DataOutcome, FetchOutcome, MemoryHierarchy};
use smt_workloads::Program;

use crate::config::{FetchEngineKind, FetchPolicy, LongLatencyAction, PolicyKind, SimConfig};
use crate::engine::{BranchInfo, Engine, PredictedBlock, LINE_BYTES};
use crate::metrics::SimStats;
use crate::thread::{FtqEntry, InFlight, PhysReg, ThreadState};

/// Error constructing a [`Simulator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No programs were supplied.
    NoThreads,
    /// More programs than hardware contexts.
    TooManyThreads {
        /// Programs supplied.
        got: usize,
    },
    /// The configuration failed semantic validation
    /// ([`SimConfig::validate_for_threads`]); the diagnostics describe
    /// every error found.
    InvalidConfig(Vec<Diagnostic>),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoThreads => write!(f, "workload has no programs"),
            BuildError::TooManyThreads { got } => {
                write!(
                    f,
                    "workload has {got} programs but at most {MAX_THREADS} contexts"
                )
            }
            BuildError::InvalidConfig(diags) => {
                write!(f, "configuration failed validation:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Simulator`].
///
/// # Example
///
/// ```
/// use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder};
/// use smt_workloads::Workload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = SimBuilder::new(Workload::mix2().programs(1)?)
///     .fetch_engine(FetchEngineKind::GskewFtb)
///     .fetch_policy(FetchPolicy::icount(2, 8))
///     .build()?;
/// let stats = sim.run_cycles(5_000);
/// assert!(stats.total_committed() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimBuilder {
    programs: Vec<Program>,
    engine: FetchEngineKind,
    cfg: SimConfig,
}

impl SimBuilder {
    /// Starts a builder for the given per-thread programs.
    pub fn new(programs: Vec<Program>) -> Self {
        SimBuilder {
            programs,
            engine: FetchEngineKind::GshareBtb,
            cfg: SimConfig::default(),
        }
    }

    /// Selects the fetch engine (default: gshare+BTB).
    pub fn fetch_engine(mut self, kind: FetchEngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Selects the fetch policy (default: `ICOUNT.1.8`).
    pub fn fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.cfg.fetch_policy = policy;
        self
    }

    /// Replaces the whole configuration (Table 3 values by default).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Fails if no programs or more than [`MAX_THREADS`] were supplied.
    pub fn build(self) -> Result<Simulator, BuildError> {
        Simulator::new(self.programs, self.engine, self.cfg)
    }
}

/// A data access slower than this many cycles counts as a long-latency
/// (memory) miss for the STALL/FLUSH mechanisms and the MISSCOUNT metric —
/// above the 10-cycle L2 hit, below the 100-cycle memory access.
const LONG_LATENCY: u64 = 30;

/// Issue-queue entry.
#[derive(Clone, Copy, Debug)]
struct IqEntry {
    tid: usize,
    seq: u64,
    entered: Cycle,
}

/// Pipeline-latch entry.
#[derive(Clone, Copy, Debug)]
struct LatchEntry {
    tid: usize,
    seq: u64,
    entered: Cycle,
}

/// Thread ids in fetch-priority order: a fixed-size list so the per-cycle
/// priority computation needs no heap.
#[derive(Clone, Copy, Debug)]
struct Priorities {
    tids: [usize; MAX_THREADS],
    len: usize,
}

impl Priorities {
    fn order(&self) -> &[usize] {
        &self.tids[..self.len]
    }
}

/// I-cache banks touched so far this cycle. The per-cycle fetch budget is at
/// most 16 instructions (one 64-byte line, two if the start is unaligned) per
/// port, so a small fixed array covers every reachable configuration.
#[derive(Clone, Copy, Debug)]
struct BankSet {
    banks: [u64; 8],
    len: usize,
}

impl BankSet {
    fn new() -> Self {
        BankSet {
            banks: [0; 8],
            len: 0,
        }
    }

    fn contains(&self, bank: u64) -> bool {
        self.banks[..self.len].contains(&bank)
    }

    fn push(&mut self, bank: u64) {
        debug_assert!(self.len < self.banks.len(), "more lines than fetch width");
        if self.len < self.banks.len() {
            self.banks[self.len] = bank;
            self.len += 1;
        }
    }
}

/// The SMT processor simulator.
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: SimConfig,
    engine: Engine,
    threads: Vec<ThreadState>,
    mem: MemoryHierarchy,
    cycle: Cycle,
    fetch_buffer: VecDeque<LatchEntry>,
    decode_latch: VecDeque<LatchEntry>,
    rename_latch: VecDeque<LatchEntry>,
    iq_int: Vec<IqEntry>,
    iq_ls: Vec<IqEntry>,
    iq_fp: Vec<IqEntry>,
    /// Cycle at which statistics were last reset (for warmup exclusion).
    stats_since: Cycle,
    free_int: Vec<PhysReg>,
    free_fp: Vec<PhysReg>,
    /// Cycle at which each physical register's value is ready.
    ready_at: Vec<Cycle>,
    rob_occ: u32,
    /// FLUSH requests discovered at issue, processed at the end of the
    /// issue stage: `(thread, sequence number of the missing load)`.
    pending_flushes: Vec<(usize, u64)>,
    /// Reusable scratch for the prediction stage's per-cycle block list.
    /// Cleared each use; its capacity (the FTQ depth) never grows, keeping
    /// the steady-state loop allocation-free.
    predict_scratch: Vec<PredictedBlock>,
    /// Reusable scratch for the dispatch stage's kept-entry compaction
    /// (same lifecycle as `predict_scratch`).
    latch_scratch: Vec<LatchEntry>,
    /// Per-thread entry count across the six pre-issue structures (fetch
    /// buffer, decode/rename latches, three issue queues) — the ICOUNT
    /// metric, maintained incrementally at each insert/remove so the
    /// per-cycle priority computation does not rescan every queue. A debug
    /// assertion in [`Simulator::priorities`] cross-checks it against the
    /// full recount on every use.
    preissue: [u32; MAX_THREADS],
    stats: SimStats,
}

// The experiment harness moves each sweep cell's `Simulator` (and the
// configuration that builds it) onto a worker thread. The simulator owns
// every piece of its state — no `Rc`, `RefCell`, raw pointers or thread
// handles anywhere in the pipeline — so `Send` must hold structurally.
// This compile-time audit fails the build if a future field breaks that.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
    assert_send::<SimBuilder>();
    assert_send::<SimConfig>();
    assert_send::<SimStats>();
    assert_send::<BuildError>();
};

impl Simulator {
    fn new(
        programs: Vec<Program>,
        engine_kind: FetchEngineKind,
        cfg: SimConfig,
    ) -> Result<Self, BuildError> {
        if programs.is_empty() {
            return Err(BuildError::NoThreads);
        }
        if programs.len() > MAX_THREADS {
            return Err(BuildError::TooManyThreads {
                got: programs.len(),
            });
        }
        let n = programs.len();
        let diags = cfg.validate_for_threads(n);
        if smt_isa::has_errors(&diags) {
            return Err(BuildError::InvalidConfig(diags));
        }
        let engine =
            Engine::build(engine_kind, &cfg).map_err(|d| BuildError::InvalidConfig(vec![d]))?;
        let hist_bits = engine.history_bits();

        let total_regs = (cfg.regs_int + cfg.regs_fp) as usize;
        let mut free_int: Vec<PhysReg> = (0..cfg.regs_int).rev().collect();
        let mut free_fp: Vec<PhysReg> = (cfg.regs_int..cfg.regs_int + cfg.regs_fp).rev().collect();
        let ready_at = vec![0u64; total_regs];

        let ras = ReturnStack::new(cfg.predictor.ras_depth)
            .map_err(|d| BuildError::InvalidConfig(vec![d.in_field("predictor.ras_depth")]))?;
        let mut threads: Vec<ThreadState> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| ThreadState::new(i, p, hist_bits))
            .collect();
        // Every window entry is either pre-dispatch (mirrored by a latch or
        // fetch-buffer slot) or dispatched (holds a ROB slot), so this bounds
        // the window — and with it the outstanding-miss list — for good.
        let window_cap = (cfg.rob_size + cfg.fetch_buffer + 2 * cfg.decode_width) as usize;
        // Architect the initial register mappings.
        for th in &mut threads {
            th.presize(cfg.ftq_depth as usize, window_cap);
            th.spec.ras = ras.clone(); // lint:allow(no-alloc-in-step)
            th.rename_map = (0..ArchReg::flat_count())
                .map(|flat| {
                    if flat < smt_isa::NUM_ARCH_INT as usize {
                        free_int
                            .pop()
                            .expect("enough int registers for initial maps")
                    } else {
                        free_fp.pop().expect("enough fp registers for initial maps")
                    }
                })
                .collect();
        }

        // The configured per-thread I-MSHR count is a floor: the Table 3
        // machine provisions one outstanding fetch miss per context.
        let mut mem_cfg = cfg.mem.clone(); // lint:allow(no-alloc-in-step)
        mem_cfg.i_mshrs = mem_cfg.i_mshrs.max(n);
        let mem = MemoryHierarchy::new(mem_cfg).map_err(|d| BuildError::InvalidConfig(vec![d]))?;

        let width = cfg.fetch_policy.width;
        // Every queue is built at its configuration-derived high-water mark,
        // so the steady-state cycle loop never grows (= never reallocates)
        // any of them.
        Ok(Simulator {
            engine,
            mem,
            threads,
            cycle: 0,
            fetch_buffer: VecDeque::with_capacity(cfg.fetch_buffer as usize),
            decode_latch: VecDeque::with_capacity(cfg.decode_width as usize),
            rename_latch: VecDeque::with_capacity(cfg.decode_width as usize),
            iq_int: Vec::with_capacity(cfg.iq_int as usize),
            iq_ls: Vec::with_capacity(cfg.iq_ls as usize),
            iq_fp: Vec::with_capacity(cfg.iq_fp as usize),
            stats_since: 0,
            free_int,
            free_fp,
            ready_at,
            rob_occ: 0,
            // Only issued loads request flushes, at most one per L/S unit.
            pending_flushes: Vec::with_capacity(cfg.fu_ls as usize),
            predict_scratch: Vec::with_capacity(cfg.ftq_depth as usize),
            latch_scratch: Vec::with_capacity(cfg.decode_width as usize),
            preissue: [0; MAX_THREADS],
            stats: SimStats::new(width),
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The fetch engine in force.
    pub fn engine_kind(&self) -> FetchEngineKind {
        self.engine.kind()
    }

    /// The fetch engine itself (predictor structures and their statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of hardware threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Statistics since construction or the last [`Simulator::reset_stats`].
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears the statistics while keeping all microarchitectural state
    /// (predictor tables, caches, in-flight instructions) — the standard way
    /// to exclude warmup from measurements.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new(self.cfg.fetch_policy.width);
        self.stats_since = self.cycle;
    }

    /// Runs for `n` cycles and returns the cumulative statistics.
    ///
    /// The return value borrows the simulator's own counters (clone it if
    /// you need the snapshot to outlive further stepping).
    pub fn run_cycles(&mut self, n: u64) -> &SimStats {
        for _ in 0..n {
            self.step();
        }
        &self.stats
    }

    /// Runs until `n` total instructions have committed (or `max_cycles`
    /// elapse), returning the cumulative statistics (borrowed, like
    /// [`Simulator::run_cycles`]).
    pub fn run_insts(&mut self, n: u64, max_cycles: u64) -> &SimStats {
        let start = self.cycle;
        while self.stats.total_committed() < n && self.cycle - start < max_cycles {
            self.step();
        }
        &self.stats
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        // Resolve must precede commit: a mispredicted branch that completes
        // this cycle must squash and redirect before it can retire.
        self.resolve_stage();
        self.commit_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.rename_stage();
        self.decode_stage();
        self.fetch_stage();
        self.predict_stage();
        self.cycle += 1;
        self.stats.cycles = self.cycle - self.stats_since;
    }

    // ----- priorities -------------------------------------------------

    /// Total entries across the six pre-issue structures (the quantity the
    /// incremental `preissue` counters track, summed over threads).
    fn preissue_live(&self) -> usize {
        self.fetch_buffer.len()
            + self.decode_latch.len()
            + self.rename_latch.len()
            + self.iq_int.len()
            + self.iq_ls.len()
            + self.iq_fp.len()
    }

    /// Per-thread pre-issue instruction counts recomputed from the queues —
    /// the reference the incremental `preissue` counters are checked against
    /// (debug builds) on every ICOUNT priority computation.
    fn icounts(&self) -> [u32; MAX_THREADS] {
        let mut c = [0u32; MAX_THREADS];
        for e in self
            .fetch_buffer
            .iter()
            .chain(self.decode_latch.iter())
            .chain(self.rename_latch.iter())
        {
            c[e.tid] += 1;
        }
        for e in self
            .iq_int
            .iter()
            .chain(self.iq_ls.iter())
            .chain(self.iq_fp.iter())
        {
            c[e.tid] += 1;
        }
        c
    }

    /// Per-thread pre-issue *branch* counts (the BRCOUNT metric).
    fn brcounts(&self) -> [u32; MAX_THREADS] {
        let mut c = [0u32; MAX_THREADS];
        let mut count = |tid: usize, seq: u64| {
            if let Some(i) = self.threads[tid].inst(seq) {
                if i.di.is_branch() {
                    c[tid] += 1;
                }
            }
        };
        for e in self
            .fetch_buffer
            .iter()
            .chain(self.decode_latch.iter())
            .chain(self.rename_latch.iter())
        {
            count(e.tid, e.seq);
        }
        for e in self
            .iq_int
            .iter()
            .chain(self.iq_ls.iter())
            .chain(self.iq_fp.iter())
        {
            count(e.tid, e.seq);
        }
        c
    }

    /// Thread ids in fetch-priority order under the configured policy.
    ///
    /// Each thread's sort key is packed into one `u64` — the policy metric
    /// in the high bits, the *rotated* thread id below it, the thread id
    /// itself in the low byte for recovery — so the per-cycle sort compares
    /// single words. The rotated id is unique per thread, so keys are unique
    /// and the unstable (allocation-free) sort is deterministic; the metric
    /// is bounded by the window size (≪ 2⁴⁸), so the fields never collide.
    fn priorities(&self) -> Priorities {
        let n = self.threads.len();
        let mut tids = [0usize; MAX_THREADS];
        if n == 1 {
            return Priorities { tids, len: 1 };
        }
        let rot = (self.cycle as usize) % n;
        let now = self.cycle;
        let pack = |metric: u64, t: usize| {
            debug_assert!(metric < 1 << 48);
            (metric << 16) | ((((t + n - rot) % n) as u64) << 8) | t as u64
        };
        let mut keys = [0u64; MAX_THREADS];
        match self.cfg.fetch_policy.kind {
            PolicyKind::Icount => {
                debug_assert_eq!(
                    self.icounts(),
                    self.preissue,
                    "incremental ICOUNT counters diverged from the queues"
                );
                for (t, k) in keys.iter_mut().enumerate().take(n) {
                    *k = pack(self.preissue[t] as u64, t);
                }
            }
            PolicyKind::RoundRobin => {
                // A pure rotation: construct the order directly.
                for (i, slot) in tids.iter_mut().enumerate().take(n) {
                    *slot = (rot + i) % n;
                }
                return Priorities { tids, len: n };
            }
            PolicyKind::BrCount => {
                let bc = self.brcounts();
                for (t, k) in keys.iter_mut().enumerate().take(n) {
                    *k = pack(bc[t] as u64, t);
                }
            }
            PolicyKind::MissCount => {
                for (t, th) in self.threads.iter().enumerate() {
                    let mc = th.outstanding_misses.iter().filter(|&&r| r > now).count();
                    keys[t] = pack(mc as u64, t);
                }
            }
        }
        keys[..n].sort_unstable();
        for (slot, &k) in tids.iter_mut().zip(keys.iter()).take(n) {
            *slot = (k & 0xff) as usize;
        }
        Priorities { tids, len: n }
    }

    /// Whether STALL/FLUSH gating blocks `tid` from front-end service.
    fn gated(&self, tid: usize) -> bool {
        self.cfg.fetch_policy.long_latency != LongLatencyAction::None
            && self.threads[tid]
                .mem_stall_until
                .is_some_and(|until| until > self.cycle)
    }

    // ----- predict stage ----------------------------------------------

    fn predict_stage(&mut self) {
        let ports = self.cfg.fetch_policy.threads_per_cycle as usize;
        let width = self.cfg.fetch_policy.width;
        let ftq_depth = self.cfg.ftq_depth as usize;
        let gating = self.cfg.fetch_policy.long_latency != LongLatencyAction::None;
        let now = self.cycle;
        let order = self.priorities();
        // Split the borrows by field so the engine can read the thread's
        // program while updating its speculative state — no per-thread
        // `Program` clone, no per-cycle block Vec.
        let Simulator {
            engine,
            threads,
            predict_scratch,
            stats,
            ..
        } = self;
        let mut served = 0usize;
        for &tid in order.order() {
            if served == ports {
                break;
            }
            let th = &mut threads[tid];
            let gated = gating && th.mem_stall_until.is_some_and(|until| until > now);
            if th.ftq.len() >= ftq_depth || gated {
                continue;
            }
            let pc = th.next_fetch_pc;
            let space = ftq_depth - th.ftq.len();
            predict_scratch.clear();
            engine.predict_blocks_into(
                tid,
                pc,
                &mut th.spec,
                th.walker.program(),
                width,
                space,
                predict_scratch,
            );
            debug_assert!(!predict_scratch.is_empty() && predict_scratch.len() <= space);
            th.next_fetch_pc = predict_scratch.last().expect("non-empty").block.next_fetch;
            stats.blocks_predicted += predict_scratch.len() as u64;
            for &pb in predict_scratch.iter() {
                th.ftq.push_back(FtqEntry { pb, consumed: 0 });
            }
            served += 1;
        }
    }

    // ----- fetch stage --------------------------------------------------

    fn fetch_stage(&mut self) {
        let now = self.cycle;
        let ports = self.cfg.fetch_policy.threads_per_cycle as usize;
        let mut budget = self.cfg.fetch_policy.width;
        let order = self.priorities();
        let mut banks_used = BankSet::new();
        let mut delivered_total = 0u32;
        let mut attempted = false;
        let mut buffer_full_seen = false;
        let mut port = 0usize;
        for &tid in order.order() {
            if port == ports || budget == 0 {
                break;
            }
            if !self.threads[tid].fetch_eligible(now) || self.gated(tid) {
                continue;
            }
            if self.fetch_buffer.len() >= self.cfg.fetch_buffer as usize {
                buffer_full_seen = true;
                break;
            }
            let is_second = port > 0;
            let (got, did_attempt) = self.fetch_from(tid, budget, &mut banks_used, is_second);
            attempted |= did_attempt;
            delivered_total += got;
            budget -= got;
            port += 1;
        }
        if attempted {
            self.stats.fetch_cycles += 1;
            self.stats.distribution.record(delivered_total);
        }
        if buffer_full_seen {
            self.stats.fetch_buffer_stalls += 1;
        }
    }

    /// Fetches up to `budget` instructions from `tid`'s FTQ head.
    ///
    /// Returns `(instructions delivered, whether an I-cache access was
    /// attempted)`.
    fn fetch_from(
        &mut self,
        tid: usize,
        budget: u32,
        banks_used: &mut BankSet,
        second_port: bool,
    ) -> (u32, bool) {
        let now = self.cycle;
        let mut budget = budget;
        let mut delivered = 0u32;
        let mut attempted = false;
        let mut current_group: Option<u64> = None;
        // A port normally consumes (part of) one FTQ entry per cycle — one
        // I-cache access. Blocks sharing a trace-cache line are the
        // exception: the trace storage supplies them all in one access.
        loop {
            let room = self.cfg.fetch_buffer as usize - self.fetch_buffer.len();
            let Some(entry) = self.threads[tid].ftq.front() else {
                break;
            };
            let group = entry.pb.trace_group;
            if delivered > 0 && (group.is_none() || group != current_group) {
                break;
            }
            current_group = group;
            let is_trace = group.is_some();
            let start_pc = entry.pb.block.start.add_insts(entry.consumed as u64);
            let want = budget.min(entry.remaining()).min(room as u32);
            if want == 0 {
                break;
            }

            let mut allowed = want;
            if is_trace {
                // Trace-cache hit: instructions come from the trace line,
                // no conventional I-cache access or bank constraint.
                attempted = true;
            } else {
                // Touch every I-cache line the delivery spans (at most a
                // few: the per-cycle budget is ≤ 16 instructions = one line).
                let first_line = start_pc.line(LINE_BYTES);
                let last_line = start_pc.add_insts(want as u64 - 1).line(LINE_BYTES);
                let mut line = first_line;
                loop {
                    let insts_before_line = if line.raw() <= start_pc.raw() {
                        0
                    } else {
                        ((line.raw() - start_pc.raw()) / 4) as u32
                    };
                    let bank = line.bank(LINE_BYTES, 8);
                    if second_port && banks_used.contains(bank) {
                        // Figure 3's bank-conflict logic: the lower-priority
                        // thread loses the conflicting access this cycle.
                        self.stats.bank_conflicts += 1;
                        allowed = allowed.min(insts_before_line);
                        break;
                    }
                    attempted = true;
                    match self.mem.fetch(line, now) {
                        FetchOutcome::Hit => {
                            banks_used.push(bank);
                        }
                        FetchOutcome::Miss { ready } => {
                            self.threads[tid].iblock_until = Some(ready);
                            allowed = allowed.min(insts_before_line);
                            break;
                        }
                        FetchOutcome::Stall => {
                            allowed = allowed.min(insts_before_line);
                            break;
                        }
                    }
                    if line == last_line {
                        break;
                    }
                    line += LINE_BYTES;
                }
            }

            if allowed == 0 {
                break;
            }
            self.deliver(tid, allowed);
            delivered += allowed;
            budget -= allowed;
            // Continue across FTQ entries only within one trace line.
            if !is_trace || budget == 0 {
                break;
            }
            // If the thread diverged mid-trace, stop early; the remaining
            // entries are squashed territory.
            if self.threads[tid].diverged {
                break;
            }
        }
        (delivered, attempted)
    }

    /// Delivers `n` instructions from `tid`'s FTQ head into the window and
    /// the fetch buffer, consulting the oracle walker.
    fn deliver(&mut self, tid: usize, n: u32) {
        let now = self.cycle;
        let th = &mut self.threads[tid];
        let entry = *th.ftq.front().expect("caller checked");
        let block = entry.pb.block;
        for i in 0..n {
            let idx_in_block = entry.consumed + i;
            let pc = block.start.add_insts(idx_in_block as u64);
            let is_last = idx_in_block == block.len - 1;
            let is_end = is_last && block.end_branch.is_some();
            let spec_next = if is_last {
                block.next_fetch
            } else {
                pc.add_insts(1)
            };

            let on_oracle = !th.diverged && th.walker.pc() == pc;
            let di = if on_oracle {
                th.walker.next_inst()
            } else {
                let (spec_taken, spec_target) = if is_end {
                    let eb = block.end_branch.expect("is_end");
                    (eb.predicted_taken, eb.predicted_target)
                } else {
                    (false, smt_isa::Addr::NULL)
                };
                th.walker.wrong_path(pc, spec_taken, spec_target)
            };

            let mut mispredicted = false;
            if on_oracle && di.next_pc != spec_next {
                mispredicted = true;
                th.diverged = true;
                debug_assert!(th.pending_redirect.is_none());
                th.pending_redirect = Some(th.next_seq);
                self.stats.control_mispredicts += 1;
            }
            // Misfetches a decoder can catch without executing: a direct
            // unconditional branch whose (static) target disagrees with the
            // speculative path, or a "branch" slot holding a non-branch.
            let decode_redirect = mispredicted
                && (matches!(
                    di.class,
                    InstClass::Branch(smt_isa::BranchKind::Jump)
                        | InstClass::Branch(smt_isa::BranchKind::Call)
                ) || !di.class.is_branch());

            let binfo = if di.class.is_branch() || mispredicted {
                Some(BranchInfo {
                    block_start: block.start,
                    is_end,
                    spec_taken: if is_end {
                        block.end_branch.map(|e| e.predicted_taken).unwrap_or(false)
                    } else {
                        false
                    },
                    spec_next,
                    mispredicted,
                    decode_redirect,
                    meta: entry.pb.meta,
                })
            } else {
                None
            };

            let seq = th.next_seq;
            th.next_seq += 1;
            if di.wrong_path {
                self.stats.fetched_wrong_path += 1;
            }
            self.stats.fetched += 1;
            th.window.push_back(InFlight {
                seq,
                di,
                binfo,
                fetched_at: now,
                dispatched: false,
                issued: false,
                done_at: 0,
                phys_dest: None,
                prev_phys: None,
                src_phys: [None, None],
            });
            self.fetch_buffer.push_back(LatchEntry {
                tid,
                seq,
                entered: now,
            });
        }
        let e = th.ftq.front_mut().expect("caller checked");
        e.consumed += n;
        if e.consumed == e.pb.block.len {
            th.ftq.pop_front();
        }
        // Each delivered instruction occupies one fetch-buffer slot.
        self.preissue[tid] += n;
    }

    // ----- decode / rename ----------------------------------------------

    fn decode_stage(&mut self) {
        let now = self.cycle;
        let width = self.cfg.decode_width as usize;
        let mut moved = 0;
        while moved < width
            && self.decode_latch.len() < width
            && self.fetch_buffer.front().is_some_and(|e| e.entered < now)
        {
            let mut e = self.fetch_buffer.pop_front().expect("checked");
            e.entered = now;
            self.decode_latch.push_back(e);
            moved += 1;
        }
    }

    fn rename_stage(&mut self) {
        let now = self.cycle;
        let width = self.cfg.decode_width as usize;
        let mut moved = 0;
        while moved < width
            && self.rename_latch.len() < width
            && self.decode_latch.front().is_some_and(|e| e.entered < now)
        {
            let mut e = self.decode_latch.pop_front().expect("checked");
            e.entered = now;
            self.rename_latch.push_back(e);
            moved += 1;
        }
    }

    // ----- dispatch -------------------------------------------------------

    fn queue_for(class: InstClass) -> usize {
        match class {
            InstClass::Load | InstClass::Store => 1,
            InstClass::FpAlu => 2,
            _ => 0,
        }
    }

    fn dispatch_stage(&mut self) {
        let now = self.cycle;
        let mut budget = self.cfg.decode_width;
        let mut stalled = [false; MAX_THREADS];
        // Drain the latch through the persistent scratch buffer and refill
        // it with the kept entries (same order), so the per-cycle filter
        // allocates nothing.
        let mut kept = std::mem::take(&mut self.latch_scratch);
        debug_assert!(kept.is_empty());
        while let Some(e) = self.rename_latch.pop_front() {
            if budget == 0 || stalled[e.tid] || e.entered >= now {
                kept.push(e);
                continue;
            }
            // The window entry may have been squashed since renaming began.
            let Some((class, dest, srcs)) = self.threads[e.tid]
                .inst(e.seq)
                .map(|i| (i.di.class, i.di.dest, i.di.srcs))
            else {
                // The entry evaporates: it left the pre-issue structures
                // without moving to an issue queue.
                self.preissue[e.tid] -= 1;
                continue;
            };
            // Resource checks: shared ROB, issue-queue slot, physical
            // register.
            if self.rob_occ >= self.cfg.rob_size {
                stalled[e.tid] = true;
                kept.push(e);
                continue;
            }
            let (qlen, qcap) = match Self::queue_for(class) {
                0 => (self.iq_int.len(), self.cfg.iq_int as usize),
                1 => (self.iq_ls.len(), self.cfg.iq_ls as usize),
                _ => (self.iq_fp.len(), self.cfg.iq_fp as usize),
            };
            if qlen >= qcap {
                stalled[e.tid] = true;
                kept.push(e);
                continue;
            }
            let need_reg = dest.map(|d| d.class());
            let have_reg = match need_reg {
                Some(RegClass::Int) => !self.free_int.is_empty(),
                Some(RegClass::Fp) => !self.free_fp.is_empty(),
                None => true,
            };
            if !have_reg {
                stalled[e.tid] = true;
                kept.push(e);
                continue;
            }

            // Rename: sources first, then the destination.
            let map = &self.threads[e.tid].rename_map;
            let src_phys = [
                srcs[0].map(|r| map[r.flat_index()]),
                srcs[1].map(|r| map[r.flat_index()]),
            ];
            let (phys_dest, prev_phys) = match dest {
                Some(d) => {
                    let new = match d.class() {
                        RegClass::Int => self.free_int.pop().expect("checked"),
                        RegClass::Fp => self.free_fp.pop().expect("checked"),
                    };
                    self.ready_at[new as usize] = u64::MAX;
                    let prev = self.threads[e.tid].rename_map[d.flat_index()];
                    self.threads[e.tid].rename_map[d.flat_index()] = new;
                    (Some(new), Some(prev))
                }
                None => (None, None),
            };
            {
                let inst = self.threads[e.tid].inst_mut(e.seq).expect("present");
                inst.dispatched = true;
                inst.phys_dest = phys_dest;
                inst.prev_phys = prev_phys;
                inst.src_phys = src_phys;
            }
            self.rob_occ += 1;
            let iq = IqEntry {
                tid: e.tid,
                seq: e.seq,
                entered: now,
            };
            match Self::queue_for(class) {
                0 => self.iq_int.push(iq),
                1 => self.iq_ls.push(iq),
                _ => self.iq_fp.push(iq),
            }
            budget -= 1;
        }
        self.rename_latch.extend(kept.drain(..));
        self.latch_scratch = kept;
    }

    // ----- issue / execute ------------------------------------------------

    fn issue_stage(&mut self) {
        self.issue_queue(0);
        self.issue_queue(1);
        self.issue_queue(2);
        // Take/restore rather than drain-by-value so the buffer keeps its
        // capacity across cycles (flush_after_load never requests flushes).
        let mut flushes = std::mem::take(&mut self.pending_flushes);
        for &(tid, load_seq) in &flushes {
            self.flush_after_load(tid, load_seq);
        }
        debug_assert!(self.pending_flushes.is_empty());
        flushes.clear();
        self.pending_flushes = flushes;
    }

    /// Tullsen & Brown's FLUSH: squash the thread's instructions younger
    /// than the long-latency load (from the first subsequent fetch block
    /// on), freeing the shared queues it would otherwise clog, and rewind
    /// the oracle so they are re-fetched when the miss returns.
    fn flush_after_load(&mut self, tid: usize, load_seq: u64) {
        // A diverged thread's younger instructions are wrong-path and will
        // be reclaimed by the normal redirect; flushing would fight it.
        if self.threads[tid].diverged {
            return;
        }
        // The flush boundary is the first branch after the load: its block
        // checkpoint describes the exact front-end state to restore.
        let boundary = {
            let th = &self.threads[tid];
            let head = match th.window.front() {
                Some(h) => h.seq,
                None => return,
            };
            let start = (load_seq + 1).max(head);
            th.window
                .iter()
                .skip((start - head) as usize)
                .find(|i| i.binfo.is_some())
                .map(|i| (i.seq, i.binfo.as_ref().expect("checked").meta))
        };
        let Some((flush_seq, meta)) = boundary else {
            return; // nothing younger worth flushing
        };

        let mut freed_rob = 0u32;
        let mut rolled = 0u64;
        {
            let th = &mut self.threads[tid];
            while th.window.back().is_some_and(|b| b.seq >= flush_seq) {
                let inst = th.window.pop_back().expect("checked");
                debug_assert!(!inst.di.wrong_path, "flush on an undiverged thread");
                rolled += 1;
                self.stats.squashed += 1;
                if inst.dispatched {
                    freed_rob += 1;
                    if let Some(dest) = inst.di.dest {
                        let newp = inst.phys_dest.expect("dispatched with dest");
                        th.rename_map[dest.flat_index()] =
                            inst.prev_phys.expect("dispatched with dest");
                        match dest.class() {
                            RegClass::Int => self.free_int.push(newp),
                            RegClass::Fp => self.free_fp.push(newp),
                        }
                    }
                }
            }
        }
        if rolled == 0 {
            return;
        }
        self.rob_occ -= freed_rob;
        // As in `squash_after`: all removed entries belong to `tid`.
        let before = self.preissue_live();
        self.fetch_buffer
            .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
        self.decode_latch
            .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
        self.rename_latch
            .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
        self.iq_int
            .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
        self.iq_ls.retain(|e| !(e.tid == tid && e.seq >= flush_seq));
        self.iq_fp.retain(|e| !(e.tid == tid && e.seq >= flush_seq));
        self.preissue[tid] -= (before - self.preissue_live()) as u32;

        let th = &mut self.threads[tid];
        th.walker.rollback(rolled);
        th.spec.hist = meta.hist;
        th.spec.ras.restore(meta.ras);
        th.spec.path = meta.path;
        th.spec.stream_start = meta.stream_start;
        th.ftq.clear();
        th.iblock_until = None;
        th.next_seq = flush_seq;
        th.next_fetch_pc = th.walker.pc();
        debug_assert!(th.pending_redirect.is_none());
        self.stats.flushes += 1;
    }

    fn issue_queue(&mut self, which: usize) {
        let now = self.cycle;
        let fu_limit = match which {
            0 => self.cfg.fu_int,
            1 => self.cfg.fu_ls,
            _ => self.cfg.fu_fp,
        };
        let mut queue = std::mem::take(match which {
            0 => &mut self.iq_int,
            1 => &mut self.iq_ls,
            _ => &mut self.iq_fp,
        });
        // In-place two-pointer compaction: `kept` trails the read index, so
        // surviving entries shift down in order and the queue Vec is reused
        // without a per-cycle allocation.
        let mut kept = 0usize;
        let mut issued = 0u32;
        let len = queue.len();
        for idx in 0..len {
            let e = queue[idx];
            if issued == fu_limit || e.entered >= now {
                // Entries append in dispatch order, so `entered` is
                // non-decreasing along the queue, and an exhausted FU limit
                // stays exhausted: the whole tail is kept verbatim.
                queue.copy_within(idx..len, kept);
                kept += len - idx;
                break;
            }
            // Squashed entries evaporate.
            let Some(inst) = self.threads[e.tid].inst(e.seq) else {
                self.preissue[e.tid] -= 1;
                continue;
            };
            let ready = inst
                .src_phys
                .iter()
                .flatten()
                .all(|&p| self.ready_at[p as usize] <= now);
            if !ready {
                queue[kept] = e;
                kept += 1;
                continue;
            }
            let class = inst.di.class;
            let mem_addr = inst.di.mem.map(|m| m.addr);
            let wrong_path = inst.di.wrong_path;
            let done_at = match class {
                InstClass::Load => {
                    let addr = mem_addr.expect("loads carry addresses");
                    match self.mem.load(addr, now) {
                        DataOutcome::Stall => {
                            queue[kept] = e;
                            kept += 1;
                            continue;
                        }
                        DataOutcome::Done { ready } => {
                            let done = ready.max(now) + 1;
                            // Long-latency (memory) miss detection for the
                            // MISSCOUNT metric and STALL/FLUSH mechanisms.
                            // Only correct-path loads arm the mechanisms.
                            if done - now > LONG_LATENCY && !wrong_path {
                                // Drop expired entries first: consumers only
                                // ever count `> now`, and this keeps the list
                                // bounded by the in-flight load count (so the
                                // pre-sized capacity is never exceeded).
                                let th = &mut self.threads[e.tid];
                                th.outstanding_misses.retain(|&r| r > now);
                                th.outstanding_misses.push(done);
                                match self.cfg.fetch_policy.long_latency {
                                    LongLatencyAction::None => {}
                                    LongLatencyAction::Stall => {
                                        let th = &mut self.threads[e.tid];
                                        th.mem_stall_until =
                                            Some(th.mem_stall_until.unwrap_or(0).max(done));
                                    }
                                    LongLatencyAction::Flush => {
                                        let th = &mut self.threads[e.tid];
                                        th.mem_stall_until =
                                            Some(th.mem_stall_until.unwrap_or(0).max(done));
                                        self.pending_flushes.push((e.tid, e.seq));
                                    }
                                }
                            }
                            done
                        }
                    }
                }
                other => now + other.default_latency(),
            };
            {
                let inst = self.threads[e.tid].inst_mut(e.seq).expect("present");
                inst.issued = true;
                inst.done_at = done_at;
                if let Some(p) = inst.phys_dest {
                    self.ready_at[p as usize] = done_at;
                }
            }
            issued += 1;
            // Issued entries leave the pre-issue structures.
            self.preissue[e.tid] -= 1;
        }
        queue.truncate(kept);
        match which {
            0 => self.iq_int = queue,
            1 => self.iq_ls = queue,
            _ => self.iq_fp = queue,
        }
    }

    // ----- resolve (branch redirect) ---------------------------------------

    fn resolve_stage(&mut self) {
        let now = self.cycle;
        for tid in 0..self.threads.len() {
            let Some(seq) = self.threads[tid].pending_redirect else {
                continue;
            };
            let resolved = self.threads[tid]
                .inst(seq)
                .map(|i| {
                    // Decode-detectable misfetches redirect as soon as the
                    // instruction reaches decode (one stage after fetch);
                    // everything else waits for execution.
                    let decode_ok = i.binfo.as_ref().map(|b| b.decode_redirect).unwrap_or(false)
                        && now >= i.fetched_at + 2;
                    decode_ok || i.completed(now)
                })
                .unwrap_or(false);
            if resolved {
                self.squash_after(tid, seq);
            }
        }
    }

    /// Squashes everything younger than `seq` in thread `tid` and redirects
    /// its front end to the oracle path.
    fn squash_after(&mut self, tid: usize, seq: u64) {
        // Extract the branch's recovery info first (both payloads are
        // `Copy`, so this is a plain read).
        let (di, binfo) = {
            let inst = self.threads[tid].inst(seq).expect("redirect target alive");
            (inst.di, inst.binfo.expect("diverging inst carries info"))
        };
        // Roll the window back, youngest first, undoing renames.
        let mut freed_rob = 0u32;
        {
            let th = &mut self.threads[tid];
            while th.window.back().is_some_and(|b| b.seq > seq) {
                let inst = th.window.pop_back().expect("checked");
                self.stats.squashed += 1;
                if inst.dispatched {
                    freed_rob += 1;
                    if let Some(dest) = inst.di.dest {
                        let newp = inst.phys_dest.expect("dispatched with dest");
                        th.rename_map[dest.flat_index()] =
                            inst.prev_phys.expect("dispatched with dest");
                        match dest.class() {
                            RegClass::Int => self.free_int.push(newp),
                            RegClass::Fp => self.free_fp.push(newp),
                        }
                    }
                }
            }
        }
        self.rob_occ -= freed_rob;
        // Every removed entry belongs to `tid`, so the length delta is the
        // thread's pre-issue count adjustment.
        let before = self.preissue_live();
        self.fetch_buffer.retain(|e| !(e.tid == tid && e.seq > seq));
        self.decode_latch.retain(|e| !(e.tid == tid && e.seq > seq));
        self.rename_latch.retain(|e| !(e.tid == tid && e.seq > seq));
        self.iq_int.retain(|e| !(e.tid == tid && e.seq > seq));
        self.iq_ls.retain(|e| !(e.tid == tid && e.seq > seq));
        self.iq_fp.retain(|e| !(e.tid == tid && e.seq > seq));
        self.preissue[tid] -= (before - self.preissue_live()) as u32;

        // Repair the speculative front-end state and redirect.
        self.engine.repair(&mut self.threads[tid].spec, &binfo, &di);
        let th = &mut self.threads[tid];
        th.ftq.clear();
        th.diverged = false;
        th.iblock_until = None;
        th.pending_redirect = None;
        // Squashed sequence numbers are reused: every structure was purged
        // of them above, and window lookups rely on `seq` being contiguous.
        th.next_seq = seq + 1;
        th.next_fetch_pc = th.walker.pc();
        debug_assert_eq!(th.next_fetch_pc, di.next_pc, "oracle redirect mismatch");
    }

    // ----- commit ----------------------------------------------------------

    fn commit_stage(&mut self) {
        let now = self.cycle;
        let n = self.threads.len();
        let mut budget = self.cfg.commit_width;
        let start = (self.cycle as usize) % n;
        for k in 0..n {
            let tid = (start + k) % n;
            while budget > 0 {
                let committable = {
                    let th = &self.threads[tid];
                    th.window
                        .front()
                        .map(|i| i.dispatched && i.completed(now))
                        .unwrap_or(false)
                };
                if !committable {
                    break;
                }
                let inst = self.threads[tid].window.pop_front().expect("checked");
                debug_assert!(!inst.di.wrong_path, "wrong-path instruction reached commit");
                self.rob_occ -= 1;
                if let Some(prev) = inst.prev_phys {
                    let dest = inst.di.dest.expect("prev implies dest");
                    match dest.class() {
                        RegClass::Int => self.free_int.push(prev),
                        RegClass::Fp => self.free_fp.push(prev),
                    }
                }
                self.stats.committed[tid] += 1;
                budget -= 1;

                if inst.di.class == InstClass::Store {
                    let addr = inst.di.mem.expect("stores carry addresses").addr;
                    self.mem.store(addr, now);
                }

                // Trace-cache fill unit (no-op for other engines).
                {
                    let hist_end = self.threads[tid].commit_hist_end;
                    let mut fill = std::mem::take(&mut self.threads[tid].trace_fill);
                    self.engine.trace_fill_commit(&mut fill, &inst.di, hist_end);
                    self.threads[tid].trace_fill = fill;
                }
                if inst.di.is_cond_branch()
                    && inst.binfo.as_ref().map(|b| b.is_end).unwrap_or(false)
                {
                    let th = &mut self.threads[tid];
                    th.commit_hist_end = (th.commit_hist_end << 1) | inst.di.taken as u64;
                }

                // Branch training and stream bookkeeping.
                self.threads[tid].commit_stream_len += 1;
                if inst.di.is_branch() {
                    if let Some(info) = &inst.binfo {
                        self.engine.train_resolve(info, &inst.di);
                        if inst.di.is_cond_branch() {
                            self.stats.cond_branches += 1;
                            if info.spec_taken != inst.di.taken {
                                self.stats.cond_mispredicts += 1;
                            }
                            if info.is_end {
                                let bits = info.meta.hist.len().min(16);
                                let mask = (1u64 << bits) - 1;
                                if info.meta.hist.bits() & mask
                                    != self.threads[tid].commit_hist & mask
                                {
                                    self.stats.hist_mismatches += 1;
                                    // Counter check first: the env lookup
                                    // (which may allocate) then runs at most
                                    // six times per measurement window.
                                    if self.stats.hist_mismatches <= 6
                                        && std::env::var_os("SMT_DEBUG_HIST").is_some()
                                    {
                                        eprintln!(
                                            "hist mismatch @cycle {} t{} pc {} ckpt {:016b} arch {:016b} taken {} spec_taken {}",
                                            now, tid, inst.di.pc,
                                            info.meta.hist.bits() & mask,
                                            self.threads[tid].commit_hist & mask,
                                            inst.di.taken, info.spec_taken
                                        );
                                    }
                                }
                            }
                        }
                    }
                    if inst.di.is_cond_branch() {
                        let th = &mut self.threads[tid];
                        th.commit_hist = (th.commit_hist << 1) | inst.di.taken as u64;
                    }
                    if inst.di.taken {
                        let kind = inst.di.class.branch_kind().expect("branch");
                        let (start_addr, path, len) = {
                            let th = &self.threads[tid];
                            (th.commit_stream_start, th.cpath, th.commit_stream_len)
                        };
                        self.engine.train_stream_commit(
                            start_addr,
                            &path,
                            ObservedStream {
                                len,
                                kind,
                                target: inst.di.next_pc,
                            },
                        );
                        let th = &mut self.threads[tid];
                        th.cpath.push(start_addr);
                        th.commit_stream_start = inst.di.next_pc;
                        th.commit_stream_len = 0;
                    }
                }
            }
            if budget == 0 {
                break;
            }
        }
    }
}

impl Simulator {
    /// Prints a debugging snapshot of the pipeline (intended for examples
    /// and interactive debugging, not part of the stable API).
    #[doc(hidden)]
    pub fn dump_state(&self) {
        println!(
            "cycle {} rob_occ {} fb {} dl {} rl {} iq {}/{}/{} free {}/{}",
            self.cycle,
            self.rob_occ,
            self.fetch_buffer.len(),
            self.decode_latch.len(),
            self.rename_latch.len(),
            self.iq_int.len(),
            self.iq_ls.len(),
            self.iq_fp.len(),
            self.free_int.len(),
            self.free_fp.len()
        );
        for th in &self.threads {
            println!("t{}: window {} pending {:?} diverged {} iblock {:?} ftq {} next_pc {} walker_pc {}",
                th.id, th.window.len(), th.pending_redirect, th.diverged, th.iblock_until,
                th.ftq.len(), th.next_fetch_pc, th.walker.pc());
            if let Some(h) = th.window.front() {
                println!(
                    "   head: seq {} {} dispatched {} issued {} done {} wp {}",
                    h.seq, h.di, h.dispatched, h.issued, h.done_at, h.di.wrong_path
                );
            }
            if let Some(seq) = th.pending_redirect {
                if let Some(i) = th.inst(seq) {
                    println!(
                        "   redirect: seq {} {} dispatched {} issued {} done {} srcs {:?}",
                        i.seq, i.di, i.dispatched, i.issued, i.done_at, i.src_phys
                    );
                } else {
                    println!("   redirect inst MISSING");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::Workload;

    fn sim(engine: FetchEngineKind, policy: FetchPolicy) -> Simulator {
        SimBuilder::new(Workload::mix2().programs(3).expect("programs"))
            .fetch_engine(engine)
            .fetch_policy(policy)
            .build()
            .expect("build")
    }

    #[test]
    fn reset_stats_keeps_microarchitectural_state() {
        let mut s = sim(FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 8));
        s.run_cycles(5_000);
        let committed_before = s.stats().total_committed();
        assert!(committed_before > 0);
        s.reset_stats();
        assert_eq!(s.stats().total_committed(), 0);
        assert_eq!(s.stats().cycles, 0);
        // State survived: the machine keeps committing immediately, at a
        // rate at least as good as the cold start (warm predictors/caches).
        let warm = s.run_cycles(5_000);
        assert!(warm.total_committed() >= committed_before / 2);
        assert_eq!(warm.cycles, 5_000);
    }

    #[test]
    fn accessors_report_configuration() {
        let s = sim(FetchEngineKind::Stream, FetchPolicy::icount(2, 16));
        assert_eq!(s.engine_kind(), FetchEngineKind::Stream);
        assert_eq!(s.num_threads(), 2);
        assert_eq!(s.config().fetch_policy.width, 16);
        assert_eq!(s.cycle(), 0);
        assert!(matches!(s.engine(), Engine::Stream { .. }));
    }

    #[test]
    fn step_advances_exactly_one_cycle() {
        let mut s = sim(FetchEngineKind::GskewFtb, FetchPolicy::icount(1, 8));
        for expect in 1..=10u64 {
            s.step();
            assert_eq!(s.cycle(), expect);
        }
    }

    #[test]
    fn window_stays_contiguous_under_squashes() {
        // Run long enough to take many squash/redirect cycles and verify
        // the per-thread window sequence-number invariant the O(1) lookup
        // relies on.
        let mut s = sim(FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
        for _ in 0..200 {
            s.run_cycles(50);
            for th in &s.threads {
                let mut prev = None;
                for inst in th.window.iter() {
                    if let Some(p) = prev {
                        assert_eq!(inst.seq, p + 1, "window gap in thread {}", th.id);
                    }
                    prev = Some(inst.seq);
                }
            }
        }
        assert!(s.stats().squashed > 0, "test never exercised a squash");
    }

    #[test]
    fn physical_registers_are_conserved() {
        // free + in-flight-held + architectural = total, at every point.
        let mut s = sim(FetchEngineKind::Stream, FetchPolicy::icount(2, 16));
        let arch = 2 * smt_isa::ArchReg::flat_count() / 2; // 64 per thread
        let _ = arch;
        for _ in 0..100 {
            s.run_cycles(100);
            let held: usize = s
                .threads
                .iter()
                .flat_map(|t| t.window.iter())
                .filter(|i| i.dispatched && i.phys_dest.is_some())
                .count();
            let mapped = 2 * smt_isa::ArchReg::flat_count();
            let total = s.free_int.len() + s.free_fp.len() + held + mapped;
            assert_eq!(
                total,
                (s.cfg.regs_int + s.cfg.regs_fp) as usize,
                "register leak or double-free"
            );
        }
    }
}
