//! The SMT out-of-order pipeline simulator.
//!
//! A 9-stage decoupled pipeline, cycle by cycle:
//!
//! ```text
//! predict → [FTQ] → fetch → [fetch buffer] → decode → rename → dispatch
//!          → [issue queues] → issue/execute → writeback → commit
//! ```
//!
//! The prediction stage and the fetch stage are decoupled through per-thread
//! fetch target queues (the paper's §4 modification of SMTSIM, after
//! Reinman et al. and Falcón et al. [7]); the fetch policy (ICOUNT) selects
//! both the thread the predictor serves and the FTQ(s) the fetch stage
//! drains. The fetch stage implements both architectures of the paper:
//! **1.X** (Figure 1: one thread per cycle, single I-cache port) and **2.X**
//! (Figure 3: two threads, two ports, bank-conflict logic, merge).
//!
//! Each stage lives in [`crate::pipeline`] as its own `PipelineStage`
//! struct; the `Simulator` here is the thin composition root: it builds the
//! shared `PipelineCtx`, owns the stage structs, and ticks them in reverse
//! pipeline order every [`Simulator::step`].

// Construction asserts a handful of internal invariants with `expect`
// (enough registers for the initial maps); inputs are validated first.
// lint:allow-file(no-panic): construction-time invariants; inputs are validated first

use std::collections::VecDeque;
use std::sync::Arc;

use smt_bpred::ReturnStack;
use smt_isa::{ArchReg, Cycle, Diagnostic, MAX_THREADS};
use smt_mem::MemoryHierarchy;
use smt_workloads::Program;

use crate::config::{FetchEngineKind, FetchPolicy, SimConfig};
use crate::frontend::{AnyFrontEnd, FrontEnd};
use crate::metrics::SimStats;
use crate::pipeline::{
    attribute_stalls, CommitStage, DecodeStage, DispatchStage, FetchStage, IssueStage, PipelineCtx,
    PipelineStage, PredictStage, RenameStage, ResolveStage,
};
use crate::thread::ThreadState;
use crate::window::PhysReg;

/// Error constructing a [`Simulator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No programs were supplied.
    NoThreads,
    /// More programs than hardware contexts.
    TooManyThreads {
        /// Programs supplied.
        got: usize,
    },
    /// The configuration failed semantic validation
    /// ([`SimConfig::validate_for_threads`]); the diagnostics describe
    /// every error found.
    InvalidConfig(Vec<Diagnostic>),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoThreads => write!(f, "workload has no programs"),
            BuildError::TooManyThreads { got } => {
                write!(
                    f,
                    "workload has {got} programs but at most {MAX_THREADS} contexts"
                )
            }
            BuildError::InvalidConfig(diags) => {
                write!(f, "configuration failed validation:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Simulator`].
///
/// # Example
///
/// ```
/// use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder};
/// use smt_workloads::Workload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = SimBuilder::new(Workload::mix2().programs(1)?)
///     .fetch_engine(FetchEngineKind::GskewFtb)
///     .fetch_policy(FetchPolicy::icount(2, 8))
///     .build()?;
/// let stats = sim.run_cycles(5_000);
/// assert!(stats.total_committed() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimBuilder {
    programs: Vec<Arc<Program>>,
    engine: FetchEngineKind,
    cfg: SimConfig,
}

impl SimBuilder {
    /// Starts a builder for the given per-thread programs.
    pub fn new(programs: Vec<Program>) -> Self {
        SimBuilder::new_shared(programs.into_iter().map(Arc::new).collect())
    }

    /// Starts a builder for already-shared per-thread programs.
    ///
    /// Programs are immutable once built, so sweep cells (and threads
    /// running the same binary) can hand the same `Arc` to many simulators
    /// instead of deep-cloning megabytes of instruction and behavior
    /// tables per cell.
    pub fn new_shared(programs: Vec<Arc<Program>>) -> Self {
        SimBuilder {
            programs,
            engine: FetchEngineKind::GshareBtb,
            cfg: SimConfig::default(),
        }
    }

    /// Selects the fetch engine (default: gshare+BTB).
    pub fn fetch_engine(mut self, kind: FetchEngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Selects the fetch policy (default: `ICOUNT.1.8`).
    pub fn fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.cfg.fetch_policy = policy;
        self
    }

    /// Replaces the whole configuration (Table 3 values by default).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Fails if no programs or more than [`MAX_THREADS`] were supplied.
    pub fn build(self) -> Result<Simulator, BuildError> {
        Simulator::new(self.programs, self.engine, self.cfg)
    }
}

/// The SMT processor simulator: the shared pipeline context plus the eight
/// stage structs, ticked in reverse pipeline order each cycle.
#[derive(Clone, Debug)]
pub struct Simulator {
    pub(crate) ctx: PipelineCtx,
    pub(crate) resolve: ResolveStage,
    pub(crate) commit: CommitStage,
    pub(crate) issue: IssueStage,
    pub(crate) dispatch: DispatchStage,
    pub(crate) rename: RenameStage,
    pub(crate) decode: DecodeStage,
    pub(crate) fetch: FetchStage,
    pub(crate) predict: PredictStage,
}

// The experiment harness moves each sweep cell's `Simulator` (and the
// configuration that builds it) onto a worker thread. The simulator owns
// every piece of its state — no `Rc`, `RefCell`, raw pointers or thread
// handles anywhere in the pipeline — so `Send` must hold structurally.
// This compile-time audit fails the build if a future field breaks that.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
    assert_send::<SimBuilder>();
    assert_send::<SimConfig>();
    assert_send::<SimStats>();
    assert_send::<BuildError>();
};

impl Simulator {
    pub(crate) fn new(
        programs: Vec<Arc<Program>>,
        engine_kind: FetchEngineKind,
        cfg: SimConfig,
    ) -> Result<Self, BuildError> {
        if programs.is_empty() {
            return Err(BuildError::NoThreads);
        }
        if programs.len() > MAX_THREADS {
            return Err(BuildError::TooManyThreads {
                got: programs.len(),
            });
        }
        let n = programs.len();
        let diags = cfg.validate_for_threads(n);
        if smt_isa::has_errors(&diags) {
            return Err(BuildError::InvalidConfig(diags));
        }
        let frontend = AnyFrontEnd::build(engine_kind, &cfg)
            .map_err(|d| BuildError::InvalidConfig(vec![d]))?;
        let hist_bits = frontend.history_bits();

        let total_regs = (cfg.regs_int + cfg.regs_fp) as usize;
        let mut free_int: Vec<PhysReg> = (0..cfg.regs_int).rev().collect();
        let mut free_fp: Vec<PhysReg> = (cfg.regs_int..cfg.regs_int + cfg.regs_fp).rev().collect();
        let ready_at = vec![0u64; total_regs];

        let ras = ReturnStack::new(cfg.predictor.ras_depth)
            .map_err(|d| BuildError::InvalidConfig(vec![d.in_field("predictor.ras_depth")]))?;
        let mut threads: Vec<ThreadState> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| ThreadState::new(i, p, hist_bits))
            .collect();
        // Every window entry is either pre-dispatch (mirrored by a latch or
        // fetch-buffer slot) or dispatched (holds a ROB slot), so this bounds
        // the window — and with it the outstanding-miss list — for good.
        let window_cap = (cfg.rob_size + cfg.fetch_buffer + 2 * cfg.decode_width) as usize;
        // Architect the initial register mappings.
        for th in &mut threads {
            th.presize(cfg.ftq_depth as usize, window_cap);
            th.spec.ras = ras.clone(); // lint:allow(no-alloc-in-step): seeded RAS template copy, once per simulator construction
            th.rename_map = (0..ArchReg::flat_count())
                .map(|flat| {
                    if flat < smt_isa::NUM_ARCH_INT as usize {
                        free_int
                            .pop()
                            .expect("enough int registers for initial maps")
                    } else {
                        free_fp.pop().expect("enough fp registers for initial maps")
                    }
                })
                .collect();
        }

        // The configured per-thread I-MSHR count is a floor: the Table 3
        // machine provisions one outstanding fetch miss per context.
        let mut mem_cfg = cfg.mem.clone(); // lint:allow(no-alloc-in-step): memory-config copy, once per simulator construction
        mem_cfg.i_mshrs = mem_cfg.i_mshrs.max(n);
        let mem = MemoryHierarchy::new(mem_cfg).map_err(|d| BuildError::InvalidConfig(vec![d]))?;

        let width = cfg.fetch_policy.width;
        let decode_width = cfg.decode_width as usize;
        let fu_ls = cfg.fu_ls as usize;
        // Every queue is built at its configuration-derived high-water mark,
        // so the steady-state cycle loop never grows (= never reallocates)
        // any of them.
        let ctx = PipelineCtx {
            frontend,
            mem,
            threads,
            cycle: 0,
            fetch_buffer: VecDeque::with_capacity(cfg.fetch_buffer as usize),
            decode_latch: VecDeque::with_capacity(decode_width),
            rename_latch: VecDeque::with_capacity(decode_width),
            iq_int: Vec::with_capacity(cfg.iq_int as usize),
            iq_ls: Vec::with_capacity(cfg.iq_ls as usize),
            iq_fp: Vec::with_capacity(cfg.iq_fp as usize),
            stats_since: 0,
            free_int,
            free_fp,
            ready_at,
            rob_occ: 0,
            preissue: [0; MAX_THREADS],
            stall_flags: [0; MAX_THREADS],
            stats: SimStats::new(width),
            cfg,
        };
        Ok(Simulator {
            ctx,
            resolve: ResolveStage,
            commit: CommitStage,
            // Only issued loads request flushes, at most one per L/S unit.
            issue: IssueStage::new(fu_ls),
            dispatch: DispatchStage::new(decode_width),
            rename: RenameStage,
            decode: DecodeStage,
            fetch: FetchStage,
            predict: PredictStage,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.ctx.cfg
    }

    /// The fetch engine in force.
    pub fn engine_kind(&self) -> FetchEngineKind {
        self.ctx.frontend.kind()
    }

    /// The fetch engine itself (predictor structures and their statistics).
    pub fn front_end(&self) -> &AnyFrontEnd {
        &self.ctx.frontend
    }

    /// Number of hardware threads.
    pub fn num_threads(&self) -> usize {
        self.ctx.threads.len()
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.ctx.cycle
    }

    /// Statistics since construction or the last [`Simulator::reset_stats`].
    pub fn stats(&self) -> &SimStats {
        &self.ctx.stats
    }

    /// Clears the statistics while keeping all microarchitectural state
    /// (predictor tables, caches, in-flight instructions) — the standard way
    /// to exclude warmup from measurements.
    pub fn reset_stats(&mut self) {
        self.ctx.stats = SimStats::new(self.ctx.cfg.fetch_policy.width);
        self.ctx.stats_since = self.ctx.cycle;
    }

    /// Runs for `n` cycles and returns the cumulative statistics.
    ///
    /// The return value borrows the simulator's own counters (clone it if
    /// you need the snapshot to outlive further stepping).
    pub fn run_cycles(&mut self, n: u64) -> &SimStats {
        let mut left = n;
        while left > 0 {
            match self.fast_forward(left) {
                0 => {
                    self.step();
                    left -= 1;
                }
                k => left -= k,
            }
        }
        &self.ctx.stats
    }

    /// Runs until `n` total instructions have committed (or `max_cycles`
    /// elapse), returning the cumulative statistics (borrowed, like
    /// [`Simulator::run_cycles`]).
    pub fn run_insts(&mut self, n: u64, max_cycles: u64) -> &SimStats {
        let start = self.ctx.cycle;
        while self.ctx.stats.total_committed() < n && self.ctx.cycle - start < max_cycles {
            // Nothing commits during an idle window, so fast-forwarding up
            // to the cycle budget can never overshoot the instruction goal.
            let budget = max_cycles - (self.ctx.cycle - start);
            if self.fast_forward(budget) == 0 {
                self.step();
            }
        }
        &self.ctx.stats
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        let ctx = &mut self.ctx;
        // Resolve must precede commit: a mispredicted branch that completes
        // this cycle must squash and redirect before it can retire.
        self.resolve.tick(ctx);
        self.commit.tick(ctx);
        self.issue.tick(ctx);
        self.dispatch.tick(ctx);
        self.rename.tick(ctx);
        self.decode.tick(ctx);
        self.fetch.tick(ctx);
        self.predict.tick(ctx);
        // Charge each thread's cycle to its most severe observed stall.
        attribute_stalls(ctx);
        ctx.cycle += 1;
        ctx.stats.cycles = ctx.cycle - ctx.stats_since;
    }

    /// Prints a debugging snapshot of the pipeline (intended for examples
    /// and interactive debugging, not part of the stable API).
    #[doc(hidden)]
    pub fn dump_state(&self) {
        self.ctx.dump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::Workload;

    fn sim(engine: FetchEngineKind, policy: FetchPolicy) -> Simulator {
        SimBuilder::new(Workload::mix2().programs(3).expect("programs"))
            .fetch_engine(engine)
            .fetch_policy(policy)
            .build()
            .expect("build")
    }

    #[test]
    fn reset_stats_keeps_microarchitectural_state() {
        let mut s = sim(FetchEngineKind::GshareBtb, FetchPolicy::icount(1, 8));
        s.run_cycles(5_000);
        let committed_before = s.stats().total_committed();
        assert!(committed_before > 0);
        s.reset_stats();
        assert_eq!(s.stats().total_committed(), 0);
        assert_eq!(s.stats().cycles, 0);
        // State survived: the machine keeps committing immediately, at a
        // rate at least as good as the cold start (warm predictors/caches).
        let warm = s.run_cycles(5_000);
        assert!(warm.total_committed() >= committed_before / 2);
        assert_eq!(warm.cycles, 5_000);
    }

    #[test]
    fn accessors_report_configuration() {
        let s = sim(FetchEngineKind::Stream, FetchPolicy::icount(2, 16));
        assert_eq!(s.engine_kind(), FetchEngineKind::Stream);
        assert_eq!(s.num_threads(), 2);
        assert_eq!(s.config().fetch_policy.width, 16);
        assert_eq!(s.cycle(), 0);
        assert!(matches!(s.front_end(), AnyFrontEnd::Stream(_)));
    }

    #[test]
    fn step_advances_exactly_one_cycle() {
        let mut s = sim(FetchEngineKind::GskewFtb, FetchPolicy::icount(1, 8));
        for expect in 1..=10u64 {
            s.step();
            assert_eq!(s.cycle(), expect);
        }
    }

    #[test]
    fn window_stays_contiguous_under_squashes() {
        // Run long enough to take many squash/redirect cycles and verify
        // the per-thread window sequence-number invariant the O(1) lookup
        // relies on.
        let mut s = sim(FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
        for _ in 0..200 {
            s.run_cycles(50);
            for th in &s.ctx.threads {
                let mut prev = None;
                for ctl in th.window.iter() {
                    if let Some(p) = prev {
                        assert_eq!(ctl.seq, p + 1, "window gap in thread {}", th.id);
                    }
                    prev = Some(ctl.seq);
                }
            }
        }
        assert!(s.stats().squashed > 0, "test never exercised a squash");
    }

    #[test]
    fn physical_registers_are_conserved() {
        // free + in-flight-held + architectural = total, at every point.
        let mut s = sim(FetchEngineKind::Stream, FetchPolicy::icount(2, 16));
        for _ in 0..100 {
            s.run_cycles(100);
            let held: usize = s
                .ctx
                .threads
                .iter()
                .flat_map(|t| t.window.iter())
                .filter(|c| c.dispatched() && c.phys_dest.is_some())
                .count();
            let mapped = 2 * smt_isa::ArchReg::flat_count();
            let total = s.ctx.free_int.len() + s.ctx.free_fp.len() + held + mapped;
            assert_eq!(
                total,
                (s.ctx.cfg.regs_int + s.ctx.cfg.regs_fp) as usize,
                "register leak or double-free"
            );
        }
    }

    #[test]
    fn stall_buckets_sum_to_cycles_per_thread() {
        let mut s = sim(FetchEngineKind::GshareBtb, FetchPolicy::icount(2, 8));
        let n = s.num_threads();
        s.run_cycles(3_000);
        let stats = s.stats();
        for tid in 0..n {
            assert_eq!(
                stats.stalls.total(tid),
                stats.cycles,
                "stall buckets + residual must equal cycles for thread {tid}"
            );
        }
        for tid in n..MAX_THREADS {
            assert_eq!(stats.stalls.total(tid), 0, "inactive thread {tid} charged");
        }
    }
}
