//! The three fetch engines (prediction-stage block builders).
//!
//! A fetch engine turns the per-thread speculative front-end state (next
//! fetch PC, history/path registers, RAS) into [`FetchBlock`]s for the FTQ:
//!
//! * **gshare+BTB** — one basic block at a time: the block ends at the first
//!   branch (one direction prediction per cycle), the end of the cache line,
//!   or the fetch width;
//! * **gskew+FTB** — learned *fetch blocks* that embed never-taken branches;
//! * **stream** — learned *instruction streams* (taken-target to next taken
//!   branch), with no separate direction predictor.
//!
//! Engines also own all predictor training, driven by the back end at
//! branch resolve (gshare/gskew/BTB/FTB) and at commit (stream).

use smt_bpred::{
    Btb, Ftb, GlobalHistory, Gshare, Gskew, ObservedEnd, ObservedStream, RasCheckpoint,
    ReturnStack, StreamPath, StreamPredictor, Trace, TraceCache, TraceSegment,
};
use smt_isa::{Addr, BranchKind, Diagnostic, DynInst, EndBranch, FetchBlock, ThreadId};
use smt_workloads::Program;

use crate::config::{FetchEngineKind, SimConfig};

/// I-cache line size in bytes (Table 3) — bounds classical fetch blocks.
pub const LINE_BYTES: u64 = 64;

/// Per-thread speculative front-end state, updated at prediction time and
/// repaired on squashes.
#[derive(Clone, Debug)]
pub struct SpecState {
    /// Global branch history (gshare: 16 bits, gskew: 15 bits).
    pub hist: GlobalHistory,
    /// Return address stack (64 entries, per thread).
    pub ras: ReturnStack,
    /// Stream-path register (stream front-end only, but kept uniformly).
    pub path: StreamPath,
    /// Start address of the stream currently being fetched.
    pub stream_start: Addr,
}

impl SpecState {
    /// Fresh state for a thread entering at `entry`.
    pub fn new(hist_bits: u32, entry: Addr) -> Self {
        SpecState {
            hist: GlobalHistory::new(hist_bits),
            ras: ReturnStack::hpca2004(),
            path: StreamPath::new(),
            stream_start: entry,
        }
    }
}

/// Checkpoints captured when a block is predicted, used to repair the
/// speculative state when a branch in that block squashes.
#[derive(Clone, Copy, Debug)]
pub struct BlockMeta {
    /// History before the block's end-branch prediction was shifted in.
    pub hist: GlobalHistory,
    /// RAS repair checkpoint before the block's call/return effect.
    pub ras: RasCheckpoint,
    /// Stream path before this block's stream bookkeeping.
    pub path: StreamPath,
    /// Stream start register before this block.
    pub stream_start: Addr,
}

/// Per-branch information carried through the pipeline for training and
/// recovery. `Copy` (a handful of words) so in-flight instructions can carry
/// it inline without boxing or per-branch heap traffic.
#[derive(Clone, Copy, Debug)]
pub struct BranchInfo {
    /// Start address of the fetch block that contained the branch.
    pub block_start: Addr,
    /// Whether the branch terminated its fetch block (i.e. was actually
    /// predicted; embedded branches were invisible to the predictor).
    pub is_end: bool,
    /// Speculative direction applied at fetch.
    pub spec_taken: bool,
    /// Speculative next PC applied at fetch.
    pub spec_next: Addr,
    /// Whether fetch already knows this branch diverged from the oracle.
    pub mispredicted: bool,
    /// Whether the divergence is detectable at decode (a statically-known
    /// misfetch: a direct unconditional branch with the wrong speculative
    /// next PC, or a predicted branch that is not a branch at all), so the
    /// redirect fires from the decode stage instead of execute.
    pub decode_redirect: bool,
    /// Block checkpoints for recovery.
    pub meta: BlockMeta,
}

/// A predicted fetch block plus its recovery metadata. `Copy` so the FTQ and
/// fetch stage move blocks by value, allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct PredictedBlock {
    /// The block, ready for the FTQ.
    pub block: FetchBlock,
    /// Recovery checkpoints.
    pub meta: BlockMeta,
    /// Blocks sharing a trace-cache line carry the same group id: the fetch
    /// stage may consume them in one cycle without I-cache accesses (the
    /// trace cache stores the instructions itself).
    pub trace_group: Option<u64>,
}

/// One of the three front-end fetch engines.
#[derive(Clone, Debug)]
pub enum Engine {
    /// gshare + BTB (the baseline SMT front-end).
    GshareBtb {
        /// Direction predictor.
        gshare: Gshare,
        /// Branch target buffer.
        btb: Btb,
    },
    /// gskew + FTB.
    GskewFtb {
        /// Direction predictor.
        gskew: Gskew,
        /// Fetch target buffer.
        ftb: Ftb,
    },
    /// Stream front-end.
    Stream {
        /// Cascaded stream predictor.
        predictor: StreamPredictor,
    },
    /// Trace cache + gshare/BTB core fetch unit (related-work comparator).
    TraceCache {
        /// The trace storage and its path-associative tags.
        tc: TraceCache,
        /// Multiple-branch direction predictor for way selection
        /// (trained by the fill unit).
        multi: Gshare,
        /// Core fetch unit direction predictor (trained at resolve).
        gshare: Gshare,
        /// Core fetch unit target buffer.
        btb: Btb,
        /// Monotone id shared by the blocks of one emitted trace.
        next_group: u64,
    },
}

impl Engine {
    /// Builds the engine from the configuration's predictor geometry.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found in the requested tables
    /// (`E0001`/`E0002` geometry, `E0012` block/stream caps). Use
    /// [`SimConfig::validate`] to collect *all* problems at once.
    pub fn build(kind: FetchEngineKind, cfg: &SimConfig) -> Result<Self, Diagnostic> {
        let p = &cfg.predictor;
        let scoped = |d: Diagnostic| {
            let field = format!("predictor.{}", d.field);
            d.in_field(field)
        };
        Ok(match kind {
            FetchEngineKind::GshareBtb => Engine::GshareBtb {
                gshare: Gshare::new(p.gshare_entries).map_err(scoped)?,
                btb: Btb::new(p.btb_entries, p.btb_ways).map_err(scoped)?,
            },
            FetchEngineKind::GskewFtb => Engine::GskewFtb {
                gskew: Gskew::new(p.gskew_entries_per_bank).map_err(scoped)?,
                ftb: Ftb::new(p.ftb_entries, p.ftb_ways, cfg.max_ftb_block).map_err(scoped)?,
            },
            FetchEngineKind::Stream => Engine::Stream {
                predictor: StreamPredictor::new(
                    p.stream_l1_entries,
                    p.stream_l2_entries,
                    p.stream_ways,
                    smt_bpred::Dolc::HPCA2004,
                    cfg.max_stream,
                )
                .map_err(scoped)?,
            },
            FetchEngineKind::TraceCache => Engine::TraceCache {
                tc: TraceCache::new(p.tc_entries, p.tc_ways).map_err(scoped)?,
                // The core fetch unit backing the trace cache uses a halved
                // gshare so the comparator's total budget stays paper-like.
                multi: Gshare::new(32 * 1024).map_err(scoped)?,
                gshare: Gshare::new(32 * 1024).map_err(scoped)?,
                btb: Btb::new(p.btb_entries, p.btb_ways).map_err(scoped)?,
                next_group: 1,
            },
        })
    }

    /// Builds the engine in the paper's Table 3 configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has invalid predictor geometry; prefer
    /// [`Engine::build`] for configurations that are not known-good.
    pub fn hpca2004(kind: FetchEngineKind, cfg: &SimConfig) -> Self {
        Engine::build(kind, cfg).expect("Table 3 geometry is valid") // lint:allow(no-panic)
    }

    /// Which engine this is.
    pub fn kind(&self) -> FetchEngineKind {
        match self {
            Engine::GshareBtb { .. } => FetchEngineKind::GshareBtb,
            Engine::GskewFtb { .. } => FetchEngineKind::GskewFtb,
            Engine::Stream { .. } => FetchEngineKind::Stream,
            Engine::TraceCache { .. } => FetchEngineKind::TraceCache,
        }
    }

    /// History length this engine's direction predictor uses.
    pub fn history_bits(&self) -> u32 {
        match self {
            Engine::GshareBtb { .. } => 16,
            Engine::GskewFtb { .. } => 15,
            Engine::Stream { .. } => 16, // unused, kept for uniform state
            Engine::TraceCache { .. } => 15,
        }
    }

    /// Predicts the next fetch block for `thread` starting at `pc`.
    ///
    /// Speculatively updates `spec` (history shift, RAS push/pop, stream
    /// path) and returns the block plus the checkpoints needed to undo those
    /// updates.
    pub fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock {
        let meta = BlockMeta {
            hist: spec.hist,
            ras: spec.ras.checkpoint(),
            path: spec.path,
            stream_start: spec.stream_start,
        };
        let block = match self {
            Engine::GshareBtb { gshare, btb } => {
                classic_block(gshare, btb, thread, pc, spec, program, width)
            }
            Engine::GskewFtb { gskew, ftb } => match ftb.lookup(pc) {
                Some(p) => {
                    let len = p.len.max(1);
                    match p.end {
                        Some(end) => {
                            let end_pc = pc.add_insts(len as u64 - 1);
                            let (taken, target) = match end.kind {
                                BranchKind::Cond => {
                                    let t = gskew.predict(end_pc, spec.hist);
                                    // FTB entries always carry a target, but
                                    // stay defensive about null targets the
                                    // same way the BTB path is.
                                    let t = t && !end.target.is_null();
                                    spec.hist.push(t);
                                    (t, end.target)
                                }
                                BranchKind::Jump | BranchKind::Indirect => (true, end.target),
                                BranchKind::Call => {
                                    spec.ras.push(end_pc.add_insts(1));
                                    (true, end.target)
                                }
                                BranchKind::Return => (true, spec.ras.pop()),
                            };
                            let fall = pc.add_insts(len as u64);
                            let next = if taken && !target.is_null() {
                                target
                            } else {
                                fall
                            };
                            FetchBlock {
                                thread,
                                start: pc,
                                len,
                                embedded_branches: 0,
                                end_branch: Some(EndBranch {
                                    pc: end_pc,
                                    kind: end.kind,
                                    predicted_taken: taken,
                                    predicted_target: target,
                                }),
                                next_fetch: next,
                            }
                        }
                        None => sequential_block(thread, pc, len),
                    }
                }
                None => sequential_block(thread, pc, width),
            },
            Engine::TraceCache { gshare, btb, .. } => {
                classic_block(gshare, btb, thread, pc, spec, program, width)
            }
            Engine::Stream { predictor } => match predictor.predict(pc, &spec.path) {
                Some(p) => {
                    let len = p.len.max(1);
                    match p.end {
                        Some(end) => {
                            let end_pc = pc.add_insts(len as u64 - 1);
                            // Stream-ending branches are taken by definition.
                            let target = match end.kind {
                                BranchKind::Return => spec.ras.pop(),
                                BranchKind::Call => {
                                    spec.ras.push(end_pc.add_insts(1));
                                    end.target
                                }
                                _ => end.target,
                            };
                            let fall = pc.add_insts(len as u64);
                            let next = if target.is_null() { fall } else { target };
                            // This block closes a stream: record it in the
                            // path and open the next stream.
                            spec.path.push(spec.stream_start);
                            spec.stream_start = next;
                            FetchBlock {
                                thread,
                                start: pc,
                                len,
                                embedded_branches: 0,
                                end_branch: Some(EndBranch {
                                    pc: end_pc,
                                    kind: end.kind,
                                    predicted_taken: true,
                                    predicted_target: target,
                                }),
                                next_fetch: next,
                            }
                        }
                        None => sequential_block(thread, pc, len),
                    }
                }
                None => sequential_block(thread, pc, width),
            },
        };
        PredictedBlock {
            block,
            meta,
            trace_group: None,
        }
    }

    /// Predicts up to `max_blocks` fetch blocks in one cycle.
    ///
    /// Single-block engines return exactly one block; the trace-cache
    /// engine returns one block per trace segment on a hit (all sharing a
    /// trace group id) so the fetch stage can consume the whole trace in
    /// one cycle.
    pub fn predict_blocks(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
    ) -> Vec<PredictedBlock> {
        let mut out = Vec::with_capacity(1);
        self.predict_blocks_into(thread, pc, spec, program, width, max_blocks, &mut out);
        out
    }

    /// Out-buffer variant of [`Engine::predict_blocks`]: appends this cycle's
    /// blocks to `out`, which the caller clears and reuses across cycles so
    /// the steady-state prediction stage performs no heap allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_blocks_into(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
        out: &mut Vec<PredictedBlock>,
    ) {
        if matches!(self, Engine::TraceCache { .. }) {
            self.predict_trace(thread, pc, spec, program, width, max_blocks.max(1), out);
        } else {
            out.push(self.predict_block(thread, pc, spec, program, width));
        }
    }

    /// Trace-cache prediction: way-select by the multiple-branch direction
    /// vector; on a hit emit the trace's segments, on a miss fall back to
    /// the core fetch unit. Appends to `out`.
    #[allow(clippy::too_many_arguments)]
    fn predict_trace(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
        out: &mut Vec<PredictedBlock>,
    ) {
        let Engine::TraceCache {
            tc,
            multi,
            next_group,
            ..
        } = self
        else {
            unreachable!("caller checked the variant")
        };
        // Multiple-branch prediction: up to 3 segment-end directions,
        // indexed by (start + i, incrementally updated history).
        let mut dirs = [false; 3];
        let mut h = spec.hist;
        for (i, d) in dirs.iter_mut().enumerate() {
            *d = multi.predict(pc.add_insts(i as u64), h);
            h.push(*d);
        }
        let hit = tc.lookup(pc, &dirs);
        match hit {
            Some(trace) => {
                let group = *next_group;
                *next_group += 1;
                let nseg = trace.segments.len().min(max_blocks);
                for (si, seg) in trace.segments.iter().take(nseg).enumerate() {
                    let meta = BlockMeta {
                        hist: spec.hist,
                        ras: spec.ras.checkpoint(),
                        path: spec.path,
                        stream_start: spec.stream_start,
                    };
                    let next_start = if si + 1 < trace.segments.len() {
                        trace.segments[si + 1].start
                    } else {
                        trace.next_pc
                    };
                    let fall = seg.start.add_insts(seg.len as u64);
                    let end_branch = seg.end_kind.map(|kind| {
                        let taken = seg.end_taken;
                        let end_pc = seg.start.add_insts(seg.len as u64 - 1);
                        // The trace embodies the path: targets come from the
                        // stored next segment, while the RAS is kept in sync
                        // for later core-fetch predictions.
                        match kind {
                            BranchKind::Cond => spec.hist.push(taken),
                            BranchKind::Call => spec.ras.push(end_pc.add_insts(1)),
                            BranchKind::Return if taken => {
                                let _ = spec.ras.pop();
                            }
                            _ => {}
                        }
                        EndBranch {
                            pc: end_pc,
                            kind,
                            predicted_taken: taken,
                            predicted_target: if taken { next_start } else { Addr::NULL },
                        }
                    });
                    let next_fetch = match &end_branch {
                        Some(e) if e.predicted_taken && !e.predicted_target.is_null() => {
                            e.predicted_target
                        }
                        _ => fall,
                    };
                    out.push(PredictedBlock {
                        block: FetchBlock {
                            thread,
                            start: seg.start,
                            len: seg.len,
                            embedded_branches: 0,
                            end_branch,
                            next_fetch,
                        },
                        meta,
                        trace_group: Some(group),
                    });
                }
            }
            None => out.push(self.predict_block(thread, pc, spec, program, width)),
        }
    }

    /// Trains the engine with a resolved correct-path branch.
    ///
    /// Called by the back end when the branch executes. `info` carries the
    /// prediction-time checkpoints; `di` the actual outcome.
    pub fn train_resolve(&mut self, info: &BranchInfo, di: &DynInst) {
        match self {
            Engine::GshareBtb { gshare, btb } => {
                if di.is_cond_branch() {
                    // Every correct-path conditional ends a block under this
                    // engine, so each one was genuinely predicted.
                    gshare.update(di.pc, info.meta.hist, di.taken);
                }
                if di.taken {
                    let kind = di.class.branch_kind().expect("branch"); // lint:allow(no-panic)
                    btb.record_taken(di.pc, di.next_pc, kind);
                }
            }
            Engine::GskewFtb { gskew, ftb } => {
                if info.is_end && di.is_cond_branch() {
                    gskew.update(di.pc, info.meta.hist, di.taken);
                }
                if di.taken {
                    let kind = di.class.branch_kind().expect("branch"); // lint:allow(no-panic)
                    ftb.record_taken(
                        info.block_start,
                        ObservedEnd {
                            branch_pc: di.pc,
                            kind,
                            target: di.next_pc,
                        },
                    );
                } else if info.is_end {
                    ftb.record_not_taken(info.block_start);
                }
            }
            Engine::Stream { .. } => {
                // Stream training happens at commit, on completed streams.
            }
            Engine::TraceCache { gshare, btb, .. } => {
                // The core fetch unit trains like gshare+BTB; the trace
                // cache itself and the multiple-branch predictor are
                // trained by the fill unit at commit.
                if info.is_end && di.is_cond_branch() {
                    gshare.update(di.pc, info.meta.hist, di.taken);
                }
                if di.taken {
                    let kind = di.class.branch_kind().expect("branch"); // lint:allow(no-panic)
                    btb.record_taken(di.pc, di.next_pc, kind);
                }
            }
        }
    }

    /// Trains the stream predictor with a stream completed at commit.
    pub fn train_stream_commit(&mut self, start: Addr, path: &StreamPath, obs: ObservedStream) {
        if let Engine::Stream { predictor } = self {
            predictor.train(start, path, obs);
        }
    }

    /// Repairs the speculative state after the mispredicted branch described
    /// by `info`/`di` squashes everything younger, then applies the branch's
    /// actual outcome.
    pub fn repair(&self, spec: &mut SpecState, info: &BranchInfo, di: &DynInst) {
        // History: restore, then shift in the actual direction if this
        // branch was a predicted (block-ending) conditional.
        spec.hist = info.meta.hist;
        if di.is_cond_branch() && info.is_end && !matches!(self, Engine::Stream { .. }) {
            spec.hist.push(di.taken);
        }
        // RAS: restore, then apply the actual call/return effect.
        spec.ras.restore(info.meta.ras);
        match di.class.branch_kind() {
            Some(BranchKind::Call) => spec.ras.push(di.pc.add_insts(1)),
            Some(BranchKind::Return) => {
                let _ = spec.ras.pop();
            }
            _ => {}
        }
        // Stream path: restore; a taken branch closes the current stream.
        spec.path = info.meta.path;
        spec.stream_start = info.meta.stream_start;
        if di.taken {
            spec.path.push(info.meta.stream_start);
            spec.stream_start = di.next_pc;
        }
    }
}

/// The trace-cache fill unit's per-thread collection buffer: committed
/// instructions accumulate until a trace line closes (16 instructions or a
/// third taken branch), at which point the trace is installed and the
/// multiple-branch predictor trained.
#[derive(Clone, Debug, Default)]
pub struct TraceFillBuffer {
    /// `(pc, class, taken, next_pc)` of buffered committed instructions.
    entries: Vec<(Addr, smt_isa::InstClass, bool, Addr)>,
    /// Committed end-conditional history at the start of the buffer.
    start_hist: u64,
    /// Taken branches buffered so far.
    taken_branches: u32,
}

impl TraceFillBuffer {
    /// Number of buffered instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Engine {
    /// Feeds one committed instruction to the trace-cache fill unit
    /// (no-op for other engines). `commit_hist_end` is the thread's
    /// committed end-conditional history *before* this instruction.
    pub fn trace_fill_commit(
        &mut self,
        fill: &mut TraceFillBuffer,
        di: &DynInst,
        commit_hist_end: u64,
    ) {
        let Engine::TraceCache { tc, multi, .. } = self else {
            return;
        };
        if fill.entries.is_empty() {
            fill.start_hist = commit_hist_end;
            fill.taken_branches = 0;
        }
        fill.entries.push((di.pc, di.class, di.taken, di.next_pc));
        if di.is_branch() && di.taken {
            fill.taken_branches += 1;
        }
        let close = fill.entries.len() as u32 >= Trace::MAX_INSTS
            || fill.taken_branches >= Trace::MAX_SEGMENTS as u32;
        if !close {
            return;
        }

        // Build segments: split after every taken control transfer.
        let mut segments: Vec<TraceSegment> = Vec::with_capacity(Trace::MAX_SEGMENTS);
        let mut cond_dirs: Vec<bool> = Vec::new();
        let mut seg_start = fill.entries[0].0;
        let mut seg_len = 0u32;
        for (i, &(pc, class, taken, next_pc)) in fill.entries.iter().enumerate() {
            seg_len += 1;
            let last = i == fill.entries.len() - 1;
            let taken_branch = class.is_branch() && taken;
            if taken_branch || last {
                let end_kind = class.branch_kind();
                if end_kind == Some(BranchKind::Cond) {
                    cond_dirs.push(taken);
                }
                segments.push(TraceSegment {
                    start: seg_start,
                    len: seg_len,
                    end_kind,
                    end_taken: taken,
                });
                seg_start = next_pc;
                seg_len = 0;
            } else {
                debug_assert_eq!(next_pc, pc.add_insts(1), "trace segment contiguity");
            }
        }
        let next_pc = fill.entries.last().expect("non-empty").3; // lint:allow(no-panic)
        let start = fill.entries[0].0;
        let start_hist = fill.start_hist;
        fill.entries.clear();
        fill.taken_branches = 0;

        // Train the multiple-branch predictor with the observed direction
        // vector, using the same (start + i, incremental history) indexing
        // the predictor is consulted with.
        let mut h = GlobalHistory::new(15);
        for i in (0..15u32).rev() {
            h.push((start_hist >> i) & 1 == 1);
        }
        for (i, &d) in cond_dirs.iter().enumerate().take(3) {
            multi.update(start.add_insts(i as u64), h, d);
            h.push(d);
        }
        tc.fill(Trace {
            segments,
            cond_dirs,
            next_pc,
        });
    }
}

/// A classical gshare+BTB fetch block: one prediction per cycle, so the
/// block ends at the first branch, the cache-line boundary, or the width.
/// Used by the gshare+BTB engine and as the trace cache's core fetch unit.
fn classic_block(
    gshare: &mut Gshare,
    btb: &mut Btb,
    thread: ThreadId,
    pc: Addr,
    spec: &mut SpecState,
    program: &Program,
    width: u32,
) -> FetchBlock {
    let max = (width as u64).min(pc.insts_to_line_end(LINE_BYTES)).max(1);
    match program.first_branch_at_or_after(pc, max) {
        Some((dist, inst)) => {
            let end_pc = inst.addr;
            let kind = inst.class.branch_kind().expect("scan returns branches"); // lint:allow(no-panic)
            let (taken, target) = match kind {
                BranchKind::Cond => {
                    let t = gshare.predict(end_pc, spec.hist);
                    let tgt = if t {
                        btb.lookup(end_pc).map(|e| e.target).unwrap_or(Addr::NULL)
                    } else {
                        Addr::NULL
                    };
                    // A taken prediction without a BTB target cannot be
                    // followed: the fetch unit falls through, so the
                    // *effective* speculative direction — the one entering
                    // the history register and compared at resolve — is
                    // not-taken.
                    let t = t && !tgt.is_null();
                    spec.hist.push(t);
                    (t, tgt)
                }
                BranchKind::Jump | BranchKind::Indirect => (
                    true,
                    btb.lookup(end_pc).map(|e| e.target).unwrap_or(Addr::NULL),
                ),
                BranchKind::Call => {
                    let tgt = btb.lookup(end_pc).map(|e| e.target).unwrap_or(Addr::NULL);
                    spec.ras.push(end_pc.add_insts(1));
                    (true, tgt)
                }
                BranchKind::Return => (true, spec.ras.pop()),
            };
            let len = (dist + 1) as u32;
            let fall = pc.add_insts(len as u64);
            let next = if taken && !target.is_null() {
                target
            } else {
                fall
            };
            FetchBlock {
                thread,
                start: pc,
                len,
                embedded_branches: 0,
                end_branch: Some(EndBranch {
                    pc: end_pc,
                    kind,
                    predicted_taken: taken,
                    predicted_target: target,
                }),
                next_fetch: next,
            }
        }
        None => sequential_block(thread, pc, max as u32),
    }
}

/// A plain sequential block: `len` instructions, falls through.
fn sequential_block(thread: ThreadId, pc: Addr, len: u32) -> FetchBlock {
    let len = len.max(1);
    FetchBlock {
        thread,
        start: pc,
        len,
        embedded_branches: 0,
        end_branch: None,
        next_fetch: pc.add_insts(len as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;
    use smt_isa::{Addr, InstClass};
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn program() -> Program {
        ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build()
    }

    fn cfg() -> SimConfig {
        SimConfig::hpca2004(FetchPolicy::icount(1, 8))
    }

    #[test]
    fn gshare_btb_blocks_end_at_first_branch_and_line() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::GshareBtb, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pb = e.predict_block(0, prog.entry(), &mut spec, &prog, 8);
        let b = &pb.block;
        assert!(b.len >= 1 && b.len <= 8);
        // The block must not cross a cache line.
        assert!(b.start.line(LINE_BYTES) == b.last_pc().line(LINE_BYTES));
        // If it has an end branch, no *earlier* instruction in the block is
        // a branch.
        if let Some(end) = b.end_branch {
            for i in 0..(b.len - 1) as u64 {
                let inst = prog.inst_at(b.start.add_insts(i)).unwrap();
                assert!(!inst.class.is_branch(), "embedded branch in BTB block");
            }
            assert_eq!(end.pc, b.last_pc());
        }
    }

    #[test]
    fn gshare_btb_chains_blocks_through_program() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::GshareBtb, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let mut pc = prog.entry();
        for _ in 0..200 {
            let pb = e.predict_block(0, pc, &mut spec, &prog, 8);
            pc = pb.block.next_fetch;
            // Stay in (or be clamped back into) the program.
            assert!(prog.contains(prog.clamp(pc)));
        }
    }

    #[test]
    fn ftb_miss_gives_width_sequential_block_then_learns() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::GskewFtb, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pc = prog.entry();
        let pb = e.predict_block(0, pc, &mut spec, &prog, 8);
        assert_eq!(pb.block.len, 8, "FTB cold miss fetches a width block");
        assert!(pb.block.end_branch.is_none());

        // Train: a taken branch 3 instructions in.
        let di = DynInst {
            thread: 0,
            static_id: 0,
            pc: pc.add_insts(2),
            class: InstClass::Branch(BranchKind::Cond),
            dest: None,
            srcs: [None, None],
            mem: None,
            taken: true,
            next_pc: pc.add_insts(40),
            wrong_path: false,
        };
        let info = BranchInfo {
            block_start: pc,
            is_end: false,
            spec_taken: false,
            spec_next: di.pc.add_insts(1),
            mispredicted: true,
            decode_redirect: false,
            meta: pb.meta,
        };
        e.train_resolve(&info, &di);
        let pb2 = e.predict_block(0, pc, &mut spec, &prog, 8);
        assert_eq!(pb2.block.len, 3, "FTB learned the block extent");
        assert_eq!(pb2.block.end_branch.unwrap().pc, di.pc);
    }

    #[test]
    fn stream_engine_learns_streams_at_commit() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::Stream, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pc = prog.entry();
        // Cold: sequential width block.
        let pb = e.predict_block(0, pc, &mut spec, &prog, 16);
        assert_eq!(pb.block.len, 16);
        // Commit-side training: a 24-instruction stream ending in a taken
        // branch to 0x40_2000.
        e.train_stream_commit(
            pc,
            &StreamPath::new(),
            ObservedStream {
                len: 24,
                kind: BranchKind::Cond,
                target: Addr::new(0x40_2000),
            },
        );
        let mut spec2 = SpecState::new(e.history_bits(), prog.entry());
        let pb2 = e.predict_block(0, pc, &mut spec2, &prog, 16);
        assert_eq!(pb2.block.len, 24, "stream longer than the fetch width");
        assert_eq!(pb2.block.next_fetch, Addr::new(0x40_2000));
        assert!(pb2.block.end_branch.unwrap().predicted_taken);
    }

    #[test]
    fn stream_blocks_update_path_and_stream_start() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::Stream, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pc = prog.entry();
        e.train_stream_commit(
            pc,
            &StreamPath::new(),
            ObservedStream {
                len: 10,
                kind: BranchKind::Jump,
                target: Addr::new(0x40_1000),
            },
        );
        let before = spec.path;
        let _ = e.predict_block(0, pc, &mut spec, &prog, 16);
        assert_ne!(spec.path, before, "taken stream end must push the path");
        assert_eq!(spec.stream_start, Addr::new(0x40_1000));
    }

    #[test]
    fn trace_cache_engine_misses_fall_back_to_core_fetch() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::TraceCache, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pbs = e.predict_blocks(0, prog.entry(), &mut spec, &prog, 16, 4);
        assert_eq!(pbs.len(), 1, "cold trace cache must fall back");
        assert!(pbs[0].trace_group.is_none());
        // Fallback blocks obey the classical single-basic-block limit.
        assert!(pbs[0].block.len <= 16);
    }

    #[test]
    fn trace_cache_fill_then_hit_emits_grouped_segments() {
        let prog = program();
        let mut e = Engine::hpca2004(FetchEngineKind::TraceCache, &cfg());
        // Commit a synthetic trace through the fill unit: 6 sequential
        // instructions, a taken cond, then 5 more and a taken jump.
        let mut fill = TraceFillBuffer::default();
        let base = prog.entry();
        let mk = |pc: Addr, class: InstClass, taken: bool, next: Addr| DynInst {
            thread: 0,
            static_id: 0,
            pc,
            class,
            dest: None,
            srcs: [None, None],
            mem: None,
            taken,
            next_pc: next,
            wrong_path: false,
        };
        for i in 0..5u64 {
            let pc = base.add_insts(i);
            e.trace_fill_commit(
                &mut fill,
                &mk(pc, InstClass::IntAlu, false, pc.add_insts(1)),
                0,
            );
        }
        let br = base.add_insts(5);
        let tgt = base.add_insts(40);
        e.trace_fill_commit(
            &mut fill,
            &mk(br, InstClass::Branch(BranchKind::Cond), true, tgt),
            0,
        );
        for i in 0..4u64 {
            let pc = tgt.add_insts(i);
            e.trace_fill_commit(
                &mut fill,
                &mk(pc, InstClass::IntAlu, false, pc.add_insts(1)),
                0,
            );
        }
        let br2 = tgt.add_insts(4);
        let tgt2 = base.add_insts(80);
        e.trace_fill_commit(
            &mut fill,
            &mk(br2, InstClass::Branch(BranchKind::Jump), true, tgt2),
            0,
        );
        // Keep feeding to force a close on the 3rd taken branch (15 insts
        // total, under the 16-instruction line limit).
        for i in 0..3u64 {
            let pc = tgt2.add_insts(i);
            e.trace_fill_commit(
                &mut fill,
                &mk(pc, InstClass::IntAlu, false, pc.add_insts(1)),
                0,
            );
        }
        let br3 = tgt2.add_insts(3);
        e.trace_fill_commit(
            &mut fill,
            &mk(br3, InstClass::Branch(BranchKind::Jump), true, base),
            0,
        );
        assert!(fill.is_empty(), "third taken branch must close the trace");

        // The filled trace is now fetchable in one multi-block prediction.
        let mut spec = SpecState::new(e.history_bits(), base);
        let pbs = e.predict_blocks(0, base, &mut spec, &prog, 16, 4);
        assert!(pbs.len() >= 2, "trace hit must emit its segments");
        let group = pbs[0].trace_group.expect("trace blocks carry a group");
        assert!(pbs.iter().all(|p| p.trace_group == Some(group)));
        assert_eq!(pbs[0].block.start, base);
        assert_eq!(pbs[0].block.len, 6);
        assert_eq!(pbs[0].block.next_fetch, tgt);
        assert_eq!(pbs[1].block.start, tgt);
    }

    #[test]
    fn repair_restores_history_ras_and_path() {
        let prog = program();
        let e = Engine::hpca2004(FetchEngineKind::GshareBtb, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        spec.ras.push(Addr::new(0x40_0044));
        spec.hist.push(true);
        let meta = BlockMeta {
            hist: spec.hist,
            ras: spec.ras.checkpoint(),
            path: spec.path,
            stream_start: spec.stream_start,
        };
        // Wrong-path speculation after the checkpoint.
        spec.hist.push(false);
        spec.hist.push(false);
        let _ = spec.ras.pop();
        let di = DynInst {
            thread: 0,
            static_id: 0,
            pc: Addr::new(0x40_0100),
            class: InstClass::Branch(BranchKind::Cond),
            dest: None,
            srcs: [None, None],
            mem: None,
            taken: true,
            next_pc: Addr::new(0x40_0200),
            wrong_path: false,
        };
        let info = BranchInfo {
            block_start: Addr::new(0x40_0100),
            is_end: true,
            spec_taken: false,
            spec_next: Addr::new(0x40_0104),
            mispredicted: true,
            decode_redirect: false,
            meta,
        };
        e.repair(&mut spec, &info, &di);
        // History = checkpoint + actual outcome (taken).
        let mut expect = meta.hist;
        expect.push(true);
        assert_eq!(spec.hist, expect);
        // RAS top is restored.
        assert_eq!(spec.ras.peek(), Some(Addr::new(0x40_0044)));
        // Taken branch closed the stream.
        assert_eq!(spec.stream_start, Addr::new(0x40_0200));
    }
}
