//! Simulator configuration (Table 3 of the paper).

use std::fmt;

/// Which high-performance fetch engine drives the front-end (paper §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FetchEngineKind {
    /// gshare (64K, 16-bit history) + BTB (2K, 4-way): the standard SMT
    /// front-end the paper compares against.
    GshareBtb,
    /// gskew (3×32K, 15-bit history) + FTB (2K, 4-way): the first proposed
    /// high-performance engine.
    GskewFtb,
    /// The stream front-end (1K + 4K cascaded stream predictor).
    Stream,
    /// A trace cache backed by a gshare+BTB core fetch unit — the
    /// high-complexity alternative the paper's related work compares
    /// against (Rotenberg et al.); included to reproduce the "stream fetch
    /// is within ~1.5% of a trace cache" comparison.
    TraceCache,
}

impl FetchEngineKind {
    /// The paper's three engines, in its presentation order.
    pub fn all() -> [FetchEngineKind; 3] {
        [
            FetchEngineKind::GshareBtb,
            FetchEngineKind::GskewFtb,
            FetchEngineKind::Stream,
        ]
    }

    /// The paper's engines plus the trace cache comparator.
    pub fn all_with_trace_cache() -> [FetchEngineKind; 4] {
        [
            FetchEngineKind::GshareBtb,
            FetchEngineKind::GskewFtb,
            FetchEngineKind::Stream,
            FetchEngineKind::TraceCache,
        ]
    }
}

impl fmt::Display for FetchEngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchEngineKind::GshareBtb => write!(f, "gshare+BTB"),
            FetchEngineKind::GskewFtb => write!(f, "gskew+FTB"),
            FetchEngineKind::Stream => write!(f, "stream"),
            FetchEngineKind::TraceCache => write!(f, "trace cache"),
        }
    }
}

/// How threads are prioritized for prediction/fetch slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyKind {
    /// ICOUNT (Tullsen et al.): prioritize the thread with the fewest
    /// instructions in the pre-issue pipeline stages.
    Icount,
    /// Round-robin rotation among eligible threads.
    RoundRobin,
    /// BRCOUNT (Tullsen et al.): fewest unresolved branches in the
    /// pre-issue stages.
    BrCount,
    /// MISSCOUNT (Tullsen et al.): fewest outstanding long-latency data
    /// misses.
    MissCount,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Icount => write!(f, "ICOUNT"),
            PolicyKind::RoundRobin => write!(f, "RR"),
            PolicyKind::BrCount => write!(f, "BRCOUNT"),
            PolicyKind::MissCount => write!(f, "MISSCOUNT"),
        }
    }
}

/// What the front-end does about a thread with a long-latency (memory)
/// load in flight — the mechanisms of Tullsen & Brown (MICRO 2001), which
/// the paper's §5.2 cites as the orthodox answer to the resource-clogging
/// problem its 1.X fetch unit sidesteps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LongLatencyAction {
    /// Keep fetching the thread normally (the paper's configurations).
    #[default]
    None,
    /// STALL: gate the thread's prediction/fetch slots until the miss
    /// returns.
    Stall,
    /// FLUSH: additionally squash the thread's instructions younger than
    /// the missing load, freeing the shared queues they occupy.
    Flush,
}

impl fmt::Display for LongLatencyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LongLatencyAction::None => Ok(()),
            LongLatencyAction::Stall => write!(f, "-STALL"),
            LongLatencyAction::Flush => write!(f, "-FLUSH"),
        }
    }
}

/// A fetch policy in the paper's `POLICY.n.X` notation: up to `X`
/// instructions from up to `n` threads per cycle.
///
/// # Example
///
/// ```
/// use smt_core::FetchPolicy;
///
/// let p = FetchPolicy::icount(1, 16);
/// assert_eq!(p.to_string(), "ICOUNT.1.16");
/// assert_eq!(p.threads_per_cycle, 1);
/// assert_eq!(p.width, 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FetchPolicy {
    /// Thread-priority scheme.
    pub kind: PolicyKind,
    /// `n`: threads fetched per cycle (1 or 2).
    pub threads_per_cycle: u32,
    /// `X`: total instructions fetched per cycle (8 or 16).
    pub width: u32,
    /// Long-latency-load handling on top of the priority scheme.
    pub long_latency: LongLatencyAction,
}

impl FetchPolicy {
    /// `ICOUNT.n.X`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn icount(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::Icount,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// `RR.n.X` (round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn round_robin(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::RoundRobin,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// `BRCOUNT.n.X`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn br_count(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::BrCount,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// `MISSCOUNT.n.X`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn miss_count(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::MissCount,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// Adds STALL gating for long-latency loads (Tullsen & Brown).
    pub fn with_stall(mut self) -> Self {
        self.long_latency = LongLatencyAction::Stall;
        self
    }

    /// Adds FLUSH recovery for long-latency loads (Tullsen & Brown).
    pub fn with_flush(mut self) -> Self {
        self.long_latency = LongLatencyAction::Flush;
        self
    }

    /// The four policies the paper sweeps: `1.8`, `2.8`, `1.16`, `2.16`.
    pub fn paper_sweep() -> [FetchPolicy; 4] {
        [
            FetchPolicy::icount(1, 8),
            FetchPolicy::icount(2, 8),
            FetchPolicy::icount(1, 16),
            FetchPolicy::icount(2, 16),
        ]
    }
}

impl fmt::Display for FetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}.{}.{}",
            self.kind, self.long_latency, self.threads_per_cycle, self.width
        )
    }
}

/// Processor resources (Table 3).
///
/// Passive configuration record (public fields by design).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Fetch policy (`ICOUNT.1.8` … `ICOUNT.2.16`).
    pub fetch_policy: FetchPolicy,
    /// Intermediate fetch-buffer capacity in instructions (32).
    pub fetch_buffer: u32,
    /// Decode and rename width (8).
    pub decode_width: u32,
    /// Commit width (8).
    pub commit_width: u32,
    /// Per-thread fetch target queue depth (4).
    pub ftq_depth: u32,
    /// Integer issue-queue capacity (32).
    pub iq_int: u32,
    /// Load/store issue-queue capacity (32).
    pub iq_ls: u32,
    /// Floating-point issue-queue capacity (32).
    pub iq_fp: u32,
    /// Shared reorder-buffer capacity (256).
    pub rob_size: u32,
    /// Integer physical registers (384).
    pub regs_int: u32,
    /// Floating-point physical registers (384).
    pub regs_fp: u32,
    /// Integer ALUs (6).
    pub fu_int: u32,
    /// Load/store units (4).
    pub fu_ls: u32,
    /// Floating-point units (3).
    pub fu_fp: u32,
    /// Maximum predicted-stream length for the stream front-end (64).
    pub max_stream: u32,
    /// Maximum FTB fetch-block length (16).
    pub max_ftb_block: u32,
}

impl SimConfig {
    /// The paper's baseline configuration (Table 3) with the given fetch
    /// policy.
    pub fn hpca2004(fetch_policy: FetchPolicy) -> Self {
        SimConfig {
            fetch_policy,
            fetch_buffer: 32,
            decode_width: 8,
            commit_width: 8,
            ftq_depth: 4,
            iq_int: 32,
            iq_ls: 32,
            iq_fp: 32,
            rob_size: 256,
            regs_int: 384,
            regs_fp: 384,
            fu_int: 6,
            fu_ls: 4,
            fu_fp: 3,
            max_stream: 64,
            max_ftb_block: 16,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::hpca2004(FetchPolicy::icount(1, 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_display_matches_paper_notation() {
        assert_eq!(FetchPolicy::icount(2, 8).to_string(), "ICOUNT.2.8");
        assert_eq!(FetchPolicy::icount(1, 16).to_string(), "ICOUNT.1.16");
        assert_eq!(FetchPolicy::round_robin(1, 8).to_string(), "RR.1.8");
    }

    #[test]
    fn paper_sweep_covers_all_four() {
        let names: Vec<String> = FetchPolicy::paper_sweep()
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(names, ["ICOUNT.1.8", "ICOUNT.2.8", "ICOUNT.1.16", "ICOUNT.2.16"]);
    }

    #[test]
    #[should_panic(expected = "n.X")]
    fn three_thread_fetch_rejected() {
        let _ = FetchPolicy::icount(3, 8);
    }

    #[test]
    fn table3_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_buffer, 32);
        assert_eq!(c.decode_width, 8);
        assert_eq!(c.ftq_depth, 4);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.regs_int, 384);
        assert_eq!((c.fu_int, c.fu_ls, c.fu_fp), (6, 4, 3));
    }

    #[test]
    fn engine_display() {
        assert_eq!(FetchEngineKind::GshareBtb.to_string(), "gshare+BTB");
        assert_eq!(FetchEngineKind::GskewFtb.to_string(), "gskew+FTB");
        assert_eq!(FetchEngineKind::Stream.to_string(), "stream");
        assert_eq!(FetchEngineKind::all().len(), 3);
    }
}
