//! Simulator configuration (Table 3 of the paper) and its semantic
//! validator.
//!
//! [`SimConfig::validate`] checks every structural invariant the simulator
//! relies on — predictor table geometry, memory-hierarchy shapes,
//! fetch-policy × hardware compatibility, resource bounds — and reports
//! problems as [`Diagnostic`]s with stable codes (the table lives in the
//! repository README). [`Simulator`](crate::Simulator) construction and
//! every experiment binary run the validator before simulating.

use std::fmt;

use smt_isa::{Diagnostic, NUM_ARCH_FP, NUM_ARCH_INT};
use smt_mem::{MemoryConfig, MemoryHierarchy};

use crate::frontend::{AnyFrontEnd, LINE_BYTES};

/// Which high-performance fetch engine drives the front-end (paper §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FetchEngineKind {
    /// gshare (64K, 16-bit history) + BTB (2K, 4-way): the standard SMT
    /// front-end the paper compares against.
    GshareBtb,
    /// gskew (3×32K, 15-bit history) + FTB (2K, 4-way): the first proposed
    /// high-performance engine.
    GskewFtb,
    /// The stream front-end (1K + 4K cascaded stream predictor).
    Stream,
    /// A trace cache backed by a gshare+BTB core fetch unit — the
    /// high-complexity alternative the paper's related work compares
    /// against (Rotenberg et al.); included to reproduce the "stream fetch
    /// is within ~1.5% of a trace cache" comparison.
    TraceCache,
}

impl FetchEngineKind {
    /// The paper's three engines, in its presentation order.
    pub fn all() -> [FetchEngineKind; 3] {
        [
            FetchEngineKind::GshareBtb,
            FetchEngineKind::GskewFtb,
            FetchEngineKind::Stream,
        ]
    }

    /// The paper's engines plus the trace cache comparator.
    pub fn all_with_trace_cache() -> [FetchEngineKind; 4] {
        [
            FetchEngineKind::GshareBtb,
            FetchEngineKind::GskewFtb,
            FetchEngineKind::Stream,
            FetchEngineKind::TraceCache,
        ]
    }
}

impl fmt::Display for FetchEngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchEngineKind::GshareBtb => write!(f, "gshare+BTB"),
            FetchEngineKind::GskewFtb => write!(f, "gskew+FTB"),
            FetchEngineKind::Stream => write!(f, "stream"),
            FetchEngineKind::TraceCache => write!(f, "trace cache"),
        }
    }
}

impl std::str::FromStr for FetchEngineKind {
    type Err = Diagnostic;

    /// Parses the canonical engine names as registered in
    /// [`FRONT_ENDS`](crate::FRONT_ENDS) (which match `Display`), so CLI
    /// flags cannot drift from the registry.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::frontend::FRONT_ENDS
            .iter()
            .find(|e| e.name == s)
            .map(|e| e.kind)
            .ok_or_else(|| {
                Diagnostic::error(
                    "E0016",
                    "engine",
                    format!("unknown fetch engine {s:?}"),
                    "expected one of: gshare+BTB, gskew+FTB, stream, trace cache",
                )
            })
    }
}

/// How threads are prioritized for prediction/fetch slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyKind {
    /// ICOUNT (Tullsen et al.): prioritize the thread with the fewest
    /// instructions in the pre-issue pipeline stages.
    Icount,
    /// Round-robin rotation among eligible threads.
    RoundRobin,
    /// BRCOUNT (Tullsen et al.): fewest unresolved branches in the
    /// pre-issue stages.
    BrCount,
    /// MISSCOUNT (Tullsen et al.): fewest outstanding long-latency data
    /// misses.
    MissCount,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Icount => write!(f, "ICOUNT"),
            PolicyKind::RoundRobin => write!(f, "RR"),
            PolicyKind::BrCount => write!(f, "BRCOUNT"),
            PolicyKind::MissCount => write!(f, "MISSCOUNT"),
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = Diagnostic;

    /// Parses the paper's policy mnemonics (the `Display` spellings).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ICOUNT" => Ok(PolicyKind::Icount),
            "RR" => Ok(PolicyKind::RoundRobin),
            "BRCOUNT" => Ok(PolicyKind::BrCount),
            "MISSCOUNT" => Ok(PolicyKind::MissCount),
            _ => Err(Diagnostic::error(
                "E0017",
                "policy",
                format!("unknown fetch policy {s:?}"),
                "expected one of: ICOUNT, RR, BRCOUNT, MISSCOUNT",
            )),
        }
    }
}

/// What the front-end does about a thread with a long-latency (memory)
/// load in flight — the mechanisms of Tullsen & Brown (MICRO 2001), which
/// the paper's §5.2 cites as the orthodox answer to the resource-clogging
/// problem its 1.X fetch unit sidesteps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LongLatencyAction {
    /// Keep fetching the thread normally (the paper's configurations).
    #[default]
    None,
    /// STALL: gate the thread's prediction/fetch slots until the miss
    /// returns.
    Stall,
    /// FLUSH: additionally squash the thread's instructions younger than
    /// the missing load, freeing the shared queues they occupy.
    Flush,
}

impl fmt::Display for LongLatencyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LongLatencyAction::None => Ok(()),
            LongLatencyAction::Stall => write!(f, "-STALL"),
            LongLatencyAction::Flush => write!(f, "-FLUSH"),
        }
    }
}

/// A fetch policy in the paper's `POLICY.n.X` notation: up to `X`
/// instructions from up to `n` threads per cycle.
///
/// # Example
///
/// ```
/// use smt_core::FetchPolicy;
///
/// let p = FetchPolicy::icount(1, 16);
/// assert_eq!(p.to_string(), "ICOUNT.1.16");
/// assert_eq!(p.threads_per_cycle, 1);
/// assert_eq!(p.width, 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FetchPolicy {
    /// Thread-priority scheme.
    pub kind: PolicyKind,
    /// `n`: threads fetched per cycle (1 or 2).
    pub threads_per_cycle: u32,
    /// `X`: total instructions fetched per cycle (8 or 16).
    pub width: u32,
    /// Long-latency-load handling on top of the priority scheme.
    pub long_latency: LongLatencyAction,
}

impl FetchPolicy {
    /// `ICOUNT.n.X`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn icount(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::Icount,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// `RR.n.X` (round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn round_robin(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::RoundRobin,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// `BRCOUNT.n.X`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn br_count(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::BrCount,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// `MISSCOUNT.n.X`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 1 or 2, or `width` is 0.
    pub fn miss_count(n: u32, width: u32) -> Self {
        assert!((1..=2).contains(&n), "n.X policies with n in {{1, 2}} only");
        assert!(width > 0, "zero fetch width");
        FetchPolicy {
            kind: PolicyKind::MissCount,
            threads_per_cycle: n,
            width,
            long_latency: LongLatencyAction::None,
        }
    }

    /// Adds STALL gating for long-latency loads (Tullsen & Brown).
    pub fn with_stall(mut self) -> Self {
        self.long_latency = LongLatencyAction::Stall;
        self
    }

    /// Adds FLUSH recovery for long-latency loads (Tullsen & Brown).
    pub fn with_flush(mut self) -> Self {
        self.long_latency = LongLatencyAction::Flush;
        self
    }

    /// The four policies the paper sweeps: `1.8`, `2.8`, `1.16`, `2.16`.
    pub fn paper_sweep() -> [FetchPolicy; 4] {
        [
            FetchPolicy::icount(1, 8),
            FetchPolicy::icount(2, 8),
            FetchPolicy::icount(1, 16),
            FetchPolicy::icount(2, 16),
        ]
    }
}

impl fmt::Display for FetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}.{}.{}",
            self.kind, self.long_latency, self.threads_per_cycle, self.width
        )
    }
}

impl std::str::FromStr for FetchPolicy {
    type Err = Diagnostic;

    /// Parses the paper's `POLICY[-STALL|-FLUSH].n.X` notation — the exact
    /// strings `Display` produces (e.g. `"ICOUNT.2.8"`,
    /// `"ICOUNT-FLUSH.1.16"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |why: &str| {
            Diagnostic::error(
                "E0017",
                "policy",
                format!("malformed fetch policy {s:?}: {why}"),
                "expected POLICY[-STALL|-FLUSH].n.X, e.g. ICOUNT.2.8",
            )
        };
        let (rest, width_s) = s.rsplit_once('.').ok_or_else(|| bad("missing .X"))?;
        let (head, n_s) = rest.rsplit_once('.').ok_or_else(|| bad("missing .n"))?;
        let width: u32 = width_s.parse().map_err(|_| bad("X is not an integer"))?;
        let n: u32 = n_s.parse().map_err(|_| bad("n is not an integer"))?;
        if !(1..=2).contains(&n) {
            return Err(bad("n must be 1 or 2"));
        }
        if width == 0 {
            return Err(bad("X must be positive"));
        }
        let (kind_s, long_latency) = if let Some(k) = head.strip_suffix("-STALL") {
            (k, LongLatencyAction::Stall)
        } else if let Some(k) = head.strip_suffix("-FLUSH") {
            (k, LongLatencyAction::Flush)
        } else {
            (head, LongLatencyAction::None)
        };
        Ok(FetchPolicy {
            kind: kind_s.parse()?,
            threads_per_cycle: n,
            width,
            long_latency,
        })
    }
}

/// Branch-predictor and fetch-engine table geometry (Table 3).
///
/// Passive configuration record (public fields by design). Structural
/// legality (power-of-two tables, associativity dividing entries, positive
/// depths) is checked by [`SimConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictorConfig {
    /// gshare pattern-history table entries (64K).
    pub gshare_entries: usize,
    /// gshare global-history length in bits (16).
    pub gshare_hist_bits: u32,
    /// gskew entries per bank, three banks (32K).
    pub gskew_entries_per_bank: usize,
    /// gskew global-history length in bits (15).
    pub gskew_hist_bits: u32,
    /// Branch target buffer entries (2K).
    pub btb_entries: usize,
    /// BTB associativity (4).
    pub btb_ways: usize,
    /// Fetch target buffer entries (2K).
    pub ftb_entries: usize,
    /// FTB associativity (4).
    pub ftb_ways: usize,
    /// Return-address-stack depth, replicated per thread (64).
    pub ras_depth: usize,
    /// First-level stream-predictor entries (1K).
    pub stream_l1_entries: usize,
    /// Second-level (DOLC-indexed) stream-predictor entries (4K).
    pub stream_l2_entries: usize,
    /// Stream-table associativity, both levels (4).
    pub stream_ways: usize,
    /// Trace-cache lines (512), for the related-work comparator.
    pub tc_entries: usize,
    /// Trace-cache associativity (4).
    pub tc_ways: usize,
}

impl PredictorConfig {
    /// The paper's Table 3 predictor geometry.
    pub fn hpca2004() -> Self {
        PredictorConfig {
            gshare_entries: 64 * 1024,
            gshare_hist_bits: 16,
            gskew_entries_per_bank: 32 * 1024,
            gskew_hist_bits: 15,
            btb_entries: 2048,
            btb_ways: 4,
            ftb_entries: 2048,
            ftb_ways: 4,
            ras_depth: 64,
            stream_l1_entries: 1024,
            stream_l2_entries: 4096,
            stream_ways: 4,
            tc_entries: 512,
            tc_ways: 4,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::hpca2004()
    }
}

/// Processor resources (Table 3).
///
/// Passive configuration record (public fields by design).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Fetch policy (`ICOUNT.1.8` … `ICOUNT.2.16`).
    pub fetch_policy: FetchPolicy,
    /// Intermediate fetch-buffer capacity in instructions (32).
    pub fetch_buffer: u32,
    /// Decode and rename width (8).
    pub decode_width: u32,
    /// Commit width (8).
    pub commit_width: u32,
    /// Per-thread fetch target queue depth (4).
    pub ftq_depth: u32,
    /// Integer issue-queue capacity (32).
    pub iq_int: u32,
    /// Load/store issue-queue capacity (32).
    pub iq_ls: u32,
    /// Floating-point issue-queue capacity (32).
    pub iq_fp: u32,
    /// Shared reorder-buffer capacity (256).
    pub rob_size: u32,
    /// Integer physical registers (384).
    pub regs_int: u32,
    /// Floating-point physical registers (384).
    pub regs_fp: u32,
    /// Integer ALUs (6).
    pub fu_int: u32,
    /// Load/store units (4).
    pub fu_ls: u32,
    /// Floating-point units (3).
    pub fu_fp: u32,
    /// Maximum predicted-stream length for the stream front-end (64).
    pub max_stream: u32,
    /// Maximum FTB fetch-block length (16).
    pub max_ftb_block: u32,
    /// Branch-predictor and fetch-engine table geometry.
    pub predictor: PredictorConfig,
    /// Memory-hierarchy geometry (caches, MSHRs, TLBs). `mem.i_mshrs` is a
    /// floor: the simulator raises it to one MSHR per hardware thread, the
    /// paper's requirement.
    pub mem: MemoryConfig,
}

impl SimConfig {
    /// The paper's baseline configuration (Table 3) with the given fetch
    /// policy.
    pub fn hpca2004(fetch_policy: FetchPolicy) -> Self {
        SimConfig {
            fetch_policy,
            fetch_buffer: 32,
            decode_width: 8,
            commit_width: 8,
            ftq_depth: 4,
            iq_int: 32,
            iq_ls: 32,
            iq_fp: 32,
            rob_size: 256,
            regs_int: 384,
            regs_fp: 384,
            fu_int: 6,
            fu_ls: 4,
            fu_fp: 3,
            max_stream: 64,
            max_ftb_block: 16,
            predictor: PredictorConfig::hpca2004(),
            mem: MemoryConfig::hpca2004(1),
        }
    }

    /// Semantically validates the configuration for a single-thread run.
    ///
    /// Returns every problem found (not just the first): `E`-codes are
    /// structural errors — the configuration must not be simulated —
    /// `W`-codes are legal-but-suspicious warnings. An empty vector means
    /// the configuration is clean. See [`SimConfig::validate_for_threads`]
    /// for thread-count-dependent resource checks.
    pub fn validate(&self) -> Vec<Diagnostic> {
        self.validate_for_threads(1)
    }

    /// Semantically validates the configuration for `threads` hardware
    /// contexts (adds the register-file sufficiency checks `E0007`/`W0102`).
    pub fn validate_for_threads(&self, threads: usize) -> Vec<Diagnostic> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let push = |diags: &mut Vec<Diagnostic>, d: Diagnostic| {
            // Engines share substrates (e.g. the BTB), so construction can
            // report the same finding twice; keep the first of each.
            if !diags
                .iter()
                .any(|x| x.code == d.code && x.field == d.field && x.message == d.message)
            {
                diags.push(d);
            }
        };

        // --- Fetch policy shape (E0004) and compatibility (E0003). ---
        let p = &self.fetch_policy;
        if !(1..=2).contains(&p.threads_per_cycle) {
            push(
                &mut diags,
                Diagnostic::error(
                    "E0004",
                    "fetch_policy.threads_per_cycle",
                    format!(
                        "n.X policies fetch from 1 or 2 threads per cycle (got n = {})",
                        p.threads_per_cycle
                    ),
                    "use the paper's 1.X or 2.X architectures",
                ),
            );
        }
        if p.width == 0 {
            push(
                &mut diags,
                Diagnostic::error(
                    "E0004",
                    "fetch_policy.width",
                    "fetch width X must be positive".to_string(),
                    "the paper sweeps X in {8, 16}",
                ),
            );
        }
        if p.threads_per_cycle == 2 && self.mem.l1i.banks < 2 {
            push(
                &mut diags,
                Diagnostic::error(
                    "E0003",
                    "fetch_policy.threads_per_cycle",
                    format!(
                        "a 2.X fetch architecture needs a multi-banked I-cache \
                     (got {} bank)",
                        self.mem.l1i.banks
                    ),
                    "give mem.l1i at least 2 banks (Table 3 uses 8) or use a 1.X policy",
                ),
            );
        }

        // --- Front-end buffering (E0005, E0006). ---
        if self.fetch_buffer < p.width {
            push(
                &mut diags,
                Diagnostic::error(
                    "E0005",
                    "fetch_buffer",
                    format!(
                        "fetch buffer ({} entries) cannot hold one fetch of width {}",
                        self.fetch_buffer, p.width
                    ),
                    "make fetch_buffer at least the fetch width (Table 3: 32)",
                ),
            );
        }
        if self.ftq_depth == 0 {
            push(
                &mut diags,
                Diagnostic::error(
                    "E0006",
                    "ftq_depth",
                    "decoupled fetch needs at least one FTQ entry per thread".to_string(),
                    "the paper uses 4-deep fetch target queues",
                ),
            );
        }

        // --- Back-end resources (E0008). ---
        for (field, v) in [
            ("decode_width", self.decode_width),
            ("commit_width", self.commit_width),
            ("rob_size", self.rob_size),
            ("iq_int", self.iq_int),
            ("iq_ls", self.iq_ls),
            ("iq_fp", self.iq_fp),
            ("fu_int", self.fu_int),
            ("fu_ls", self.fu_ls),
            ("fu_fp", self.fu_fp),
        ] {
            if v == 0 {
                push(
                    &mut diags,
                    Diagnostic::error(
                        "E0008",
                        field,
                        "pipeline resource must be positive".to_string(),
                        "see Table 3 for the paper's sizes",
                    ),
                );
            }
        }

        // --- Register files vs. thread count (E0007, W0102). ---
        // lint:allow(no-lossy-cast): threads ≤ MAX_THREADS = 8
        let threads = threads.max(1) as u32;
        let (need_int, need_fp) = (
            threads * u32::from(NUM_ARCH_INT),
            threads * u32::from(NUM_ARCH_FP),
        );
        for (field, have, need) in [
            ("regs_int", self.regs_int, need_int),
            ("regs_fp", self.regs_fp, need_fp),
        ] {
            if have < need {
                push(
                    &mut diags,
                    Diagnostic::error(
                        "E0007",
                        field,
                        format!(
                            "{have} physical registers cannot architect {threads} \
                         thread(s) × 32 architectural registers"
                        ),
                        "Table 3 provides 384 of each class for 8 contexts",
                    ),
                );
            } else if have < need + self.decode_width {
                push(
                    &mut diags,
                    Diagnostic::warning(
                        "W0102",
                        field,
                        format!(
                            "{have} physical registers leave fewer than \
                         decode_width ({}) free after architecting {threads} \
                         thread(s); rename will stall immediately",
                            self.decode_width
                        ),
                        "provide headroom beyond 32 per thread",
                    ),
                );
            }
        }

        // --- Predictor geometry: validate by construction (E0001, E0002,
        // E0012, E0014), exactly the checks the real constructors apply. ---
        for kind in FetchEngineKind::all_with_trace_cache() {
            if let Err(d) = AnyFrontEnd::build(kind, self) {
                push(&mut diags, d);
            }
        }
        if let Err(d) = smt_bpred::ReturnStack::new(self.predictor.ras_depth) {
            push(&mut diags, d.in_field("predictor.ras_depth"));
        }
        for (field, bits) in [
            (
                "predictor.gshare_hist_bits",
                self.predictor.gshare_hist_bits,
            ),
            ("predictor.gskew_hist_bits", self.predictor.gskew_hist_bits),
        ] {
            if !(1..=64).contains(&bits) {
                push(
                    &mut diags,
                    Diagnostic::error(
                        "E0014",
                        field,
                        format!("global history must be 1..=64 bits (got {bits})"),
                        "the paper uses 16 (gshare) and 15 (gskew)",
                    ),
                );
            }
        }

        // --- History length vs. table index bits (W0101). ---
        for (field, bits, entries) in [
            (
                "predictor.gshare_hist_bits",
                self.predictor.gshare_hist_bits,
                self.predictor.gshare_entries,
            ),
            (
                "predictor.gskew_hist_bits",
                self.predictor.gskew_hist_bits,
                self.predictor.gskew_entries_per_bank,
            ),
        ] {
            if entries.is_power_of_two() && u64::from(bits) > entries.trailing_zeros() as u64 {
                push(
                    &mut diags,
                    Diagnostic::warning(
                        "W0101",
                        field,
                        format!(
                            "{bits}-bit history exceeds the {} index bits of a \
                         {entries}-entry table; distinct histories will alias",
                            entries.trailing_zeros()
                        ),
                        "grow the table or shorten the history",
                    ),
                );
            }
        }

        // --- Memory hierarchy: validate by construction (E0009, E0010,
        // E0011), with the same per-thread I-MSHR floor the simulator
        // applies. ---
        let mut mem_cfg = self.mem.clone();
        mem_cfg.i_mshrs = mem_cfg.i_mshrs.max(threads as usize);
        if let Err(d) = MemoryHierarchy::new(mem_cfg) {
            push(&mut diags, d);
        }
        if self.mem.l1i.line_bytes != LINE_BYTES {
            push(
                &mut diags,
                Diagnostic::error(
                    "E0015",
                    "mem.l1i.line_bytes",
                    format!(
                        "the fetch unit's block-building assumes {LINE_BYTES} B \
                     I-cache lines (got {})",
                        self.mem.l1i.line_bytes
                    ),
                    "use the 64 B line size of Table 3",
                ),
            );
        }
        if self.mem.l2.size_bytes < self.mem.l1i.size_bytes + self.mem.l1d.size_bytes {
            push(
                &mut diags,
                Diagnostic::warning(
                    "W0103",
                    "mem.l2.size_bytes",
                    format!(
                        "L2 ({} B) is smaller than L1I + L1D ({} B); inclusion \
                     thrashing will dominate",
                        self.mem.l2.size_bytes,
                        self.mem.l1i.size_bytes + self.mem.l1d.size_bytes
                    ),
                    "Table 3 uses a 1 MB L2 over 32 KB + 32 KB L1s",
                ),
            );
        }

        diags
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::hpca2004(FetchPolicy::icount(1, 8))
    }
}

#[cfg(test)]
// The validator tests mutate one field of the Table 3 default at a
// time; reassignment after `default()` is the point.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn policy_display_matches_paper_notation() {
        assert_eq!(FetchPolicy::icount(2, 8).to_string(), "ICOUNT.2.8");
        assert_eq!(FetchPolicy::icount(1, 16).to_string(), "ICOUNT.1.16");
        assert_eq!(FetchPolicy::round_robin(1, 8).to_string(), "RR.1.8");
    }

    #[test]
    fn paper_sweep_covers_all_four() {
        let names: Vec<String> = FetchPolicy::paper_sweep()
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(
            names,
            ["ICOUNT.1.8", "ICOUNT.2.8", "ICOUNT.1.16", "ICOUNT.2.16"]
        );
    }

    #[test]
    #[should_panic(expected = "n.X")]
    fn three_thread_fetch_rejected() {
        let _ = FetchPolicy::icount(3, 8);
    }

    #[test]
    fn table3_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_buffer, 32);
        assert_eq!(c.decode_width, 8);
        assert_eq!(c.ftq_depth, 4);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.regs_int, 384);
        assert_eq!((c.fu_int, c.fu_ls, c.fu_fp), (6, 4, 3));
    }

    #[test]
    fn engine_display() {
        assert_eq!(FetchEngineKind::GshareBtb.to_string(), "gshare+BTB");
        assert_eq!(FetchEngineKind::GskewFtb.to_string(), "gskew+FTB");
        assert_eq!(FetchEngineKind::Stream.to_string(), "stream");
        assert_eq!(FetchEngineKind::all().len(), 3);
    }

    // ----- validator -----------------------------------------------------

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn assert_rejects(cfg: &SimConfig, threads: usize, code: &str) {
        let diags = cfg.validate_for_threads(threads);
        assert!(
            codes(&diags).contains(&code),
            "expected {code}, got {:?}",
            codes(&diags)
        );
        assert!(smt_isa::has_errors(&diags), "{code} should be an error");
    }

    #[test]
    fn table3_config_validates_clean_for_all_thread_counts() {
        for policy in FetchPolicy::paper_sweep() {
            let cfg = SimConfig::hpca2004(policy);
            for threads in 1..=smt_isa::MAX_THREADS {
                let diags = cfg.validate_for_threads(threads);
                assert!(diags.is_empty(), "{policy}: {diags:?}");
            }
        }
    }

    #[test]
    fn e0001_non_power_of_two_table_rejected() {
        let mut cfg = SimConfig::default();
        cfg.predictor.gshare_entries = 3000;
        assert_rejects(&cfg, 1, "E0001");
    }

    #[test]
    fn e0002_entries_not_multiple_of_ways_rejected() {
        let mut cfg = SimConfig::default();
        cfg.predictor.btb_entries = 2048;
        cfg.predictor.btb_ways = 5;
        assert_rejects(&cfg, 1, "E0002");
    }

    #[test]
    fn e0003_two_ported_fetch_needs_banked_icache() {
        let mut cfg = SimConfig::hpca2004(FetchPolicy::icount(2, 8));
        cfg.mem.l1i.banks = 1;
        assert_rejects(&cfg, 2, "E0003");
        // The 1.X architecture never needs the second port.
        let mut one = SimConfig::hpca2004(FetchPolicy::icount(1, 8));
        one.mem.l1i.banks = 1;
        assert!(!codes(&one.validate()).contains(&"E0003"));
    }

    #[test]
    fn e0004_malformed_policy_rejected() {
        let mut cfg = SimConfig::default();
        cfg.fetch_policy.threads_per_cycle = 3;
        assert_rejects(&cfg, 1, "E0004");
        let mut cfg = SimConfig::default();
        cfg.fetch_policy.width = 0;
        assert_rejects(&cfg, 1, "E0004");
    }

    #[test]
    fn e0005_fetch_buffer_smaller_than_width_rejected() {
        let mut cfg = SimConfig::hpca2004(FetchPolicy::icount(1, 16));
        cfg.fetch_buffer = 8;
        assert_rejects(&cfg, 1, "E0005");
    }

    #[test]
    fn e0006_zero_ftq_depth_rejected() {
        let mut cfg = SimConfig::default();
        cfg.ftq_depth = 0;
        assert_rejects(&cfg, 1, "E0006");
    }

    #[test]
    fn e0007_insufficient_registers_depends_on_thread_count() {
        let mut cfg = SimConfig::default();
        cfg.regs_int = 100; // < 4 threads × 32
        assert_rejects(&cfg, 4, "E0007");
        // But three threads fit (96 ≤ 100), modulo a headroom warning.
        let diags = cfg.validate_for_threads(3);
        assert!(!smt_isa::has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn e0008_zero_pipeline_resource_rejected() {
        for field in 0..3 {
            let mut cfg = SimConfig::default();
            match field {
                0 => cfg.rob_size = 0,
                1 => cfg.decode_width = 0,
                _ => cfg.fu_ls = 0,
            }
            assert_rejects(&cfg, 1, "E0008");
        }
    }

    #[test]
    fn e0009_bad_cache_geometry_rejected() {
        let mut cfg = SimConfig::default();
        cfg.mem.l1d.size_bytes = 48 * 1024; // 384 sets: not a power of two
        assert_rejects(&cfg, 1, "E0009");
    }

    #[test]
    fn e0010_zero_mshrs_rejected() {
        let mut cfg = SimConfig::default();
        cfg.mem.d_mshrs = 0;
        assert_rejects(&cfg, 1, "E0010");
    }

    #[test]
    fn e0011_bad_tlb_rejected() {
        let mut cfg = SimConfig::default();
        cfg.mem.itlb.entries = 0;
        assert_rejects(&cfg, 1, "E0011");
    }

    #[test]
    fn e0012_zero_block_limits_rejected() {
        let mut cfg = SimConfig::default();
        cfg.max_stream = 0;
        assert_rejects(&cfg, 1, "E0012");
        let mut cfg = SimConfig::default();
        cfg.max_ftb_block = 0;
        assert_rejects(&cfg, 1, "E0012");
    }

    #[test]
    fn e0013_zero_ras_rejected() {
        let mut cfg = SimConfig::default();
        cfg.predictor.ras_depth = 0;
        assert_rejects(&cfg, 1, "E0013");
    }

    #[test]
    fn e0014_history_out_of_range_rejected() {
        let mut cfg = SimConfig::default();
        cfg.predictor.gskew_hist_bits = 0;
        assert_rejects(&cfg, 1, "E0014");
        let mut cfg = SimConfig::default();
        cfg.predictor.gshare_hist_bits = 65;
        assert_rejects(&cfg, 1, "E0014");
    }

    #[test]
    fn e0015_foreign_line_size_rejected() {
        let mut cfg = SimConfig::default();
        cfg.mem.l1i.line_bytes = 32;
        assert_rejects(&cfg, 1, "E0015");
    }

    #[test]
    fn w0101_history_longer_than_index_warns() {
        let mut cfg = SimConfig::default();
        cfg.predictor.gshare_entries = 1024; // 10 index bits < 16-bit history
        let diags = cfg.validate();
        assert!(codes(&diags).contains(&"W0101"), "{diags:?}");
        assert!(!smt_isa::has_errors(&diags), "warning must not block");
    }

    #[test]
    fn w0102_no_rename_headroom_warns() {
        let mut cfg = SimConfig::default();
        cfg.regs_int = 8 * 32 + 4; // enough to architect, < decode_width spare
        let diags = cfg.validate_for_threads(8);
        assert!(codes(&diags).contains(&"W0102"), "{diags:?}");
        assert!(!smt_isa::has_errors(&diags));
    }

    #[test]
    fn w0103_undersized_l2_warns() {
        let mut cfg = SimConfig::default();
        cfg.mem.l2.size_bytes = 32 * 1024;
        let diags = cfg.validate();
        assert!(codes(&diags).contains(&"W0103"), "{diags:?}");
        assert!(!smt_isa::has_errors(&diags));
    }

    #[test]
    fn diagnostics_deduplicate_shared_substrates() {
        // The BTB backs both the gshare engine and the trace-cache engine;
        // one broken BTB must surface once, not once per engine.
        let mut cfg = SimConfig::default();
        cfg.predictor.btb_entries = 3000;
        let diags = cfg.validate();
        let hits = diags.iter().filter(|d| d.field.contains("btb")).count();
        assert_eq!(hits, 1, "{diags:?}");
    }
}
