//! Simulation statistics: the paper's two headline metrics plus the
//! distributions quoted in §3.1/§3.2.

use smt_isa::{snap_mismatch, Diagnostic, Snap, SnapReader, SnapWriter, MAX_THREADS};

/// Marks the start of the per-reason skip-counter section in serialized
/// [`SimStats`] (ASCII "SKIP"). Snapshots written before the event-driven
/// scheduler lack the section; the tag turns a silent field-offset drift
/// into an explicit `E0018` diagnostic.
const SKIP_SECTION_TAG: u32 = 0x534b_4950;

/// Histogram of instructions delivered per fetch cycle (0 ..= 16).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FetchDistribution {
    buckets: Vec<u64>,
}

impl FetchDistribution {
    /// Creates an empty distribution for widths up to `max_width`.
    pub fn new(max_width: u32) -> Self {
        FetchDistribution {
            buckets: vec![0; max_width as usize + 1],
        }
    }

    /// Records one fetch cycle that delivered `n` instructions.
    pub fn record(&mut self, n: u32) {
        let idx = (n as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total fetch cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of fetch cycles that delivered at least `n` instructions.
    pub fn frac_at_least(&self, n: u32) -> f64 {
        let total = self.cycles();
        if total == 0 {
            return 0.0;
        }
        let ge: u64 = self.buckets.iter().skip(n as usize).sum();
        ge as f64 / total as f64
    }

    /// Fraction of fetch cycles that delivered exactly `n` instructions.
    pub fn frac_exactly(&self, n: u32) -> f64 {
        let total = self.cycles();
        if total == 0 {
            return 0.0;
        }
        self.buckets.get(n as usize).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Serializes the histogram (bucket count prefix, then the buckets).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.buckets.len());
        for b in &self.buckets {
            w.u64(*b);
        }
    }

    /// Restores a histogram saved by [`FetchDistribution::save_state`] in
    /// place.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored bucket count differs from this histogram's
    /// (the fetch width is configuration-derived) or the stream is
    /// malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let n = r.usize()?;
        if n != self.buckets.len() {
            return Err(snap_mismatch(
                "fetch-distribution width",
                format!(
                    "snapshot has {n} buckets, histogram has {}",
                    self.buckets.len()
                ),
            ));
        }
        for b in &mut self.buckets {
            *b = r.u64()?;
        }
        Ok(())
    }
}

/// Per-thread, per-cycle stall attribution, filled in by the pipeline
/// stages.
///
/// Every simulated cycle, each thread is charged to exactly **one** bucket:
/// the most severe bottleneck any stage observed for it that cycle, or the
/// `residual` bucket when no stage reported one (the thread was making
/// progress, idle, or hidden behind another thread's work). Consequently,
/// for every thread `t`, the six stall buckets plus `residual` sum to
/// [`SimStats::cycles`] — an invariant the test suite asserts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles fetch was blocked behind an I-cache miss.
    pub icache_miss: [u64; MAX_THREADS],
    /// Cycles a 2.X second-port access was lost to an I-cache bank conflict.
    pub bank_conflict: [u64; MAX_THREADS],
    /// Cycles the thread was fetch-ready but the fetch policy served other
    /// threads (or the shared fetch buffer was full).
    pub fetch_starved: [u64; MAX_THREADS],
    /// Cycles dispatch was blocked because the shared ROB was full.
    pub rob_full: [u64; MAX_THREADS],
    /// Cycles a ready instruction could not issue for lack of functional
    /// units.
    pub issue_width: [u64; MAX_THREADS],
    /// Cycles commit was blocked behind an outstanding data-cache miss.
    pub dcache_miss: [u64; MAX_THREADS],
    /// Cycles with no attributed stall: progressing, idle, or overlapped.
    pub residual: [u64; MAX_THREADS],
}

impl StallBreakdown {
    /// Sum of all buckets (including the residual) for thread `tid` —
    /// equals [`SimStats::cycles`] for every simulated thread.
    pub fn total(&self, tid: usize) -> u64 {
        self.icache_miss[tid]
            + self.bank_conflict[tid]
            + self.fetch_starved[tid]
            + self.rob_full[tid]
            + self.issue_width[tid]
            + self.dcache_miss[tid]
            + self.residual[tid]
    }

    /// Sum of the six stall buckets (excluding the residual) for `tid`.
    pub fn stalled(&self, tid: usize) -> u64 {
        self.total(tid) - self.residual[tid]
    }

    /// Serializes every bucket array, in declaration order.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for arr in [
            &self.icache_miss,
            &self.bank_conflict,
            &self.fetch_starved,
            &self.rob_full,
            &self.issue_width,
            &self.dcache_miss,
            &self.residual,
        ] {
            arr.save(w);
        }
    }

    /// Restores a breakdown saved by [`StallBreakdown::save_state`].
    ///
    /// # Errors
    ///
    /// `E0018` if the byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.icache_miss = Snap::load(r)?;
        self.bank_conflict = Snap::load(r)?;
        self.fetch_starved = Snap::load(r)?;
        self.rob_full = Snap::load(r)?;
        self.issue_width = Snap::load(r)?;
        self.dcache_miss = Snap::load(r)?;
        self.residual = Snap::load(r)?;
        Ok(())
    }
}

/// Aggregated statistics of one simulation run.
///
/// Passive data record (public fields by design); produced by the simulator,
/// consumed by the experiment harness. Every field is an integer counter, so
/// equality is exact — the determinism tests compare whole snapshots with
/// `==` to assert that reruns (serial or on different sweep workers) are
/// bit-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Cycles in which the fetch stage issued at least one I-cache access
    /// — the paper's IPFC denominator ("instructions provided by the fetch
    /// unit on every fetch request").
    pub fetch_cycles: u64,
    /// Instructions delivered by the fetch stage (correct + wrong path).
    pub fetched: u64,
    /// Wrong-path instructions delivered.
    pub fetched_wrong_path: u64,
    /// Instructions committed, per thread.
    pub committed: [u64; MAX_THREADS],
    /// Instructions squashed.
    pub squashed: u64,
    /// Conditional branches resolved on the correct path.
    pub cond_branches: u64,
    /// Conditional branches mispredicted (direction) on the correct path.
    pub cond_mispredicts: u64,
    /// Correct-path branches of any kind whose speculative next PC was
    /// wrong (direction, target, or misfetch).
    pub control_mispredicts: u64,
    /// Fetch blocks predicted.
    pub blocks_predicted: u64,
    /// Cycles in which fetch was stalled because the fetch buffer was full.
    pub fetch_buffer_stalls: u64,
    /// Cycles a 2.X second thread lost to an I-cache bank conflict.
    pub bank_conflicts: u64,
    /// Distribution of instructions per fetch cycle.
    pub distribution: FetchDistribution,
    /// Committed predicted conditionals whose prediction-time history
    /// checkpoint disagreed with the architectural history (diagnostic;
    /// should be ~0 for the gshare+BTB engine).
    pub hist_mismatches: u64,
    /// Long-latency-load FLUSH events (Tullsen & Brown mechanism).
    pub flushes: u64,
    /// Per-thread stall attribution (one bucket per thread per cycle).
    pub stalls: StallBreakdown,
    /// Cycles skipped while the binding event was a data-side memory
    /// expiry (a load's completion or an MSHR fill return). Skipped cycles
    /// are already included in `cycles`; the four `skip_*` counters are
    /// diagnostics for how much of the run the event-driven scheduler
    /// jumped over, split by the reason of the earliest event.
    pub skip_mem_wait: u64,
    /// Cycles skipped waiting on issue-side events: operand readiness in
    /// the issue queues, a non-load completion, or a decode-redirect timer.
    pub skip_issue_wait: u64,
    /// Cycles skipped waiting on an I-cache miss return (FTQ head blocked).
    pub skip_ftq_wait: u64,
    /// Cycles skipped while the STALL/FLUSH policy gate was the binding
    /// event (fetch deliberately idled until the long-latency load returns).
    pub skip_policy_idle: u64,
}

impl SimStats {
    /// Creates zeroed statistics for a given maximum fetch width.
    pub fn new(max_width: u32) -> Self {
        SimStats {
            distribution: FetchDistribution::new(max_width),
            ..SimStats::default()
        }
    }

    /// Total committed instructions across threads.
    pub fn total_committed(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// Total cycles skipped by the event-driven scheduler, across every
    /// skip reason (already included in `cycles`).
    pub fn skipped_cycles(&self) -> u64 {
        self.skip_mem_wait + self.skip_issue_wait + self.skip_ftq_wait + self.skip_policy_idle
    }

    /// Commit throughput in instructions per cycle — the paper's overall
    /// SMT performance metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_committed() as f64 / self.cycles as f64
    }

    /// Fetch throughput in instructions per fetch cycle — the paper's fetch
    /// performance metric.
    pub fn ipfc(&self) -> f64 {
        if self.fetch_cycles == 0 {
            return 0.0;
        }
        self.fetched as f64 / self.fetch_cycles as f64
    }

    /// Conditional-branch direction prediction accuracy in [0, 1].
    pub fn branch_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            return 1.0;
        }
        1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64
    }

    /// Fraction of fetched instructions on the wrong path.
    pub fn wrong_path_fraction(&self) -> f64 {
        if self.fetched == 0 {
            return 0.0;
        }
        self.fetched_wrong_path as f64 / self.fetched as f64
    }

    /// Serializes every counter, in declaration order.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cycles);
        w.u64(self.fetch_cycles);
        w.u64(self.fetched);
        w.u64(self.fetched_wrong_path);
        self.committed.save(w);
        w.u64(self.squashed);
        w.u64(self.cond_branches);
        w.u64(self.cond_mispredicts);
        w.u64(self.control_mispredicts);
        w.u64(self.blocks_predicted);
        w.u64(self.fetch_buffer_stalls);
        w.u64(self.bank_conflicts);
        self.distribution.save_state(w);
        w.u64(self.hist_mismatches);
        w.u64(self.flushes);
        self.stalls.save_state(w);
        w.u32(SKIP_SECTION_TAG);
        w.u64(self.skip_mem_wait);
        w.u64(self.skip_issue_wait);
        w.u64(self.skip_ftq_wait);
        w.u64(self.skip_policy_idle);
    }

    /// Restores statistics saved by [`SimStats::save_state`] in place,
    /// preserving the histogram's configuration-derived width.
    ///
    /// # Errors
    ///
    /// `E0018` if the histogram width differs or the stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.cycles = r.u64()?;
        self.fetch_cycles = r.u64()?;
        self.fetched = r.u64()?;
        self.fetched_wrong_path = r.u64()?;
        self.committed = Snap::load(r)?;
        self.squashed = r.u64()?;
        self.cond_branches = r.u64()?;
        self.cond_mispredicts = r.u64()?;
        self.control_mispredicts = r.u64()?;
        self.blocks_predicted = r.u64()?;
        self.fetch_buffer_stalls = r.u64()?;
        self.bank_conflicts = r.u64()?;
        self.distribution.load_state(r)?;
        self.hist_mismatches = r.u64()?;
        self.flushes = r.u64()?;
        self.stalls.load_state(r)?;
        let tag = r.u32()?;
        if tag != SKIP_SECTION_TAG {
            return Err(snap_mismatch(
                "skip counters",
                format!(
                    "expected skip-counter section tag {SKIP_SECTION_TAG:#010x}, found {tag:#010x}"
                ),
            ));
        }
        self.skip_mem_wait = r.u64()?;
        self.skip_issue_wait = r.u64()?;
        self.skip_ftq_wait = r.u64()?;
        self.skip_policy_idle = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_ipfc() {
        let mut s = SimStats::new(8);
        s.cycles = 1000;
        s.fetch_cycles = 800;
        s.fetched = 4000;
        s.committed[0] = 1500;
        s.committed[1] = 1500;
        assert!((s.ipc() - 3.0).abs() < 1e-12);
        assert!((s.ipfc() - 5.0).abs() < 1e-12);
        assert_eq!(s.total_committed(), 3000);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let s = SimStats::new(8);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.ipfc(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.wrong_path_fraction(), 0.0);
    }

    #[test]
    fn distribution_fractions() {
        let mut d = FetchDistribution::new(8);
        d.record(0);
        d.record(4);
        d.record(8);
        d.record(8);
        assert_eq!(d.cycles(), 4);
        assert!((d.frac_at_least(4) - 0.75).abs() < 1e-12);
        assert!((d.frac_at_least(8) - 0.5).abs() < 1e-12);
        assert!((d.frac_exactly(8) - 0.5).abs() < 1e-12);
        assert!((d.frac_at_least(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_clamps_overwide_records() {
        let mut d = FetchDistribution::new(8);
        d.record(12); // clamped into the top bucket
        assert!((d.frac_exactly(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut s = SimStats::new(8);
        s.cycles = 123;
        s.fetch_cycles = 99;
        s.fetched = 456;
        s.committed[0] = 7;
        s.committed[3] = 11;
        s.distribution.record(4);
        s.distribution.record(8);
        s.stalls.icache_miss[1] = 17;
        s.stalls.residual[0] = 106;
        s.skip_mem_wait = 2;
        s.skip_issue_wait = 3;
        s.skip_ftq_wait = 5;
        s.skip_policy_idle = 7;
        assert_eq!(s.skipped_cycles(), 17);
        let mut w = SnapWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = SimStats::new(8);
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(fresh, s, "integer stats must restore bit-exactly");

        // A histogram built for a different fetch width is a geometry error.
        let mut wrong = SimStats::new(16);
        let err = wrong.load_state(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.code, "E0018");
    }

    #[test]
    fn missing_skip_section_is_a_mismatch() {
        // A pre-scheduler stream that ends at the stall breakdown (as v1
        // snapshots did, modulo the old single `ff_cycles` word) must fail
        // with an explicit diagnostic, not a misaligned read.
        let s = SimStats::new(8);
        let mut w = SnapWriter::new();
        s.save_state(&mut w);
        let mut bytes = w.into_bytes();
        let tail = bytes.len() - 4 * 8; // keep the (corrupted) tag word
        bytes.truncate(tail);
        let tag_at = bytes.len() - 4;
        bytes[tag_at..].copy_from_slice(&0xdead_beef_u32.to_le_bytes());

        let err = SimStats::new(8)
            .load_state(&mut SnapReader::new(&bytes))
            .unwrap_err();
        assert_eq!(err.code, "E0018");
        assert!(
            format!("{err}").contains("skip counters"),
            "diagnostic names the skip-counter section: {err}"
        );
    }

    #[test]
    fn accuracy() {
        let mut s = SimStats::new(8);
        s.cond_branches = 100;
        s.cond_mispredicts = 7;
        assert!((s.branch_accuracy() - 0.93).abs() < 1e-12);
    }
}
