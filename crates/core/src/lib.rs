//! # smt-core — the SMT processor simulator
//!
//! An execution-driven, cycle-level simulator of the SMT processor the
//! HPCA 2004 paper evaluates: a 9-stage pipeline with a **decoupled
//! front-end** (prediction stage → per-thread FTQs → fetch stage), an
//! 8-wide out-of-order back end (Table 3 resources), and the paper's two
//! fetch architectures:
//!
//! * **1.X** (Figure 1) — fine-grained, non-simultaneous sharing: one
//!   thread fetches per cycle through a single I-cache port;
//! * **2.X** (Figure 3) — simultaneous sharing: two threads per cycle,
//!   with dual predictor ports, bank-conflict logic and a merge network.
//!
//! Front-ends: gshare+BTB (baseline), gskew+FTB, and the stream fetch unit
//! ([`FetchEngineKind`]), all implementations of the pluggable [`FrontEnd`]
//! trait. Thread priority: ICOUNT or round-robin ([`FetchPolicy`]).
//!
//! # Example
//!
//! ```
//! use smt_core::{FetchEngineKind, FetchPolicy, SimBuilder};
//! use smt_workloads::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = SimBuilder::new(Workload::mix2().programs(42)?)
//!     .fetch_engine(FetchEngineKind::Stream)
//!     .fetch_policy(FetchPolicy::icount(1, 16))
//!     .build()?;
//! let stats = sim.run_cycles(10_000);
//! println!("IPC = {:.2}, IPFC = {:.2}", stats.ipc(), stats.ipfc());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cellkey;
mod config;
mod frontend;
mod metrics;
mod pipeline;
mod sim;
mod snapshot;
mod thread;
mod window;

pub use cellkey::CellKey;
pub use config::{
    FetchEngineKind, FetchPolicy, LongLatencyAction, PolicyKind, PredictorConfig, SimConfig,
};
pub use frontend::{
    AnyFrontEnd, BlockMeta, BranchInfo, FrontEnd, FrontEndEntry, GshareBtb, GskewFtb,
    PredictedBlock, SpecState, Stream, TraceCache, TraceFillBuffer, FRONT_ENDS, LINE_BYTES,
};
pub use metrics::StallBreakdown;
pub use metrics::{FetchDistribution, SimStats};
pub use sim::{BuildError, SimBuilder, Simulator};
pub use smt_isa::{has_errors, Diagnostic, Severity};
pub use snapshot::{config_hash, Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use thread::ThreadState;
pub use window::{InFlightCtl, PhysReg, Window};
