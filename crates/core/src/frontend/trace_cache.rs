//! The trace-cache front-end (related-work comparator): a trace cache over
//! a gshare+BTB core fetch unit, with a commit-side fill unit.

use smt_bpred::{Btb, GlobalHistory, Gshare, Trace, TraceCache as TraceStore, TraceSegment};
use smt_isa::{
    Addr, BranchKind, Diagnostic, DynInst, EndBranch, FetchBlock, InstClass, Snap, SnapReader,
    SnapWriter, ThreadId,
};
use smt_workloads::Program;

use std::collections::VecDeque;

use crate::config::{FetchEngineKind, SimConfig};

use super::{
    classic_block, repair_spec, scoped, BlockMeta, BranchInfo, FrontEnd, PredictedBlock, SpecState,
};

/// The trace-cache fill unit's per-thread collection buffer: committed
/// instructions accumulate until a trace line closes (16 instructions or a
/// third taken branch), at which point the trace is installed and the
/// multiple-branch predictor trained.
#[derive(Clone, Debug, Default)]
pub struct TraceFillBuffer {
    /// `(pc, class, taken, next_pc)` of buffered committed instructions.
    entries: Vec<(Addr, InstClass, bool, Addr)>,
    /// Committed end-conditional history at the start of the buffer.
    start_hist: u64,
    /// Taken branches buffered so far.
    taken_branches: u32,
}

impl TraceFillBuffer {
    /// Number of buffered instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the buffered instructions and close-condition counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.entries.len());
        for (pc, class, taken, next_pc) in &self.entries {
            pc.save(w);
            class.save(w);
            w.bool(*taken);
            next_pc.save(w);
        }
        w.u64(self.start_hist);
        w.u32(self.taken_branches);
    }

    /// Restores state saved by [`TraceFillBuffer::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` if the byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let n = r.usize()?;
        self.entries.clear();
        self.entries
            .reserve(n.saturating_sub(self.entries.capacity()));
        for _ in 0..n {
            let pc = Addr::load(r)?;
            let class = InstClass::load(r)?;
            let taken = r.bool()?;
            let next_pc = Addr::load(r)?;
            self.entries.push((pc, class, taken, next_pc));
        }
        self.start_hist = r.u64()?;
        self.taken_branches = r.u32()?;
        Ok(())
    }
}

/// Trace cache + gshare/BTB core fetch unit (related-work comparator).
///
/// On a trace hit the whole trace is emitted as one group of fetch blocks
/// consumable in a single cycle; on a miss the core fetch unit supplies a
/// classical basic block. The trace store and the multiple-branch predictor
/// are trained by the fill unit at commit.
#[derive(Clone, Debug)]
pub struct TraceCache {
    /// The trace storage and its path-associative tags.
    tc: TraceStore,
    /// Multiple-branch direction predictor for way selection
    /// (trained by the fill unit).
    multi: Gshare,
    /// Core fetch unit direction predictor (trained at resolve).
    gshare: Gshare,
    /// Core fetch unit target buffer.
    btb: Btb,
    /// Monotone id shared by the blocks of one emitted trace.
    next_group: u64,
}

impl TraceCache {
    /// Builds the engine from the configuration's predictor geometry.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found in the requested tables.
    pub fn build(cfg: &SimConfig) -> Result<Self, Diagnostic> {
        let p = &cfg.predictor;
        Ok(TraceCache {
            tc: TraceStore::new(p.tc_entries, p.tc_ways).map_err(scoped)?,
            // The core fetch unit backing the trace cache uses a halved
            // gshare so the comparator's total budget stays paper-like.
            multi: Gshare::new(32 * 1024).map_err(scoped)?,
            gshare: Gshare::new(32 * 1024).map_err(scoped)?,
            btb: Btb::new(p.btb_entries, p.btb_ways).map_err(scoped)?,
            next_group: 1,
        })
    }

    /// Serializes the trace store, both gshare instances, the BTB, and the
    /// group-id counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.tc.save_state(w);
        self.multi.save_state(w);
        self.gshare.save_state(w);
        self.btb.save_state(w);
        w.u64(self.next_group);
    }

    /// Restores state saved by [`TraceCache::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on table-geometry mismatch or a malformed stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.tc.load_state(r)?;
        self.multi.load_state(r)?;
        self.gshare.load_state(r)?;
        self.btb.load_state(r)?;
        self.next_group = r.u64()?;
        Ok(())
    }

    /// Trace prediction: way-select by the multiple-branch direction
    /// vector; on a hit emit the trace's segments, on a miss fall back to
    /// the core fetch unit. Appends to `out`.
    #[allow(clippy::too_many_arguments)]
    fn predict_trace(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
        out: &mut VecDeque<PredictedBlock>,
    ) {
        // Multiple-branch prediction: up to 3 segment-end directions,
        // indexed by (start + i, incrementally updated history).
        let mut dirs = [false; 3];
        let mut h = spec.hist;
        for (i, d) in dirs.iter_mut().enumerate() {
            *d = self.multi.predict(pc.add_insts(i as u64), h);
            h.push(*d);
        }
        let hit = self.tc.lookup(pc, &dirs);
        match hit {
            Some(trace) => {
                let group = self.next_group;
                self.next_group += 1;
                let nseg = trace.segments.len().min(max_blocks);
                for (si, seg) in trace.segments.iter().take(nseg).enumerate() {
                    let meta = BlockMeta::capture(spec);
                    let next_start = if si + 1 < trace.segments.len() {
                        trace.segments[si + 1].start
                    } else {
                        trace.next_pc
                    };
                    let fall = seg.start.add_insts(seg.len as u64);
                    let end_branch = seg.end_kind.map(|kind| {
                        let taken = seg.end_taken;
                        let end_pc = seg.start.add_insts(seg.len as u64 - 1);
                        // The trace embodies the path: targets come from the
                        // stored next segment, while the RAS is kept in sync
                        // for later core-fetch predictions.
                        match kind {
                            BranchKind::Cond => spec.hist.push(taken),
                            BranchKind::Call => spec.ras.push(end_pc.add_insts(1)),
                            BranchKind::Return if taken => {
                                let _ = spec.ras.pop();
                            }
                            _ => {}
                        }
                        EndBranch {
                            pc: end_pc,
                            kind,
                            predicted_taken: taken,
                            predicted_target: if taken { next_start } else { Addr::NULL },
                        }
                    });
                    let next_fetch = match &end_branch {
                        Some(e) if e.predicted_taken && !e.predicted_target.is_null() => {
                            e.predicted_target
                        }
                        _ => fall,
                    };
                    out.push_back(PredictedBlock {
                        block: FetchBlock {
                            thread,
                            start: seg.start,
                            len: seg.len,
                            embedded_branches: 0,
                            end_branch,
                            next_fetch,
                        },
                        meta,
                        trace_group: Some(group),
                    });
                }
            }
            None => out.push_back(self.predict_block(thread, pc, spec, program, width)),
        }
    }
}

impl FrontEnd for TraceCache {
    fn kind(&self) -> FetchEngineKind {
        FetchEngineKind::TraceCache
    }

    fn history_bits(&self) -> u32 {
        15
    }

    fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock {
        let meta = BlockMeta::capture(spec);
        let block = classic_block(
            &mut self.gshare,
            &mut self.btb,
            thread,
            pc,
            spec,
            program,
            width,
        );
        PredictedBlock {
            block,
            meta,
            trace_group: None,
        }
    }

    fn predict_blocks_into(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
        out: &mut VecDeque<PredictedBlock>,
    ) {
        self.predict_trace(thread, pc, spec, program, width, max_blocks.max(1), out);
    }

    fn train_resolve(&mut self, info: &BranchInfo, hist: GlobalHistory, di: &DynInst) {
        // The core fetch unit trains like gshare+BTB; the trace cache
        // itself and the multiple-branch predictor are trained by the fill
        // unit at commit.
        if info.is_end && di.is_cond_branch() {
            self.gshare.update(di.pc, hist, di.taken);
        }
        if di.taken {
            let kind = di.class.branch_kind().expect("branch"); // lint:allow(no-panic): update only sees branch-class instructions
            self.btb.record_taken(di.pc, di.next_pc, kind);
        }
    }

    fn trace_fill_commit(
        &mut self,
        fill: &mut TraceFillBuffer,
        di: &DynInst,
        commit_hist_end: u64,
    ) {
        if fill.entries.is_empty() {
            fill.start_hist = commit_hist_end;
            fill.taken_branches = 0;
        }
        fill.entries.push((di.pc, di.class, di.taken, di.next_pc));
        if di.is_branch() && di.taken {
            fill.taken_branches += 1;
        }
        let close = fill.entries.len() >= Trace::MAX_INSTS as usize
            || fill.taken_branches as usize >= Trace::MAX_SEGMENTS;
        if !close {
            return;
        }

        // Build segments: split after every taken control transfer.
        let mut segments: Vec<TraceSegment> = Vec::with_capacity(Trace::MAX_SEGMENTS);
        let mut cond_dirs: Vec<bool> = Vec::new();
        let mut seg_start = fill.entries[0].0;
        let mut seg_len = 0u32;
        for (i, &(pc, class, taken, next_pc)) in fill.entries.iter().enumerate() {
            seg_len += 1;
            let last = i == fill.entries.len() - 1;
            let taken_branch = class.is_branch() && taken;
            if taken_branch || last {
                let end_kind = class.branch_kind();
                if end_kind == Some(BranchKind::Cond) {
                    cond_dirs.push(taken);
                }
                segments.push(TraceSegment {
                    start: seg_start,
                    len: seg_len,
                    end_kind,
                    end_taken: taken,
                });
                seg_start = next_pc;
                seg_len = 0;
            } else {
                debug_assert_eq!(next_pc, pc.add_insts(1), "trace segment contiguity");
            }
        }
        let next_pc = fill.entries.last().expect("non-empty").3; // lint:allow(no-panic): fill buffer checked non-empty before sealing
        let start = fill.entries[0].0;
        let start_hist = fill.start_hist;
        fill.entries.clear();
        fill.taken_branches = 0;

        // Train the multiple-branch predictor with the observed direction
        // vector, using the same (start + i, incremental history) indexing
        // the predictor is consulted with.
        let mut h = GlobalHistory::new(15);
        for i in (0..15u32).rev() {
            h.push((start_hist >> i) & 1 == 1);
        }
        for (i, &d) in cond_dirs.iter().enumerate().take(3) {
            self.multi.update(start.add_insts(i as u64), h, d);
            h.push(d);
        }
        self.tc.fill(Trace {
            segments,
            cond_dirs,
            next_pc,
        });
    }

    fn repair(&mut self, spec: &mut SpecState, info: &BranchInfo, meta: &BlockMeta, di: &DynInst) {
        repair_spec(spec, info, meta, di, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn program() -> Program {
        ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build()
    }

    fn engine() -> TraceCache {
        TraceCache::build(&SimConfig::hpca2004(FetchPolicy::icount(1, 8))).expect("Table 3 builds")
    }

    fn predict_blocks(
        e: &mut TraceCache,
        pc: Addr,
        spec: &mut SpecState,
        prog: &Program,
        width: u32,
        max_blocks: usize,
    ) -> VecDeque<PredictedBlock> {
        let mut out = VecDeque::new();
        e.predict_blocks_into(0, pc, spec, prog, width, max_blocks, &mut out);
        out
    }

    #[test]
    fn misses_fall_back_to_core_fetch() {
        let prog = program();
        let mut e = engine();
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pbs = predict_blocks(&mut e, prog.entry(), &mut spec, &prog, 16, 4);
        assert_eq!(pbs.len(), 1, "cold trace cache must fall back");
        assert!(pbs[0].trace_group.is_none());
        // Fallback blocks obey the classical single-basic-block limit.
        assert!(pbs[0].block.len <= 16);
    }

    #[test]
    fn fill_then_hit_emits_grouped_segments() {
        let prog = program();
        let mut e = engine();
        // Commit a synthetic trace through the fill unit: 6 sequential
        // instructions, a taken cond, then 5 more and a taken jump.
        let mut fill = TraceFillBuffer::default();
        let base = prog.entry();
        let mk = |pc: Addr, class: InstClass, taken: bool, next: Addr| DynInst {
            thread: 0,
            static_id: 0,
            pc,
            class,
            dest: None,
            srcs: [None, None],
            mem: None,
            taken,
            next_pc: next,
            wrong_path: false,
        };
        for i in 0..5u64 {
            let pc = base.add_insts(i);
            e.trace_fill_commit(
                &mut fill,
                &mk(pc, InstClass::IntAlu, false, pc.add_insts(1)),
                0,
            );
        }
        let br = base.add_insts(5);
        let tgt = base.add_insts(40);
        e.trace_fill_commit(
            &mut fill,
            &mk(br, InstClass::Branch(BranchKind::Cond), true, tgt),
            0,
        );
        for i in 0..4u64 {
            let pc = tgt.add_insts(i);
            e.trace_fill_commit(
                &mut fill,
                &mk(pc, InstClass::IntAlu, false, pc.add_insts(1)),
                0,
            );
        }
        let br2 = tgt.add_insts(4);
        let tgt2 = base.add_insts(80);
        e.trace_fill_commit(
            &mut fill,
            &mk(br2, InstClass::Branch(BranchKind::Jump), true, tgt2),
            0,
        );
        // Keep feeding to force a close on the 3rd taken branch (15 insts
        // total, under the 16-instruction line limit).
        for i in 0..3u64 {
            let pc = tgt2.add_insts(i);
            e.trace_fill_commit(
                &mut fill,
                &mk(pc, InstClass::IntAlu, false, pc.add_insts(1)),
                0,
            );
        }
        let br3 = tgt2.add_insts(3);
        e.trace_fill_commit(
            &mut fill,
            &mk(br3, InstClass::Branch(BranchKind::Jump), true, base),
            0,
        );
        assert!(fill.is_empty(), "third taken branch must close the trace");

        // The filled trace is now fetchable in one multi-block prediction.
        let mut spec = SpecState::new(e.history_bits(), base);
        let pbs = predict_blocks(&mut e, base, &mut spec, &prog, 16, 4);
        assert!(pbs.len() >= 2, "trace hit must emit its segments");
        let group = pbs[0].trace_group.expect("trace blocks carry a group");
        assert!(pbs.iter().all(|p| p.trace_group == Some(group)));
        assert_eq!(pbs[0].block.start, base);
        assert_eq!(pbs[0].block.len, 6);
        assert_eq!(pbs[0].block.next_fetch, tgt);
        assert_eq!(pbs[1].block.start, tgt);
    }
}
