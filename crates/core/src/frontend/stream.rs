//! The stream front-end: learned instruction streams, no per-branch
//! direction predictor.

use smt_bpred::{GlobalHistory, ObservedStream, StreamPath, StreamPredictor};
use smt_isa::{
    Addr, BranchKind, Diagnostic, DynInst, EndBranch, FetchBlock, SnapReader, SnapWriter, ThreadId,
};
use smt_workloads::Program;

use crate::config::{FetchEngineKind, SimConfig};

use super::{
    repair_spec, scoped, sequential_block, BlockMeta, BranchInfo, FrontEnd, PredictedBlock,
    SpecState,
};

/// The paper's stream fetch unit: a cascaded predictor of *instruction
/// streams* (taken-target to next taken branch). Stream-ending branches are
/// taken by definition, so no separate direction predictor exists and the
/// speculative history register never shifts.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Cascaded stream predictor.
    predictor: StreamPredictor,
}

impl Stream {
    /// Builds the engine from the configuration's predictor geometry.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found in the requested tables.
    pub fn build(cfg: &SimConfig) -> Result<Self, Diagnostic> {
        let p = &cfg.predictor;
        Ok(Stream {
            predictor: StreamPredictor::new(
                p.stream_l1_entries,
                p.stream_l2_entries,
                p.stream_ways,
                smt_bpred::Dolc::HPCA2004,
                cfg.max_stream,
            )
            .map_err(scoped)?,
        })
    }

    /// Serializes both cascade levels of the stream predictor.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.predictor.save_state(w);
    }

    /// Restores state saved by [`Stream::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on table-geometry mismatch or a malformed stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.predictor.load_state(r)
    }
}

impl FrontEnd for Stream {
    fn kind(&self) -> FetchEngineKind {
        FetchEngineKind::Stream
    }

    fn history_bits(&self) -> u32 {
        16 // unused, kept for uniform state
    }

    fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock {
        let _ = program;
        let meta = BlockMeta::capture(spec);
        let block = match self.predictor.predict(pc, &spec.path) {
            Some(p) => {
                let len = p.len.max(1);
                match p.end {
                    Some(end) => {
                        let end_pc = pc.add_insts(len as u64 - 1);
                        // Stream-ending branches are taken by definition.
                        let target = match end.kind {
                            BranchKind::Return => spec.ras.pop(),
                            BranchKind::Call => {
                                spec.ras.push(end_pc.add_insts(1));
                                end.target
                            }
                            _ => end.target,
                        };
                        let fall = pc.add_insts(len as u64);
                        let next = if target.is_null() { fall } else { target };
                        // This block closes a stream: record it in the
                        // path and open the next stream.
                        spec.path.push(spec.stream_start);
                        spec.stream_start = next;
                        FetchBlock {
                            thread,
                            start: pc,
                            len,
                            embedded_branches: 0,
                            end_branch: Some(EndBranch {
                                pc: end_pc,
                                kind: end.kind,
                                predicted_taken: true,
                                predicted_target: target,
                            }),
                            next_fetch: next,
                        }
                    }
                    None => sequential_block(thread, pc, len),
                }
            }
            None => sequential_block(thread, pc, width),
        };
        PredictedBlock {
            block,
            meta,
            trace_group: None,
        }
    }

    fn train_resolve(&mut self, _info: &BranchInfo, _hist: GlobalHistory, _di: &DynInst) {
        // Stream training happens at commit, on completed streams.
    }

    fn train_commit(&mut self, start: Addr, path: &StreamPath, obs: ObservedStream) {
        self.predictor.train(start, path, obs);
    }

    fn repair(&mut self, spec: &mut SpecState, info: &BranchInfo, meta: &BlockMeta, di: &DynInst) {
        // No direction predictor, so the speculative history never shifts.
        repair_spec(spec, info, meta, di, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn program() -> Program {
        ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build()
    }

    fn engine() -> Stream {
        Stream::build(&SimConfig::hpca2004(FetchPolicy::icount(1, 8))).expect("Table 3 builds")
    }

    #[test]
    fn learns_streams_at_commit() {
        let prog = program();
        let mut e = engine();
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pc = prog.entry();
        // Cold: sequential width block.
        let pb = e.predict_block(0, pc, &mut spec, &prog, 16);
        assert_eq!(pb.block.len, 16);
        // Commit-side training: a 24-instruction stream ending in a taken
        // branch to 0x40_2000.
        e.train_commit(
            pc,
            &StreamPath::new(),
            ObservedStream {
                len: 24,
                kind: BranchKind::Cond,
                target: Addr::new(0x40_2000),
            },
        );
        let mut spec2 = SpecState::new(e.history_bits(), prog.entry());
        let pb2 = e.predict_block(0, pc, &mut spec2, &prog, 16);
        assert_eq!(pb2.block.len, 24, "stream longer than the fetch width");
        assert_eq!(pb2.block.next_fetch, Addr::new(0x40_2000));
        assert!(pb2.block.end_branch.unwrap().predicted_taken);
    }

    #[test]
    fn blocks_update_path_and_stream_start() {
        let prog = program();
        let mut e = engine();
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pc = prog.entry();
        e.train_commit(
            pc,
            &StreamPath::new(),
            ObservedStream {
                len: 10,
                kind: BranchKind::Jump,
                target: Addr::new(0x40_1000),
            },
        );
        let before = spec.path;
        let _ = e.predict_block(0, pc, &mut spec, &prog, 16);
        assert_ne!(spec.path, before, "taken stream end must push the path");
        assert_eq!(spec.stream_start, Addr::new(0x40_1000));
    }
}
