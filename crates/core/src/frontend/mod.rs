//! The pluggable front-end fetch engines (prediction-stage block builders).
//!
//! A front-end turns the per-thread speculative state (next fetch PC,
//! history/path registers, RAS) into [`FetchBlock`]s for the FTQ. The
//! [`FrontEnd`] trait is the full contract between a fetch engine and the
//! pipeline; the four shipped engines are:
//!
//! * [`GshareBtb`] — one basic block at a time: the block ends at the first
//!   branch (one direction prediction per cycle), the end of the cache
//!   line, or the fetch width;
//! * [`GskewFtb`] — learned *fetch blocks* that embed never-taken branches;
//! * [`Stream`] — learned *instruction streams* (taken-target to next taken
//!   branch), with no separate direction predictor;
//! * [`TraceCache`] — the related-work comparator: a trace cache over a
//!   gshare+BTB core fetch unit.
//!
//! Engines own all predictor training, driven by the back end at branch
//! resolve ([`FrontEnd::train_resolve`]) and at commit
//! ([`FrontEnd::train_commit`], [`FrontEnd::trace_fill_commit`]).
//!
//! Dispatch in the cycle loop goes through [`AnyFrontEnd`], an enum-thin
//! wrapper over the concrete types: no `Box<dyn FrontEnd>`, no virtual
//! calls, no allocation — the zero-alloc gate and the throughput baseline
//! hold unchanged. New engines register in [`FRONT_ENDS`], which also pins
//! the canonical `kind ↔ name` mapping the CLI-facing
//! [`FetchEngineKind`] parser uses.

mod gshare_btb;
mod gskew_ftb;
mod stream;
mod trace_cache;

pub use gshare_btb::GshareBtb;
pub use gskew_ftb::GskewFtb;
pub use stream::Stream;
pub use trace_cache::{TraceCache, TraceFillBuffer};

use smt_bpred::{
    Btb, GlobalHistory, Gshare, ObservedStream, RasCheckpoint, ReturnStack, StreamPath,
};
use smt_isa::{
    Addr, BranchKind, Cycle, Diagnostic, DynInst, EndBranch, FetchBlock, Snap, SnapReader,
    SnapWriter, ThreadId,
};
use smt_workloads::Program;

use std::collections::VecDeque;

use crate::config::{FetchEngineKind, SimConfig};

/// I-cache line size in bytes (Table 3) — bounds classical fetch blocks.
pub const LINE_BYTES: u64 = 64;

/// Per-thread speculative front-end state, updated at prediction time and
/// repaired on squashes.
#[derive(Clone, Debug)]
pub struct SpecState {
    /// Global branch history (gshare: 16 bits, gskew: 15 bits).
    pub hist: GlobalHistory,
    /// Return address stack (64 entries, per thread).
    pub ras: ReturnStack,
    /// Stream-path register (stream front-end only, but kept uniformly).
    pub path: StreamPath,
    /// Start address of the stream currently being fetched.
    pub stream_start: Addr,
}

impl SpecState {
    /// Fresh state for a thread entering at `entry`.
    pub fn new(hist_bits: u32, entry: Addr) -> Self {
        SpecState {
            hist: GlobalHistory::new(hist_bits),
            ras: ReturnStack::hpca2004(),
            path: StreamPath::new(),
            stream_start: entry,
        }
    }

    /// Serializes the speculative registers (history, RAS, path, stream
    /// start).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.hist.save(w);
        self.ras.save_state(w);
        self.path.save(w);
        self.stream_start.save(w);
    }

    /// Restores state saved by [`SpecState::save_state`] in place,
    /// preserving the RAS's allocated capacity.
    ///
    /// # Errors
    ///
    /// `E0018` if the RAS capacity differs or the stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.hist = GlobalHistory::load(r)?;
        self.ras.load_state(r)?;
        self.path = StreamPath::load(r)?;
        self.stream_start = Addr::load(r)?;
        Ok(())
    }
}

/// Checkpoints captured when a block is predicted, used to repair the
/// speculative state when a branch in that block squashes.
#[derive(Clone, Copy, Debug)]
pub struct BlockMeta {
    /// History before the block's end-branch prediction was shifted in.
    pub hist: GlobalHistory,
    /// RAS repair checkpoint before the block's call/return effect.
    pub ras: RasCheckpoint,
    /// Stream path before this block's stream bookkeeping.
    pub path: StreamPath,
    /// Stream start register before this block.
    pub stream_start: Addr,
}

impl BlockMeta {
    /// Captures the checkpoints for a block about to be predicted from
    /// `spec`.
    pub fn capture(spec: &SpecState) -> Self {
        BlockMeta {
            hist: spec.hist,
            ras: spec.ras.checkpoint(),
            path: spec.path,
            stream_start: spec.stream_start,
        }
    }
}

impl Snap for BlockMeta {
    fn save(&self, w: &mut SnapWriter) {
        self.hist.save(w);
        self.ras.save(w);
        self.path.save(w);
        self.stream_start.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(BlockMeta {
            hist: GlobalHistory::load(r)?,
            ras: RasCheckpoint::load(r)?,
            path: StreamPath::load(r)?,
            stream_start: Addr::load(r)?,
        })
    }
}

/// Per-branch information carried through the pipeline for training and
/// recovery. `Copy` (a handful of words) so in-flight instructions can carry
/// it inline without boxing or per-branch heap traffic.
///
/// The bulky [`BlockMeta`] checkpoint is deliberately *not* part of this
/// struct: it lives in the owning thread's seq-indexed checkpoint ring
/// ([`crate::thread::ThreadState::meta`]), so the per-instruction window
/// entries stay small and window pushes/pops never copy the checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct BranchInfo {
    /// Start address of the fetch block that contained the branch.
    pub block_start: Addr,
    /// Whether the branch terminated its fetch block (i.e. was actually
    /// predicted; embedded branches were invisible to the predictor).
    pub is_end: bool,
    /// Speculative direction applied at fetch.
    pub spec_taken: bool,
    /// Speculative next PC applied at fetch.
    pub spec_next: Addr,
    /// Whether fetch already knows this branch diverged from the oracle.
    pub mispredicted: bool,
    /// Whether the divergence is detectable at decode (a statically-known
    /// misfetch: a direct unconditional branch with the wrong speculative
    /// next PC, or a predicted branch that is not a branch at all), so the
    /// redirect fires from the decode stage instead of execute.
    pub decode_redirect: bool,
}

impl Snap for BranchInfo {
    fn save(&self, w: &mut SnapWriter) {
        self.block_start.save(w);
        w.bool(self.is_end);
        w.bool(self.spec_taken);
        self.spec_next.save(w);
        w.bool(self.mispredicted);
        w.bool(self.decode_redirect);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(BranchInfo {
            block_start: Addr::load(r)?,
            is_end: r.bool()?,
            spec_taken: r.bool()?,
            spec_next: Addr::load(r)?,
            mispredicted: r.bool()?,
            decode_redirect: r.bool()?,
        })
    }
}

/// A predicted fetch block plus its recovery metadata. `Copy` so the FTQ and
/// fetch stage move blocks by value, allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct PredictedBlock {
    /// The block, ready for the FTQ.
    pub block: FetchBlock,
    /// Recovery checkpoints.
    pub meta: BlockMeta,
    /// Blocks sharing a trace-cache line carry the same group id: the fetch
    /// stage may consume them in one cycle without I-cache accesses (the
    /// trace cache stores the instructions itself).
    pub trace_group: Option<u64>,
}

impl Snap for PredictedBlock {
    fn save(&self, w: &mut SnapWriter) {
        self.block.save(w);
        self.meta.save(w);
        self.trace_group.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(PredictedBlock {
            block: FetchBlock::load(r)?,
            meta: BlockMeta::load(r)?,
            trace_group: Option::<u64>::load(r)?,
        })
    }
}

/// The contract between a fetch engine and the pipeline.
///
/// Determinism obligations: every hook must be a pure function of the
/// engine's own tables plus its arguments — no wall-clock reads, no ambient
/// randomness, no global state — so seeded runs stay bit-reproducible
/// (enforced workspace-wide by `smt-lint`).
///
/// What each hook may observe and mutate:
///
/// * [`predict_block`](FrontEnd::predict_block) /
///   [`predict_blocks_into`](FrontEnd::predict_blocks_into) — called by the
///   prediction stage. May mutate the engine's tables (e.g. allocation
///   hints) and *must* speculatively update `spec` (history shift, RAS
///   push/pop, stream path) exactly as the emitted block implies, because
///   the returned [`BlockMeta`] checkpoints are what
///   [`repair`](FrontEnd::repair) later restores.
/// * [`train_resolve`](FrontEnd::train_resolve) — called by the back end
///   once per committed correct-path branch, with the prediction-time
///   checkpoints and the actual outcome. Mutates predictor tables only.
/// * [`train_commit`](FrontEnd::train_commit) — called at commit when a
///   taken branch closes an architectural instruction stream; only the
///   stream front-end listens.
/// * [`trace_fill_commit`](FrontEnd::trace_fill_commit) — called once per
///   committed instruction; only the trace cache's fill unit listens.
/// * [`repair`](FrontEnd::repair) — called on a squash. Must restore `spec`
///   from the `meta` checkpoint, then apply the *actual* outcome of the
///   squashing branch (`di`). Must not touch predictor tables (training
///   happens at commit, on the correct path only).
pub trait FrontEnd {
    /// Which config-facing engine this is.
    fn kind(&self) -> FetchEngineKind;

    /// History length this engine's direction predictor uses.
    fn history_bits(&self) -> u32;

    /// Predicts the next fetch block for `thread` starting at `pc`.
    ///
    /// Speculatively updates `spec` (history shift, RAS push/pop, stream
    /// path) and returns the block plus the checkpoints needed to undo
    /// those updates.
    fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock;

    /// Predicts up to `max_blocks` fetch blocks in one cycle, appending to
    /// `out` — the thread's FTQ itself, pre-sized by the simulator, so each
    /// block is written once with no intermediate scratch copy and the
    /// steady-state prediction stage performs no heap allocation.
    ///
    /// The default emits exactly one block; multi-block engines (the trace
    /// cache) override it.
    #[allow(clippy::too_many_arguments)]
    fn predict_blocks_into(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
        out: &mut VecDeque<PredictedBlock>,
    ) {
        let _ = max_blocks;
        out.push_back(self.predict_block(thread, pc, spec, program, width));
    }

    /// Trains the engine with a resolved correct-path branch.
    ///
    /// Called by the back end when the branch commits. `info` and `hist`
    /// carry the prediction-time state (`hist` is the history the direction
    /// prediction was made under); `di` the actual outcome.
    fn train_resolve(&mut self, info: &BranchInfo, hist: GlobalHistory, di: &DynInst);

    /// Trains the engine with an instruction stream completed at commit
    /// (a taken branch closed the stream). No-op by default; the stream
    /// front-end listens.
    fn train_commit(&mut self, start: Addr, path: &StreamPath, obs: ObservedStream) {
        let _ = (start, path, obs);
    }

    /// Feeds one committed instruction to the engine's fill unit. No-op by
    /// default; the trace cache listens. `commit_hist_end` is the thread's
    /// committed end-conditional history *before* this instruction.
    fn trace_fill_commit(
        &mut self,
        fill: &mut TraceFillBuffer,
        di: &DynInst,
        commit_hist_end: u64,
    ) {
        let _ = (fill, di, commit_hist_end);
    }

    /// Repairs the speculative state after the mispredicted branch described
    /// by `info`/`di` squashes everything younger, then applies the branch's
    /// actual outcome. `meta` is the block checkpoint captured when the
    /// branch's fetch block was predicted.
    fn repair(&mut self, spec: &mut SpecState, info: &BranchInfo, meta: &BlockMeta, di: &DynInst);

    /// The engine's event horizon (DESIGN.md §14): the earliest future
    /// cycle at which its *own* state can change without a predict/train
    /// call reaching it. All four shipped engines are pull-driven — their
    /// tables only move inside those calls — so the default reports no
    /// self-scheduled event; a future push-driven engine (e.g. an ahead
    /// predictor with a pipelined update queue) overrides this so the
    /// cycle-skipping scheduler never jumps over its updates.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let _ = now;
        None
    }
}

/// Shared [`FrontEnd::repair`] body: restore every checkpointed register,
/// then apply the squashing branch's actual outcome.
///
/// `push_cond_hist` is false for engines without a per-branch direction
/// predictor (the stream front-end), whose speculative history never shifts.
///
/// The RAS call/return effect and the stream-path push are both gated on
/// `di.taken`: a not-taken call or return transfers no control, so it
/// neither pushes/pops a return address nor closes the current stream.
/// (Gating them *together* keeps `SpecState.path` and the RAS consistent
/// after a mispredicted call/return — historically the RAS effect was
/// unconditional while the path push was gated, leaving the two out of
/// sync on not-taken call/return repairs.)
pub(crate) fn repair_spec(
    spec: &mut SpecState,
    info: &BranchInfo,
    meta: &BlockMeta,
    di: &DynInst,
    push_cond_hist: bool,
) {
    // History: restore, then shift in the actual direction if this branch
    // was a predicted (block-ending) conditional.
    spec.hist = meta.hist;
    if push_cond_hist && di.is_cond_branch() && info.is_end {
        spec.hist.push(di.taken);
    }
    // RAS and stream registers: restore the checkpoints.
    spec.ras.restore(meta.ras);
    spec.path = meta.path;
    spec.stream_start = meta.stream_start;
    // A taken branch applies its call/return effect and closes the stream.
    if di.taken {
        match di.class.branch_kind() {
            Some(BranchKind::Call) => spec.ras.push(di.pc.add_insts(1)),
            Some(BranchKind::Return) => {
                let _ = spec.ras.pop();
            }
            _ => {}
        }
        spec.path.push(meta.stream_start);
        spec.stream_start = di.next_pc;
    }
}

/// A classical gshare+BTB fetch block: one prediction per cycle, so the
/// block ends at the first branch, the cache-line boundary, or the width.
/// Used by the gshare+BTB engine and as the trace cache's core fetch unit.
pub(crate) fn classic_block(
    gshare: &mut Gshare,
    btb: &mut Btb,
    thread: ThreadId,
    pc: Addr,
    spec: &mut SpecState,
    program: &Program,
    width: u32,
) -> FetchBlock {
    let max = (width as u64).min(pc.insts_to_line_end(LINE_BYTES)).max(1);
    match program.first_branch_at_or_after(pc, max) {
        Some((dist, inst)) => {
            let end_pc = inst.addr;
            let kind = inst.class.branch_kind().expect("scan returns branches"); // lint:allow(no-panic): the program scan returns only branches
            let (taken, target) = match kind {
                BranchKind::Cond => {
                    let t = gshare.predict(end_pc, spec.hist);
                    let tgt = if t {
                        btb.lookup(end_pc).map(|e| e.target).unwrap_or(Addr::NULL)
                    } else {
                        Addr::NULL
                    };
                    // A taken prediction without a BTB target cannot be
                    // followed: the fetch unit falls through, so the
                    // *effective* speculative direction — the one entering
                    // the history register and compared at resolve — is
                    // not-taken.
                    let t = t && !tgt.is_null();
                    spec.hist.push(t);
                    (t, tgt)
                }
                BranchKind::Jump | BranchKind::Indirect => (
                    true,
                    btb.lookup(end_pc).map(|e| e.target).unwrap_or(Addr::NULL),
                ),
                BranchKind::Call => {
                    let tgt = btb.lookup(end_pc).map(|e| e.target).unwrap_or(Addr::NULL);
                    spec.ras.push(end_pc.add_insts(1));
                    (true, tgt)
                }
                BranchKind::Return => (true, spec.ras.pop()),
            };
            // lint:allow(no-lossy-cast): dist < the BTB block-scan cap
            let len = (dist + 1) as u32;
            let fall = pc.add_insts(len as u64);
            let next = if taken && !target.is_null() {
                target
            } else {
                fall
            };
            FetchBlock {
                thread,
                start: pc,
                len,
                embedded_branches: 0,
                end_branch: Some(EndBranch {
                    pc: end_pc,
                    kind,
                    predicted_taken: taken,
                    predicted_target: target,
                }),
                next_fetch: next,
            }
        }
        // lint:allow(no-lossy-cast): max is the per-block fetch budget ≤ 16
        None => sequential_block(thread, pc, max as u32),
    }
}

/// A plain sequential block: `len` instructions, falls through.
pub(crate) fn sequential_block(thread: ThreadId, pc: Addr, len: u32) -> FetchBlock {
    let len = len.max(1);
    FetchBlock {
        thread,
        start: pc,
        len,
        embedded_branches: 0,
        end_branch: None,
        next_fetch: pc.add_insts(len as u64),
    }
}

// ----- registry and enum-thin dispatch ---------------------------------

/// One front-end registration: the config-facing kind, its canonical name
/// (shared by `Display` and `FromStr` on [`FetchEngineKind`]), and a
/// constructor.
pub struct FrontEndEntry {
    /// Config-facing engine selector.
    pub kind: FetchEngineKind,
    /// Canonical name (the paper's spelling).
    pub name: &'static str,
    /// Builds the engine from a configuration's predictor geometry.
    pub build: fn(&SimConfig) -> Result<AnyFrontEnd, Diagnostic>,
}

fn build_gshare_btb(cfg: &SimConfig) -> Result<AnyFrontEnd, Diagnostic> {
    GshareBtb::build(cfg).map(AnyFrontEnd::GshareBtb)
}

fn build_gskew_ftb(cfg: &SimConfig) -> Result<AnyFrontEnd, Diagnostic> {
    GskewFtb::build(cfg).map(AnyFrontEnd::GskewFtb)
}

fn build_stream(cfg: &SimConfig) -> Result<AnyFrontEnd, Diagnostic> {
    Stream::build(cfg).map(AnyFrontEnd::Stream)
}

fn build_trace_cache(cfg: &SimConfig) -> Result<AnyFrontEnd, Diagnostic> {
    TraceCache::build(cfg).map(AnyFrontEnd::TraceCache)
}

/// The static front-end registry: one entry per engine, in the paper's
/// presentation order. [`AnyFrontEnd::build`] and the
/// [`FetchEngineKind`] string parser both resolve through this table, so
/// the CLI names cannot drift from the registered engines.
pub static FRONT_ENDS: [FrontEndEntry; 4] = [
    FrontEndEntry {
        kind: FetchEngineKind::GshareBtb,
        name: "gshare+BTB",
        build: build_gshare_btb,
    },
    FrontEndEntry {
        kind: FetchEngineKind::GskewFtb,
        name: "gskew+FTB",
        build: build_gskew_ftb,
    },
    FrontEndEntry {
        kind: FetchEngineKind::Stream,
        name: "stream",
        build: build_stream,
    },
    FrontEndEntry {
        kind: FetchEngineKind::TraceCache,
        name: "trace cache",
        build: build_trace_cache,
    },
];

/// Looks up the registry entry for `kind` (every kind is registered).
pub(crate) fn registry_entry(kind: FetchEngineKind) -> &'static FrontEndEntry {
    FRONT_ENDS
        .iter()
        .find(|e| e.kind == kind)
        .expect("every FetchEngineKind is registered") // lint:allow(no-panic): the registry is compiled-in and total over FetchEngineKind
}

/// Maps a construction diagnostic into the `predictor.` config namespace.
pub(crate) fn scoped(d: Diagnostic) -> Diagnostic {
    let field = format!("predictor.{}", d.field);
    d.in_field(field)
}

/// The shipped front-ends behind one enum-thin dispatcher.
///
/// The cycle loop calls engines through this wrapper: a plain enum over the
/// concrete types, so dispatch is a jump table over inline data — no
/// `Box<dyn FrontEnd>`, no heap indirection — and the simulator stays
/// `Clone` + `Send` structurally.
#[derive(Clone, Debug)]
pub enum AnyFrontEnd {
    /// gshare + BTB (the baseline SMT front-end).
    GshareBtb(GshareBtb),
    /// gskew + FTB.
    GskewFtb(GskewFtb),
    /// Stream front-end.
    Stream(Stream),
    /// Trace cache + gshare/BTB core fetch unit (related-work comparator).
    TraceCache(TraceCache),
}

impl AnyFrontEnd {
    /// Builds the engine registered for `kind` from the configuration's
    /// predictor geometry, through the [`FRONT_ENDS`] registry.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found in the requested tables
    /// (`E0001`/`E0002` geometry, `E0012` block/stream caps). Use
    /// [`SimConfig::validate`] to collect *all* problems at once.
    pub fn build(kind: FetchEngineKind, cfg: &SimConfig) -> Result<Self, Diagnostic> {
        (registry_entry(kind).build)(cfg)
    }

    /// Builds the engine in the paper's Table 3 configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has invalid predictor geometry; prefer
    /// [`AnyFrontEnd::build`] for configurations that are not known-good.
    pub fn hpca2004(kind: FetchEngineKind, cfg: &SimConfig) -> Self {
        AnyFrontEnd::build(kind, cfg).expect("Table 3 geometry is valid") // lint:allow(no-panic): documented-panic preset; Table 3 geometry is valid
    }

    /// The stable one-byte snapshot tag for each engine (never renumbered).
    pub fn snapshot_tag(kind: FetchEngineKind) -> u8 {
        match kind {
            FetchEngineKind::GshareBtb => 0,
            FetchEngineKind::GskewFtb => 1,
            FetchEngineKind::Stream => 2,
            FetchEngineKind::TraceCache => 3,
        }
    }

    /// The engine kind for a snapshot tag written by
    /// [`AnyFrontEnd::snapshot_tag`].
    ///
    /// # Errors
    ///
    /// `E0018` for an unknown tag.
    pub fn kind_from_snapshot_tag(tag: u8) -> Result<FetchEngineKind, Diagnostic> {
        match tag {
            0 => Ok(FetchEngineKind::GshareBtb),
            1 => Ok(FetchEngineKind::GskewFtb),
            2 => Ok(FetchEngineKind::Stream),
            3 => Ok(FetchEngineKind::TraceCache),
            t => Err(smt_isa::snap_mismatch(
                "engine tag",
                format!("unknown fetch-engine tag {t}"),
            )),
        }
    }

    /// Serializes the engine's predictor tables and statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.save_state(w),
            AnyFrontEnd::GskewFtb(e) => e.save_state(w),
            AnyFrontEnd::Stream(e) => e.save_state(w),
            AnyFrontEnd::TraceCache(e) => e.save_state(w),
        }
    }

    /// Restores state saved by [`AnyFrontEnd::save_state`] in place,
    /// preserving every table's configuration-derived geometry.
    ///
    /// # Errors
    ///
    /// `E0018` on any geometry mismatch or malformed stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.load_state(r),
            AnyFrontEnd::GskewFtb(e) => e.load_state(r),
            AnyFrontEnd::Stream(e) => e.load_state(r),
            AnyFrontEnd::TraceCache(e) => e.load_state(r),
        }
    }
}

/// Macro-free match delegation: each arm forwards to the concrete engine,
/// so calls stay monomorphic behind a four-way jump.
impl FrontEnd for AnyFrontEnd {
    fn kind(&self) -> FetchEngineKind {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.kind(),
            AnyFrontEnd::GskewFtb(e) => e.kind(),
            AnyFrontEnd::Stream(e) => e.kind(),
            AnyFrontEnd::TraceCache(e) => e.kind(),
        }
    }

    fn history_bits(&self) -> u32 {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.history_bits(),
            AnyFrontEnd::GskewFtb(e) => e.history_bits(),
            AnyFrontEnd::Stream(e) => e.history_bits(),
            AnyFrontEnd::TraceCache(e) => e.history_bits(),
        }
    }

    fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.predict_block(thread, pc, spec, program, width),
            AnyFrontEnd::GskewFtb(e) => e.predict_block(thread, pc, spec, program, width),
            AnyFrontEnd::Stream(e) => e.predict_block(thread, pc, spec, program, width),
            AnyFrontEnd::TraceCache(e) => e.predict_block(thread, pc, spec, program, width),
        }
    }

    fn predict_blocks_into(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
        max_blocks: usize,
        out: &mut VecDeque<PredictedBlock>,
    ) {
        match self {
            AnyFrontEnd::GshareBtb(e) => {
                e.predict_blocks_into(thread, pc, spec, program, width, max_blocks, out)
            }
            AnyFrontEnd::GskewFtb(e) => {
                e.predict_blocks_into(thread, pc, spec, program, width, max_blocks, out)
            }
            AnyFrontEnd::Stream(e) => {
                e.predict_blocks_into(thread, pc, spec, program, width, max_blocks, out)
            }
            AnyFrontEnd::TraceCache(e) => {
                e.predict_blocks_into(thread, pc, spec, program, width, max_blocks, out)
            }
        }
    }

    fn train_resolve(&mut self, info: &BranchInfo, hist: GlobalHistory, di: &DynInst) {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.train_resolve(info, hist, di),
            AnyFrontEnd::GskewFtb(e) => e.train_resolve(info, hist, di),
            AnyFrontEnd::Stream(e) => e.train_resolve(info, hist, di),
            AnyFrontEnd::TraceCache(e) => e.train_resolve(info, hist, di),
        }
    }

    fn train_commit(&mut self, start: Addr, path: &StreamPath, obs: ObservedStream) {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.train_commit(start, path, obs),
            AnyFrontEnd::GskewFtb(e) => e.train_commit(start, path, obs),
            AnyFrontEnd::Stream(e) => e.train_commit(start, path, obs),
            AnyFrontEnd::TraceCache(e) => e.train_commit(start, path, obs),
        }
    }

    fn trace_fill_commit(
        &mut self,
        fill: &mut TraceFillBuffer,
        di: &DynInst,
        commit_hist_end: u64,
    ) {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.trace_fill_commit(fill, di, commit_hist_end),
            AnyFrontEnd::GskewFtb(e) => e.trace_fill_commit(fill, di, commit_hist_end),
            AnyFrontEnd::Stream(e) => e.trace_fill_commit(fill, di, commit_hist_end),
            AnyFrontEnd::TraceCache(e) => e.trace_fill_commit(fill, di, commit_hist_end),
        }
    }

    fn repair(&mut self, spec: &mut SpecState, info: &BranchInfo, meta: &BlockMeta, di: &DynInst) {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.repair(spec, info, meta, di),
            AnyFrontEnd::GskewFtb(e) => e.repair(spec, info, meta, di),
            AnyFrontEnd::Stream(e) => e.repair(spec, info, meta, di),
            AnyFrontEnd::TraceCache(e) => e.repair(spec, info, meta, di),
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            AnyFrontEnd::GshareBtb(e) => e.next_event(now),
            AnyFrontEnd::GskewFtb(e) => e.next_event(now),
            AnyFrontEnd::Stream(e) => e.next_event(now),
            AnyFrontEnd::TraceCache(e) => e.next_event(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;
    use smt_isa::InstClass;
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn program() -> Program {
        ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build()
    }

    fn cfg() -> SimConfig {
        SimConfig::hpca2004(FetchPolicy::icount(1, 8))
    }

    #[test]
    fn registry_covers_every_kind_exactly_once() {
        for kind in FetchEngineKind::all_with_trace_cache() {
            let hits = FRONT_ENDS.iter().filter(|e| e.kind == kind).count();
            assert_eq!(hits, 1, "{kind} must register exactly once");
        }
        assert_eq!(FRONT_ENDS.len(), 4);
    }

    #[test]
    fn registry_names_match_display() {
        for e in &FRONT_ENDS {
            assert_eq!(e.name, e.kind.to_string(), "registry/Display drift");
        }
    }

    #[test]
    fn built_engines_report_their_kind_and_history() {
        let cfg = cfg();
        for (kind, bits) in [
            (FetchEngineKind::GshareBtb, 16),
            (FetchEngineKind::GskewFtb, 15),
            (FetchEngineKind::Stream, 16),
            (FetchEngineKind::TraceCache, 15),
        ] {
            let e = AnyFrontEnd::hpca2004(kind, &cfg);
            assert_eq!(e.kind(), kind);
            assert_eq!(e.history_bits(), bits, "{kind}");
        }
    }

    #[test]
    fn repair_restores_history_ras_and_path() {
        let prog = program();
        let mut e = AnyFrontEnd::hpca2004(FetchEngineKind::GshareBtb, &cfg());
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        spec.ras.push(Addr::new(0x40_0044));
        spec.hist.push(true);
        let meta = BlockMeta::capture(&spec);
        // Wrong-path speculation after the checkpoint.
        spec.hist.push(false);
        spec.hist.push(false);
        let _ = spec.ras.pop();
        let di = DynInst {
            thread: 0,
            static_id: 0,
            pc: Addr::new(0x40_0100),
            class: InstClass::Branch(BranchKind::Cond),
            dest: None,
            srcs: [None, None],
            mem: None,
            taken: true,
            next_pc: Addr::new(0x40_0200),
            wrong_path: false,
        };
        let info = BranchInfo {
            block_start: Addr::new(0x40_0100),
            is_end: true,
            spec_taken: false,
            spec_next: Addr::new(0x40_0104),
            mispredicted: true,
            decode_redirect: false,
        };
        e.repair(&mut spec, &info, &meta, &di);
        // History = checkpoint + actual outcome (taken).
        let mut expect = meta.hist;
        expect.push(true);
        assert_eq!(spec.hist, expect);
        // RAS top is restored.
        assert_eq!(spec.ras.peek(), Some(Addr::new(0x40_0044)));
        // Taken branch closed the stream.
        assert_eq!(spec.stream_start, Addr::new(0x40_0200));
    }

    #[test]
    fn repair_of_a_not_taken_call_leaves_ras_and_path_untouched() {
        // The audited asymmetry: a squash whose resolved instruction is a
        // *not-taken* call (or return) transfers no control, so repair must
        // restore the checkpoint exactly — no RAS push, no path push. (The
        // unfixed code pushed the RAS unconditionally while gating the path
        // push on `taken`, leaving the two inconsistent.)
        let prog = program();
        for kind in FetchEngineKind::all_with_trace_cache() {
            let mut e = AnyFrontEnd::hpca2004(kind, &cfg());
            let mut spec = SpecState::new(e.history_bits(), prog.entry());
            spec.ras.push(Addr::new(0x40_0044));
            let meta = BlockMeta::capture(&spec);
            let depth_at_ckpt = spec.ras.depth();
            let path_at_ckpt = spec.path;
            let start_at_ckpt = spec.stream_start;
            // Wrong-path speculation after the checkpoint.
            spec.ras.push(Addr::new(0x40_9999));
            let di = DynInst {
                thread: 0,
                static_id: 0,
                pc: Addr::new(0x40_0100),
                class: InstClass::Branch(BranchKind::Call),
                dest: None,
                srcs: [None, None],
                mem: None,
                taken: false,
                next_pc: Addr::new(0x40_0101),
                wrong_path: false,
            };
            let info = BranchInfo {
                block_start: Addr::new(0x40_0100),
                is_end: true,
                spec_taken: true,
                spec_next: Addr::new(0x40_0200),
                mispredicted: true,
                decode_redirect: false,
            };
            e.repair(&mut spec, &info, &meta, &di);
            assert_eq!(spec.ras.depth(), depth_at_ckpt, "{kind}: RAS depth");
            assert_eq!(
                spec.ras.peek(),
                Some(Addr::new(0x40_0044)),
                "{kind}: RAS top"
            );
            assert_eq!(spec.path, path_at_ckpt, "{kind}: stream path");
            assert_eq!(spec.stream_start, start_at_ckpt, "{kind}: stream start");
        }
    }
}
