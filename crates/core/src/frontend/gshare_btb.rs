//! The baseline gshare+BTB front-end: one basic block per cycle.

use smt_bpred::{Btb, GlobalHistory, Gshare};
use smt_isa::{Addr, Diagnostic, DynInst, SnapReader, SnapWriter, ThreadId};
use smt_workloads::Program;

use crate::config::{FetchEngineKind, SimConfig};

use super::{
    classic_block, repair_spec, scoped, BlockMeta, BranchInfo, FrontEnd, PredictedBlock, SpecState,
};

/// gshare + BTB (the baseline SMT front-end).
///
/// One direction prediction per cycle, so every fetch block ends at the
/// first branch, the cache-line boundary, or the fetch width.
#[derive(Clone, Debug)]
pub struct GshareBtb {
    /// Direction predictor.
    gshare: Gshare,
    /// Branch target buffer.
    btb: Btb,
}

impl GshareBtb {
    /// Builds the engine from the configuration's predictor geometry.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found in the requested tables.
    pub fn build(cfg: &SimConfig) -> Result<Self, Diagnostic> {
        let p = &cfg.predictor;
        Ok(GshareBtb {
            gshare: Gshare::new(p.gshare_entries).map_err(scoped)?,
            btb: Btb::new(p.btb_entries, p.btb_ways).map_err(scoped)?,
        })
    }

    /// Serializes the predictor tables (gshare counters, BTB contents).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.gshare.save_state(w);
        self.btb.save_state(w);
    }

    /// Restores state saved by [`GshareBtb::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on table-geometry mismatch or a malformed stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.gshare.load_state(r)?;
        self.btb.load_state(r)
    }
}

impl FrontEnd for GshareBtb {
    fn kind(&self) -> FetchEngineKind {
        FetchEngineKind::GshareBtb
    }

    fn history_bits(&self) -> u32 {
        16
    }

    fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock {
        let meta = BlockMeta::capture(spec);
        let block = classic_block(
            &mut self.gshare,
            &mut self.btb,
            thread,
            pc,
            spec,
            program,
            width,
        );
        PredictedBlock {
            block,
            meta,
            trace_group: None,
        }
    }

    fn train_resolve(&mut self, info: &BranchInfo, hist: GlobalHistory, di: &DynInst) {
        let _ = info;
        if di.is_cond_branch() {
            // Every correct-path conditional ends a block under this engine,
            // so each one was genuinely predicted.
            self.gshare.update(di.pc, hist, di.taken);
        }
        if di.taken {
            let kind = di.class.branch_kind().expect("branch"); // lint:allow(no-panic): update only sees branch-class instructions
            self.btb.record_taken(di.pc, di.next_pc, kind);
        }
    }

    fn repair(&mut self, spec: &mut SpecState, info: &BranchInfo, meta: &BlockMeta, di: &DynInst) {
        repair_spec(spec, info, meta, di, true);
    }
}

#[cfg(test)]
mod tests {
    use super::super::LINE_BYTES;
    use super::*;
    use crate::config::FetchPolicy;
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn program() -> Program {
        ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build()
    }

    fn engine() -> GshareBtb {
        GshareBtb::build(&SimConfig::hpca2004(FetchPolicy::icount(1, 8))).expect("Table 3 builds")
    }

    #[test]
    fn blocks_end_at_first_branch_and_line() {
        let prog = program();
        let mut e = engine();
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pb = e.predict_block(0, prog.entry(), &mut spec, &prog, 8);
        let b = &pb.block;
        assert!(b.len >= 1 && b.len <= 8);
        // The block must not cross a cache line.
        assert!(b.start.line(LINE_BYTES) == b.last_pc().line(LINE_BYTES));
        // If it has an end branch, no *earlier* instruction in the block is
        // a branch.
        if let Some(end) = b.end_branch {
            for i in 0..(b.len - 1) as u64 {
                let inst = prog.inst_at(b.start.add_insts(i)).unwrap();
                assert!(!inst.class.is_branch(), "embedded branch in BTB block");
            }
            assert_eq!(end.pc, b.last_pc());
        }
    }

    #[test]
    fn chains_blocks_through_program() {
        let prog = program();
        let mut e = engine();
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let mut pc = prog.entry();
        for _ in 0..200 {
            let pb = e.predict_block(0, pc, &mut spec, &prog, 8);
            pc = pb.block.next_fetch;
            // Stay in (or be clamped back into) the program.
            assert!(prog.contains(prog.clamp(pc)));
        }
    }

    #[test]
    fn kind_is_a_branch_kind() {
        assert_eq!(engine().kind(), FetchEngineKind::GshareBtb);
    }
}
