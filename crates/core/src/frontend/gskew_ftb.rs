//! The gskew+FTB front-end: learned fetch blocks with embedded
//! never-taken branches.

use smt_bpred::{Ftb, GlobalHistory, Gskew, ObservedEnd};
use smt_isa::{
    Addr, BranchKind, Diagnostic, DynInst, EndBranch, FetchBlock, SnapReader, SnapWriter, ThreadId,
};
use smt_workloads::Program;

use crate::config::{FetchEngineKind, SimConfig};

use super::{
    repair_spec, scoped, sequential_block, BlockMeta, BranchInfo, FrontEnd, PredictedBlock,
    SpecState,
};

/// gskew + FTB: the fetch target buffer stores learned *fetch blocks* whose
/// interiors may embed never-taken branches, so blocks routinely run past
/// the first static branch.
#[derive(Clone, Debug)]
pub struct GskewFtb {
    /// Direction predictor.
    gskew: Gskew,
    /// Fetch target buffer.
    ftb: Ftb,
}

impl GskewFtb {
    /// Builds the engine from the configuration's predictor geometry.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found in the requested tables.
    pub fn build(cfg: &SimConfig) -> Result<Self, Diagnostic> {
        let p = &cfg.predictor;
        Ok(GskewFtb {
            gskew: Gskew::new(p.gskew_entries_per_bank).map_err(scoped)?,
            ftb: Ftb::new(p.ftb_entries, p.ftb_ways, cfg.max_ftb_block).map_err(scoped)?,
        })
    }

    /// Serializes the predictor tables (gskew banks, FTB contents).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.gskew.save_state(w);
        self.ftb.save_state(w);
    }

    /// Restores state saved by [`GskewFtb::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on table-geometry mismatch or a malformed stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.gskew.load_state(r)?;
        self.ftb.load_state(r)
    }
}

impl FrontEnd for GskewFtb {
    fn kind(&self) -> FetchEngineKind {
        FetchEngineKind::GskewFtb
    }

    fn history_bits(&self) -> u32 {
        15
    }

    fn predict_block(
        &mut self,
        thread: ThreadId,
        pc: Addr,
        spec: &mut SpecState,
        program: &Program,
        width: u32,
    ) -> PredictedBlock {
        let _ = program;
        let meta = BlockMeta::capture(spec);
        let block = match self.ftb.lookup(pc) {
            Some(p) => {
                let len = p.len.max(1);
                match p.end {
                    Some(end) => {
                        let end_pc = pc.add_insts(len as u64 - 1);
                        let (taken, target) = match end.kind {
                            BranchKind::Cond => {
                                // One batched probe per predicted block: the
                                // three decorrelated bank reads (and their
                                // counter-word accesses) issue together
                                // instead of per scalar lookup.
                                let probe = self.gskew.probe(end_pc, spec.hist);
                                let t = self.gskew.predict_with(&probe);
                                // FTB entries always carry a target, but
                                // stay defensive about null targets the
                                // same way the BTB path is.
                                let t = t && !end.target.is_null();
                                spec.hist.push(t);
                                (t, end.target)
                            }
                            BranchKind::Jump | BranchKind::Indirect => (true, end.target),
                            BranchKind::Call => {
                                spec.ras.push(end_pc.add_insts(1));
                                (true, end.target)
                            }
                            BranchKind::Return => (true, spec.ras.pop()),
                        };
                        let fall = pc.add_insts(len as u64);
                        let next = if taken && !target.is_null() {
                            target
                        } else {
                            fall
                        };
                        FetchBlock {
                            thread,
                            start: pc,
                            len,
                            embedded_branches: 0,
                            end_branch: Some(EndBranch {
                                pc: end_pc,
                                kind: end.kind,
                                predicted_taken: taken,
                                predicted_target: target,
                            }),
                            next_fetch: next,
                        }
                    }
                    None => sequential_block(thread, pc, len),
                }
            }
            None => sequential_block(thread, pc, width),
        };
        PredictedBlock {
            block,
            meta,
            trace_group: None,
        }
    }

    fn train_resolve(&mut self, info: &BranchInfo, hist: GlobalHistory, di: &DynInst) {
        if info.is_end && di.is_cond_branch() {
            // Same batched shape at train time: one probe gathers all three
            // bank counters, then the partial update writes back through it.
            let probe = self.gskew.probe(di.pc, hist);
            self.gskew.update_with(&probe, di.taken);
        }
        if di.taken {
            let kind = di.class.branch_kind().expect("branch"); // lint:allow(no-panic): update only sees branch-class instructions
            self.ftb.record_taken(
                info.block_start,
                ObservedEnd {
                    branch_pc: di.pc,
                    kind,
                    target: di.next_pc,
                },
            );
        } else if info.is_end {
            self.ftb.record_not_taken(info.block_start);
        }
    }

    fn repair(&mut self, spec: &mut SpecState, info: &BranchInfo, meta: &BlockMeta, di: &DynInst) {
        repair_spec(spec, info, meta, di, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;
    use smt_isa::InstClass;
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn program() -> Program {
        ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build()
    }

    fn engine() -> GskewFtb {
        GskewFtb::build(&SimConfig::hpca2004(FetchPolicy::icount(1, 8))).expect("Table 3 builds")
    }

    #[test]
    fn ftb_miss_gives_width_sequential_block_then_learns() {
        let prog = program();
        let mut e = engine();
        let mut spec = SpecState::new(e.history_bits(), prog.entry());
        let pc = prog.entry();
        let pb = e.predict_block(0, pc, &mut spec, &prog, 8);
        assert_eq!(pb.block.len, 8, "FTB cold miss fetches a width block");
        assert!(pb.block.end_branch.is_none());

        // Train: a taken branch 3 instructions in.
        let di = DynInst {
            thread: 0,
            static_id: 0,
            pc: pc.add_insts(2),
            class: InstClass::Branch(BranchKind::Cond),
            dest: None,
            srcs: [None, None],
            mem: None,
            taken: true,
            next_pc: pc.add_insts(40),
            wrong_path: false,
        };
        let info = BranchInfo {
            block_start: pc,
            is_end: false,
            spec_taken: false,
            spec_next: di.pc.add_insts(1),
            mispredicted: true,
            decode_redirect: false,
        };
        e.train_resolve(&info, pb.meta.hist, &di);
        let pb2 = e.predict_block(0, pc, &mut spec, &prog, 8);
        assert_eq!(pb2.block.len, 3, "FTB learned the block extent");
        assert_eq!(pb2.block.end_branch.unwrap().pc, di.pc);
    }
}
