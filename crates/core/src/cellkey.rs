//! Content-addressable experiment-cell keying (DESIGN.md §16).
//!
//! A [`CellKey`] names one deterministic simulation cell — everything a
//! [`RunResult`](../../experiments) depends on participates, and nothing
//! else exists that could influence the outcome (the `no-env-in-core` lint
//! guarantees the simulation crates read no ambient state). Two cells with
//! equal keys therefore produce byte-identical results, which is the
//! soundness argument for every cache keyed by it:
//!
//! * the warm-start snapshot cache (post-warmup state, PR 7), which keys on
//!   the [`CellKey::warmup_scope`] projection because the warmed state does
//!   not depend on how long the measurement afterwards runs;
//! * the memoized result cache of the sweep service (full key).
//!
//! The *code version* participates through [`SNAPSHOT_VERSION`]: the
//! snapshot format version is bumped on every change to the simulator's
//! serialized state layout, which any behaviour-affecting refactor of the
//! machine state forces. Model changes that keep the state layout are
//! caught by the golden-result suite before they can ship, so within one
//! checked-in tree the key is sound; across trees the version field keeps
//! persisted entries from leaking between incompatible builds.

use std::fmt;

use crate::config::{FetchEngineKind, SimConfig};
use crate::snapshot::{config_hash, fnv1a, SNAPSHOT_VERSION};

/// The identity of one deterministic simulation cell, usable as a cache
/// key. Ordered and hashable ([`CellKey::hash`]) deterministically.
///
/// # Example
///
/// ```
/// use smt_core::{CellKey, FetchEngineKind, FetchPolicy, SimConfig};
///
/// let cfg = SimConfig {
///     fetch_policy: FetchPolicy::icount(2, 8),
///     ..SimConfig::default()
/// };
/// let a = CellKey::new(&cfg, FetchEngineKind::Stream, "2_MIX", 2004, 30_000, 120_000);
/// let b = CellKey::new(&cfg, FetchEngineKind::Stream, "2_MIX", 2004, 30_000, 120_000);
/// assert_eq!(a, b);
/// assert_eq!(a.hash(), b.hash());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Snapshot format version of the producing build ([`SNAPSHOT_VERSION`])
    /// — the code-version component of the key.
    pub version: u32,
    /// [`config_hash`] of the cell's full [`SimConfig`] (fetch policy
    /// included).
    pub config: u64,
    /// Seed the workload programs are synthesized from.
    pub seed: u64,
    /// Warmup cycles simulated before statistics start.
    pub warmup_cycles: u64,
    /// Measured cycles (0 in a [`CellKey::warmup_scope`] projection).
    pub measure_cycles: u64,
    /// Workload name (e.g. `"4_MIX"`).
    pub workload: String,
    /// Fetch engine tag (the `Display` name, e.g. `"gskew+FTB"`).
    pub engine: String,
}

impl CellKey {
    /// Keys the cell `(cfg, engine, workload, seed)` run for
    /// `warmup_cycles` + `measure_cycles`.
    pub fn new(
        cfg: &SimConfig,
        engine: FetchEngineKind,
        workload: &str,
        seed: u64,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> CellKey {
        CellKey {
            version: SNAPSHOT_VERSION,
            config: config_hash(cfg),
            seed,
            warmup_cycles,
            measure_cycles,
            workload: workload.to_string(),
            engine: engine.to_string(),
        }
    }

    /// The key's projection onto what a *post-warmup snapshot* depends on:
    /// the same cell with the measured length zeroed. The warm-start cache
    /// keys on this, so one warmed snapshot serves every measurement length
    /// of the same configuration.
    pub fn warmup_scope(&self) -> CellKey {
        CellKey {
            measure_cycles: 0,
            ..self.clone()
        }
    }

    /// FNV-1a over the key's canonical byte rendering — the content hash
    /// used to address persisted cache entries and to name the cell in
    /// protocol and report lines. The in-memory caches key on the full
    /// [`CellKey`] (collision-proof); the hash is its compact name.
    pub fn hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(44 + self.workload.len() + self.engine.len());
        bytes.extend_from_slice(&self.version.to_le_bytes());
        bytes.extend_from_slice(&self.config.to_le_bytes());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(&self.warmup_cycles.to_le_bytes());
        bytes.extend_from_slice(&self.measure_cycles.to_le_bytes());
        // Length-prefixed strings: ("ab", "c") and ("a", "bc") must not
        // collide in the rendering.
        bytes.extend_from_slice(&(self.workload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(self.workload.as_bytes());
        bytes.extend_from_slice(&(self.engine.len() as u64).to_le_bytes());
        bytes.extend_from_slice(self.engine.as_bytes());
        fnv1a(&bytes)
    }

    /// Renders the key as one `field=value` line (stable, whitespace-free
    /// values — workload and engine names contain no tabs or newlines);
    /// [`CellKey::parse`] reads it back. Persisted cache entries echo this
    /// line so a content-hash collision can be detected instead of served.
    pub fn to_line(&self) -> String {
        format!(
            "version={} config={:#018x} seed={} warmup={} measure={} workload={} engine={}",
            self.version,
            self.config,
            self.seed,
            self.warmup_cycles,
            self.measure_cycles,
            self.workload,
            self.engine
        )
    }

    /// Parses a [`CellKey::to_line`] rendering.
    pub fn parse(line: &str) -> Result<CellKey, String> {
        let mut version = None;
        let mut config = None;
        let mut seed = None;
        let mut warmup = None;
        let mut measure = None;
        let mut workload = None;
        let mut engine = None;
        for field in line.split_whitespace() {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match k {
                "version" => version = Some(v.parse().map_err(|_| format!("bad version {v:?}"))?),
                "config" => {
                    let hex = v
                        .strip_prefix("0x")
                        .ok_or_else(|| format!("config {v:?} is not hex"))?;
                    config = Some(
                        u64::from_str_radix(hex, 16).map_err(|_| format!("bad config {v:?}"))?,
                    );
                }
                "seed" => seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?),
                "warmup" => warmup = Some(v.parse().map_err(|_| format!("bad warmup {v:?}"))?),
                "measure" => measure = Some(v.parse().map_err(|_| format!("bad measure {v:?}"))?),
                "workload" => workload = Some(v.to_string()),
                "engine" => engine = Some(v.to_string()),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(CellKey {
            version: version.ok_or("missing version")?,
            config: config.ok_or("missing config")?,
            seed: seed.ok_or("missing seed")?,
            warmup_cycles: warmup.ok_or("missing warmup")?,
            measure_cycles: measure.ok_or("missing measure")?,
            workload: workload.ok_or("missing workload")?,
            engine: engine.ok_or("missing engine")?,
        })
    }
}

impl fmt::Display for CellKey {
    /// The compact name: the content hash, hex.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell-{:016x}", self.hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;

    fn key() -> CellKey {
        CellKey::new(
            &SimConfig::default(),
            FetchEngineKind::GskewFtb,
            "2_MIX",
            2004,
            2_000,
            10_000,
        )
    }

    #[test]
    fn equal_inputs_equal_keys() {
        assert_eq!(key(), key());
        assert_eq!(key().hash(), key().hash());
        assert_eq!(key().version, SNAPSHOT_VERSION);
    }

    #[test]
    fn every_field_changes_the_hash() {
        let base = key();
        let cfg = SimConfig {
            fetch_policy: FetchPolicy::icount(1, 16),
            ..SimConfig::default()
        };
        let variants = [
            CellKey::new(
                &cfg,
                FetchEngineKind::GskewFtb,
                "2_MIX",
                2004,
                2_000,
                10_000,
            ),
            CellKey::new(
                &SimConfig::default(),
                FetchEngineKind::Stream,
                "2_MIX",
                2004,
                2_000,
                10_000,
            ),
            CellKey::new(
                &SimConfig::default(),
                FetchEngineKind::GskewFtb,
                "4_MIX",
                2004,
                2_000,
                10_000,
            ),
            CellKey::new(
                &SimConfig::default(),
                FetchEngineKind::GskewFtb,
                "2_MIX",
                2005,
                2_000,
                10_000,
            ),
            CellKey::new(
                &SimConfig::default(),
                FetchEngineKind::GskewFtb,
                "2_MIX",
                2004,
                2_001,
                10_000,
            ),
            CellKey::new(
                &SimConfig::default(),
                FetchEngineKind::GskewFtb,
                "2_MIX",
                2004,
                2_000,
                10_001,
            ),
        ];
        for v in &variants {
            assert_ne!(v, &base, "{v:?}");
            assert_ne!(v.hash(), base.hash(), "{v:?}");
        }
    }

    #[test]
    fn warmup_scope_ignores_measure_length() {
        let short = key();
        let long = CellKey {
            measure_cycles: 999_999,
            ..key()
        };
        assert_ne!(short, long);
        assert_eq!(short.warmup_scope(), long.warmup_scope());
        assert_eq!(short.warmup_scope().measure_cycles, 0);
    }

    #[test]
    fn line_round_trips() {
        let k = key();
        assert_eq!(CellKey::parse(&k.to_line()), Ok(k.clone()));
        assert_eq!(
            CellKey::parse(&k.warmup_scope().to_line()),
            Ok(k.warmup_scope())
        );
        assert!(CellKey::parse("nonsense").is_err());
        assert!(CellKey::parse("version=1").is_err());
        assert!(CellKey::parse(&format!("{} bogus=1", k.to_line())).is_err());
    }

    #[test]
    fn display_is_the_content_hash() {
        let k = key();
        assert_eq!(k.to_string(), format!("cell-{:016x}", k.hash()));
    }
}
