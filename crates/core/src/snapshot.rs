//! Checkpoint/resume: full-simulator snapshots (DESIGN.md §13).
//!
//! A [`Snapshot`] is a versioned, deterministic, little-endian byte image
//! of *all* mutable simulator state: predictor tables, caches/MSHRs/TLBs,
//! per-thread walkers, FTQs, windows, rename maps, checkpoint rings, the
//! inter-stage queues, register free lists, and statistics. Programs and
//! configuration are **inputs**, not state: a snapshot stores only a hash
//! of the configuration and is restored against the same programs and
//! configuration it was taken under ([`Simulator::restore`] rebuilds the
//! machine with [`Simulator::new`] and then overwrites its state in place,
//! so every pre-sized buffer keeps its allocation and the resumed cycle
//! loop re-enters the zero-allocation steady state).
//!
//! The contract the differential tests pin: for any simulator `s`,
//! `restore(snapshot(s))` continues *byte-identically* to `s` — same
//! statistics, same stall attribution, same goldens — and re-snapshotting
//! a restored simulator reproduces the snapshot bytes exactly.

use std::collections::VecDeque;
use std::sync::Arc;

use smt_isa::{snap_mismatch, Diagnostic, Snap, SnapReader, SnapWriter};
use smt_workloads::Program;

use crate::config::{FetchEngineKind, SimConfig};
use crate::frontend::{AnyFrontEnd, FrontEnd};
use crate::pipeline::{IqEntry, LatchEntry};
use crate::sim::Simulator;

/// Magic number opening every snapshot (ASCII `SMT_SNAP`, little-endian).
pub const SNAPSHOT_MAGIC: u64 = 0x534d_545f_534e_4150;

/// Current snapshot format version. Bumped on any layout change; restore
/// rejects every other version. v2: the stats section's single fast-forward
/// counter became the tagged per-reason skip-counter block (event-driven
/// scheduler). v3: the per-thread window section became the tagged
/// structure-of-arrays block ([`crate::Window`]) and the image gained a
/// trailing FNV-1a checksum over everything before it, so corruption is
/// reported as `E0018` before the body parse can misread it.
pub const SNAPSHOT_VERSION: u32 = 3;

/// FNV-1a over a byte slice (the hash [`config_hash`], the image checksum,
/// and [`crate::CellKey::hash`] all use).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a hash of the configuration's canonical debug rendering.
///
/// The hash pins a snapshot to the exact configuration it was taken under:
/// every field of [`SimConfig`] participates (the derived `Debug` output is
/// a total, deterministic rendering), so restoring under a differing
/// configuration fails fast with `E0018` instead of silently desyncing.
pub fn config_hash(cfg: &SimConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Splits a snapshot image into body and trailing checksum, verifying the
/// checksum over the body. Callers validate the header first so version
/// mismatches are reported as such rather than as corruption.
fn verify_checksum(bytes: &[u8]) -> Result<&[u8], Diagnostic> {
    let Some(split) = bytes.len().checked_sub(8) else {
        return Err(snap_mismatch(
            "checksum",
            format!("image of {} byte(s) is too short to carry one", bytes.len()),
        ));
    };
    let (body, tail) = bytes.split_at(split);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(tail);
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a(body);
    if stored != computed {
        return Err(snap_mismatch(
            "checksum",
            format!(
                "stored {stored:#018x}, computed {computed:#018x} — image corrupted or truncated"
            ),
        ));
    }
    Ok(body)
}

/// The decoded fixed-size header of a [`Snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version ([`SNAPSHOT_VERSION`] when produced by this build).
    pub version: u32,
    /// [`config_hash`] of the configuration the snapshot was taken under.
    pub config_hash: u64,
    /// Number of hardware threads.
    pub num_threads: usize,
    /// Fetch engine the simulator was built with.
    pub engine: FetchEngineKind,
}

/// A complete serialized simulator state.
///
/// Produced by [`Simulator::snapshot`], consumed by [`Simulator::restore`].
/// The byte image is self-describing up to its header; the body layout is
/// specified field by field in DESIGN.md §13.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps raw snapshot bytes (e.g. read back from a file).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Snapshot { bytes }
    }

    /// The serialized byte image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning its byte image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the byte image.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the byte image is empty (never, for a produced snapshot).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Decodes and validates the fixed-size header.
    ///
    /// # Errors
    ///
    /// `E0018` if the magic number, version, or engine tag is unknown, or
    /// the image is shorter than a header.
    pub fn header(&self) -> Result<SnapshotHeader, Diagnostic> {
        let mut r = SnapReader::new(&self.bytes);
        let header = read_header(&mut r)?;
        Ok(header)
    }
}

/// Reads and validates the header, leaving `r` positioned at the body.
fn read_header(r: &mut SnapReader<'_>) -> Result<SnapshotHeader, Diagnostic> {
    let magic = r.u64()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(snap_mismatch(
            "magic",
            format!("not a simulator snapshot (magic {magic:#018x})"),
        ));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(snap_mismatch(
            "version",
            format!("snapshot version {version}, this build reads {SNAPSHOT_VERSION}"),
        ));
    }
    let config_hash = r.u64()?;
    let num_threads = r.usize()?;
    let engine = AnyFrontEnd::kind_from_snapshot_tag(r.u8()?)?;
    Ok(SnapshotHeader {
        version,
        config_hash,
        num_threads,
        engine,
    })
}

/// Serializes a deque as a length prefix followed by the entries.
pub(crate) fn save_deque<T: Snap>(w: &mut SnapWriter, q: &VecDeque<T>) {
    w.usize(q.len());
    for e in q {
        e.save(w);
    }
}

/// Restores a deque saved by [`save_deque`] in place, refusing occupancies
/// beyond the deque's pre-sized capacity (a restore must never regrow the
/// steady-state buffers).
pub(crate) fn load_deque_into<T: Snap>(
    r: &mut SnapReader<'_>,
    q: &mut VecDeque<T>,
    what: &str,
) -> Result<(), Diagnostic> {
    let n = r.usize()?;
    if n > q.capacity() {
        return Err(snap_mismatch(
            what,
            format!(
                "snapshot holds {n} entries but the queue's capacity is {}",
                q.capacity()
            ),
        ));
    }
    q.clear();
    for _ in 0..n {
        q.push_back(T::load(r)?);
    }
    Ok(())
}

impl Snap for LatchEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.tid);
        w.u64(self.seq);
        w.u64(self.entered);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(LatchEntry {
            tid: r.usize()?,
            seq: r.u64()?,
            entered: r.u64()?,
        })
    }
}

impl Snap for IqEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.tid);
        w.u64(self.seq);
        w.u64(self.entered);
        w.u64(self.wake);
        self.src_phys.save(w);
        self.class.save(w);
        w.bool(self.wrong_path);
        self.mem_addr.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(IqEntry {
            tid: r.usize()?,
            seq: r.u64()?,
            entered: r.u64()?,
            wake: r.u64()?,
            src_phys: Snap::load(r)?,
            class: Snap::load(r)?,
            wrong_path: r.bool()?,
            mem_addr: Snap::load(r)?,
        })
    }
}

impl Simulator {
    /// Serializes the complete mutable state of this simulator.
    ///
    /// The image opens with a fixed header (magic, version, configuration
    /// hash, thread count, engine tag) followed by the body: fetch engine,
    /// memory hierarchy, per-thread state, and the shared pipeline context.
    /// Taking a snapshot allocates (the byte buffer); it never mutates the
    /// simulator.
    pub fn snapshot(&self) -> Snapshot {
        let ctx = &self.ctx;
        let mut w = SnapWriter::new();
        w.u64(SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(config_hash(&ctx.cfg));
        w.usize(ctx.threads.len());
        w.u8(AnyFrontEnd::snapshot_tag(ctx.frontend.kind()));

        ctx.frontend.save_state(&mut w);
        ctx.mem.save_state(&mut w);
        for th in &ctx.threads {
            th.save_state(&mut w);
        }
        w.u64(ctx.cycle);
        w.u64(ctx.stats_since);
        save_deque(&mut w, &ctx.fetch_buffer);
        save_deque(&mut w, &ctx.decode_latch);
        save_deque(&mut w, &ctx.rename_latch);
        smt_isa::save_vec(&mut w, &ctx.iq_int);
        smt_isa::save_vec(&mut w, &ctx.iq_ls);
        smt_isa::save_vec(&mut w, &ctx.iq_fp);
        smt_isa::save_vec(&mut w, &ctx.free_int);
        smt_isa::save_vec(&mut w, &ctx.free_fp);
        w.usize(ctx.ready_at.len());
        for c in &ctx.ready_at {
            w.u64(*c);
        }
        w.u32(ctx.rob_occ);
        ctx.preissue.save(&mut w);
        ctx.stats.save_state(&mut w);
        let mut bytes = w.into_bytes();
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        Snapshot { bytes }
    }

    /// Rebuilds a simulator from `snap`, the same `programs`, and the same
    /// configuration the snapshot was taken under.
    ///
    /// Restoration is *fresh-build-then-overwrite*: the machine is
    /// constructed exactly as [`SimBuilder::build`](crate::SimBuilder)
    /// would (pre-sized queues, shared program `Arc`s), then every piece of
    /// mutable state is loaded in place. The restored simulator continues
    /// byte-identically to the one the snapshot was taken from, and its
    /// cycle loop re-enters the zero-allocation steady state.
    ///
    /// # Errors
    ///
    /// `E0018` if the header does not match (wrong magic/version, a
    /// configuration whose [`config_hash`] differs, or a different thread
    /// count), any geometry check in the body fails, or the byte stream is
    /// malformed or has trailing bytes.
    pub fn restore(
        programs: Vec<Arc<Program>>,
        cfg: SimConfig,
        snap: &Snapshot,
    ) -> Result<Simulator, Diagnostic> {
        // Header first (nice diagnostics for wrong magic/version), then the
        // whole-image checksum, then the body parse over verified bytes.
        {
            let mut hr = SnapReader::new(snap.as_bytes());
            read_header(&mut hr)?;
        }
        let body = verify_checksum(snap.as_bytes())?;
        let mut r = SnapReader::new(body);
        let header = read_header(&mut r)?;
        let hash = config_hash(&cfg);
        if header.config_hash != hash {
            return Err(snap_mismatch(
                "config hash",
                format!(
                    "snapshot was taken under configuration {:#018x}, restore given {hash:#018x}",
                    header.config_hash
                ),
            ));
        }
        if header.num_threads != programs.len() {
            return Err(snap_mismatch(
                "threads",
                format!(
                    "snapshot has {} thread(s), restore given {} program(s)",
                    header.num_threads,
                    programs.len()
                ),
            ));
        }
        let mut sim = Simulator::new(programs, header.engine, cfg)
            .map_err(|e| snap_mismatch("build", format!("restore could not rebuild: {e}")))?;

        let ctx = &mut sim.ctx;
        ctx.frontend.load_state(&mut r)?;
        ctx.mem.load_state(&mut r)?;
        for th in &mut ctx.threads {
            th.load_state(&mut r)?;
        }
        ctx.cycle = r.u64()?;
        ctx.stats_since = r.u64()?;
        load_deque_into(&mut r, &mut ctx.fetch_buffer, "fetch buffer")?;
        load_deque_into(&mut r, &mut ctx.decode_latch, "decode latch")?;
        load_deque_into(&mut r, &mut ctx.rename_latch, "rename latch")?;
        smt_isa::load_vec_into(&mut r, &mut ctx.iq_int)?;
        smt_isa::load_vec_into(&mut r, &mut ctx.iq_ls)?;
        smt_isa::load_vec_into(&mut r, &mut ctx.iq_fp)?;
        smt_isa::load_vec_into(&mut r, &mut ctx.free_int)?;
        smt_isa::load_vec_into(&mut r, &mut ctx.free_fp)?;
        let regs = r.usize()?;
        if regs != ctx.ready_at.len() {
            return Err(snap_mismatch(
                "register file",
                format!(
                    "snapshot has {regs} physical registers, this build has {}",
                    ctx.ready_at.len()
                ),
            ));
        }
        for c in &mut ctx.ready_at {
            *c = r.u64()?;
        }
        ctx.rob_occ = r.u32()?;
        ctx.preissue = Snap::load(&mut r)?;
        ctx.stats.load_state(&mut r)?;
        if !r.is_exhausted() {
            return Err(snap_mismatch(
                "snapshot",
                format!("{} trailing byte(s) after the final field", r.remaining()),
            ));
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FetchPolicy;
    use crate::SimBuilder;
    use smt_workloads::Workload;

    fn sim(engine: FetchEngineKind) -> Simulator {
        SimBuilder::new(Workload::mix2().programs(7).expect("programs"))
            .fetch_engine(engine)
            .fetch_policy(FetchPolicy::icount(2, 8))
            .build()
            .expect("build")
    }

    fn programs() -> Vec<Arc<Program>> {
        Workload::mix2()
            .programs(7)
            .expect("programs")
            .into_iter()
            .map(Arc::new)
            .collect()
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        for engine in FetchEngineKind::all_with_trace_cache() {
            let mut a = sim(engine);
            a.run_cycles(3_000);
            let snap = a.snapshot();
            a.run_cycles(2_000);

            let mut b = Simulator::restore(programs(), a.config().clone(), &snap).expect("restore");
            assert_eq!(b.cycle(), 3_000, "{engine}: cycle restored");
            b.run_cycles(2_000);
            assert_eq!(b.stats(), a.stats(), "{engine}: resumed stats diverged");
            assert_eq!(
                b.snapshot(),
                a.snapshot(),
                "{engine}: resumed state diverged"
            );
        }
    }

    #[test]
    fn restored_simulator_resnapshots_identically() {
        let mut s = sim(FetchEngineKind::Stream);
        s.run_cycles(1_500);
        let snap = s.snapshot();
        let restored = Simulator::restore(programs(), s.config().clone(), &snap).expect("restore");
        assert_eq!(
            restored.snapshot(),
            snap,
            "restore must reproduce the image bit for bit"
        );
    }

    #[test]
    fn header_reports_the_run_shape() {
        let mut s = sim(FetchEngineKind::GskewFtb);
        s.run_cycles(100);
        let snap = s.snapshot();
        let h = snap.header().expect("header");
        assert_eq!(h.version, SNAPSHOT_VERSION);
        assert_eq!(h.num_threads, 2);
        assert_eq!(h.engine, FetchEngineKind::GskewFtb);
        assert_eq!(h.config_hash, config_hash(s.config()));
    }

    #[test]
    fn mismatches_are_diagnostics_not_panics() {
        let mut s = sim(FetchEngineKind::GshareBtb);
        s.run_cycles(500);
        let snap = s.snapshot();

        // Wrong magic.
        let mut bad = snap.as_bytes().to_vec();
        bad[0] ^= 0xff;
        let err = Snapshot::from_bytes(bad).header().unwrap_err();
        assert_eq!(err.code, "E0018");

        // Wrong configuration.
        let other = crate::SimConfig::hpca2004(FetchPolicy::icount(1, 16));
        let err = Simulator::restore(programs(), other, &snap).unwrap_err();
        assert_eq!(err.code, "E0018");
        assert!(err.message.contains("configuration"));

        // Wrong thread count.
        let err =
            Simulator::restore(programs()[..1].to_vec(), s.config().clone(), &snap).unwrap_err();
        assert_eq!(err.code, "E0018");

        // Truncated body.
        let short = snap.as_bytes()[..snap.len() - 9].to_vec();
        let err = Simulator::restore(programs(), s.config().clone(), &Snapshot::from_bytes(short))
            .unwrap_err();
        assert_eq!(err.code, "E0018");
    }
}
