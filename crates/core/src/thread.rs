//! Per-thread simulator state: front-end context, FTQ, and the in-flight
//! instruction window.

use std::collections::VecDeque;
use std::sync::Arc;

use smt_bpred::StreamPath;
use smt_isa::{
    snap_mismatch, Addr, Cycle, Diagnostic, InstIdx, Snap, SnapReader, SnapWriter, ThreadId,
};
use smt_workloads::{Program, Walker};

use crate::frontend::{BlockMeta, PredictedBlock, SpecState, TraceFillBuffer};
use crate::window::{PhysReg, Window};

/// All per-thread state.
#[derive(Clone, Debug)]
pub struct ThreadState {
    /// Thread id.
    pub id: ThreadId,
    /// Oracle walker (architectural sequencing).
    pub walker: Walker,
    /// Speculative front-end state (history, RAS, stream path).
    pub spec: SpecState,
    /// Next block start the prediction stage will use.
    pub next_fetch_pc: Addr,
    /// Whether fetch has diverged from the oracle (wrong path).
    pub diverged: bool,
    /// Set while an I-cache miss blocks this thread's fetch.
    pub iblock_until: Option<Cycle>,
    /// Fetch target queue. Prediction pushes blocks in directly (no
    /// intermediate scratch copy); fetch consumes strictly from the head,
    /// so only the head block can be partially delivered and a single
    /// [`ftq_consumed`](ThreadState::ftq_consumed) counter tracks it.
    pub ftq: VecDeque<PredictedBlock>,
    /// Instructions already delivered from the FTQ head block (blocks
    /// longer than the fetch width span several cycles). Reset to zero
    /// whenever the head is popped or the FTQ is cleared.
    pub ftq_consumed: InstIdx,
    /// In-flight instructions in fetch order (front = oldest),
    /// structure-of-arrays: hot control entries scanned by
    /// issue/commit/squash, payload and branch-record columns indexed by
    /// `seq & mask` (see [`crate::window`]).
    pub window: Window,
    /// Sequence number for the next fetched instruction.
    pub next_seq: u64,
    /// Rename map: architectural flat index → physical register.
    pub rename_map: Vec<PhysReg>,
    /// Sequence number of the oldest unresolved mispredicted correct-path
    /// branch (at most one can exist: fetch diverges at the first one).
    pub pending_redirect: Option<u64>,
    /// Commit-side stream tracking: path of committed streams.
    pub cpath: StreamPath,
    /// Start of the stream currently being committed.
    pub commit_stream_start: Addr,
    /// Committed instructions in the current stream so far.
    pub commit_stream_len: u32,
    /// Shadow architectural history of committed conditional outcomes
    /// (validation/debugging aid).
    pub commit_hist: u64,
    /// Committed end-conditional history (mirrors the speculative history
    /// discipline: only block-ending conditionals shift in).
    pub commit_hist_end: u64,
    /// Trace-cache fill unit state (unused by other engines).
    pub trace_fill: TraceFillBuffer,
    /// Under STALL/FLUSH policies: fetch is gated until this cycle because
    /// a long-latency load is outstanding.
    pub mem_stall_until: Option<Cycle>,
    /// Completion times of outstanding long-latency data misses (the
    /// MISSCOUNT metric); expired entries are drained lazily.
    pub outstanding_misses: Vec<Cycle>,
    /// Block checkpoints for in-flight instructions carrying a
    /// [`BranchInfo`], indexed by `seq & meta_mask`. The capacity exceeds
    /// the window bound, and window sequence numbers are contiguous, so a
    /// live instruction's slot cannot be reused before it retires or
    /// squashes. Slots of instructions without a `binfo` are stale garbage
    /// and never read. Keeping the checkpoints out of [`InFlight`] keeps
    /// the window entries small: pushes, pops, and the commit path never
    /// copy the ~100-byte checkpoint.
    meta_ring: Vec<BlockMeta>,
    /// Power-of-two mask for `meta_ring` indexing.
    meta_mask: u64,
}

impl ThreadState {
    /// Creates thread state for `program` (shared, not cloned — every
    /// thread and sweep cell running the same program references one
    /// allocation), with the rename map filled by the caller.
    pub fn new(id: ThreadId, program: impl Into<Arc<Program>>, hist_bits: u32) -> Self {
        let program = program.into();
        let entry = program.entry();
        ThreadState {
            id,
            walker: Walker::new(program, id),
            spec: SpecState::new(hist_bits, entry),
            next_fetch_pc: entry,
            diverged: false,
            iblock_until: None,
            ftq: VecDeque::new(),
            ftq_consumed: 0,
            window: Window::new(),
            next_seq: 0,
            rename_map: Vec::new(),
            pending_redirect: None,
            cpath: StreamPath::new(),
            commit_stream_start: entry,
            commit_stream_len: 0,
            commit_hist: 0,
            commit_hist_end: 0,
            trace_fill: TraceFillBuffer::default(),
            mem_stall_until: None,
            outstanding_misses: Vec::new(),
            meta_ring: Vec::new(),
            meta_mask: 0,
        }
    }

    /// Pre-sizes the per-thread queues to their configuration-derived
    /// high-water marks so the steady-state loop never grows them.
    ///
    /// * `ftq_depth` bounds the FTQ (the prediction stage stops at depth);
    /// * `window_cap` bounds both the in-flight window and the set of
    ///   outstanding long-latency misses (each miss is a windowed load).
    pub fn presize(&mut self, ftq_depth: usize, window_cap: usize) {
        self.ftq.reserve(ftq_depth);
        self.window.presize(window_cap);
        self.outstanding_misses.reserve(window_cap);
        // Strictly larger than the window bound so `seq & meta_mask` cannot
        // collide between two live instructions (window seqs are
        // contiguous). The placeholder fill is deterministic and never read.
        let cap = (window_cap + 1).next_power_of_two();
        self.meta_ring = vec![BlockMeta::capture(&self.spec); cap];
        self.meta_mask = cap as u64 - 1;
    }

    /// The block checkpoint recorded for in-flight instruction `seq`.
    ///
    /// Valid only for sequence numbers of window instructions carrying a
    /// [`BranchInfo`] (fetch records a checkpoint exactly when it attaches
    /// one), or an instruction popped from the window this same cycle.
    pub fn meta(&self, seq: u64) -> &BlockMeta {
        &self.meta_ring[(seq & self.meta_mask) as usize]
    }

    /// Records the block checkpoint for in-flight instruction `seq`.
    pub fn set_meta(&mut self, seq: u64, meta: &BlockMeta) {
        self.meta_ring[(seq & self.meta_mask) as usize] = *meta;
    }

    /// Records the checkpoint for `seq` straight from the FTQ head's
    /// predicted block — the fetch stage's common case — so the ~100-byte
    /// value moves FTQ → ring once instead of via a stack copy of the
    /// whole entry.
    pub fn set_meta_from_ftq_head(&mut self, seq: u64) {
        // lint:allow(no-panic): the fetch stage checked the FTQ head exists
        let meta = self.ftq.front().expect("fetch consumes the head").meta;
        self.meta_ring[(seq & self.meta_mask) as usize] = meta;
    }

    /// Number of long-latency misses still outstanding at `now`.
    pub fn misses_outstanding(&mut self, now: Cycle) -> usize {
        self.outstanding_misses.retain(|&r| r > now);
        self.outstanding_misses.len()
    }

    /// The program this thread runs.
    pub fn program(&self) -> &Program {
        self.walker.program()
    }

    /// Whether fetch can serve this thread at `now`.
    pub fn fetch_eligible(&self, now: Cycle) -> bool {
        !self.ftq.is_empty() && self.iblock_until.is_none_or(|r| r <= now)
    }

    /// Serializes every per-thread field in declaration order. The thread
    /// id and the program are configuration inputs, not state, and are not
    /// written; the checkpoint ring is written whole (stale slots included)
    /// so a restored thread re-snapshots byte-identically.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.walker.save_state(w);
        self.spec.save_state(w);
        self.next_fetch_pc.save(w);
        w.bool(self.diverged);
        self.iblock_until.save(w);
        crate::snapshot::save_deque(w, &self.ftq);
        w.u32(self.ftq_consumed);
        self.window.save_state(w);
        w.u64(self.next_seq);
        smt_isa::save_vec(w, &self.rename_map);
        self.pending_redirect.save(w);
        self.cpath.save(w);
        self.commit_stream_start.save(w);
        w.u32(self.commit_stream_len);
        w.u64(self.commit_hist);
        w.u64(self.commit_hist_end);
        self.trace_fill.save_state(w);
        self.mem_stall_until.save(w);
        smt_isa::save_vec(w, &self.outstanding_misses);
        w.usize(self.meta_ring.len());
        for m in &self.meta_ring {
            m.save(w);
        }
        w.u64(self.meta_mask);
    }

    /// Restores state saved by [`ThreadState::save_state`] in place,
    /// preserving every queue's pre-sized capacity.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored queue occupancies exceed this thread's
    /// pre-sized capacities, the rename-map or checkpoint-ring geometry
    /// differs, or the byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.walker.load_state(r)?;
        self.spec.load_state(r)?;
        self.next_fetch_pc = Addr::load(r)?;
        self.diverged = r.bool()?;
        self.iblock_until = Snap::load(r)?;
        crate::snapshot::load_deque_into(r, &mut self.ftq, "thread ftq")?;
        self.ftq_consumed = r.u32()?;
        self.window.load_state(r)?;
        self.next_seq = r.u64()?;
        let renames = r.usize()?;
        if renames != self.rename_map.len() {
            return Err(snap_mismatch(
                "rename map",
                format!(
                    "snapshot maps {renames} architectural registers, this build maps {}",
                    self.rename_map.len()
                ),
            ));
        }
        for p in &mut self.rename_map {
            *p = r.u32()?;
        }
        self.pending_redirect = Snap::load(r)?;
        self.cpath = StreamPath::load(r)?;
        self.commit_stream_start = Addr::load(r)?;
        self.commit_stream_len = r.u32()?;
        self.commit_hist = r.u64()?;
        self.commit_hist_end = r.u64()?;
        self.trace_fill.load_state(r)?;
        self.mem_stall_until = Snap::load(r)?;
        smt_isa::load_vec_into(r, &mut self.outstanding_misses)?;
        let ring = r.usize()?;
        if ring != self.meta_ring.len() {
            return Err(snap_mismatch(
                "checkpoint ring",
                format!(
                    "snapshot ring has {ring} slots, this thread's has {}",
                    self.meta_ring.len()
                ),
            ));
        }
        for m in &mut self.meta_ring {
            *m = crate::frontend::BlockMeta::load(r)?;
        }
        let mask = r.u64()?;
        if mask != self.meta_mask {
            return Err(snap_mismatch(
                "checkpoint ring mask",
                format!("snapshot mask {mask:#x} differs from {:#x}", self.meta_mask),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::Addr;
    use smt_workloads::{BenchmarkProfile, ProgramBuilder};

    fn thread() -> ThreadState {
        let prog = ProgramBuilder::new(BenchmarkProfile::gzip())
            .base(Addr::new(0x40_0000))
            .seed(1)
            .build();
        ThreadState::new(0, prog, 16)
    }

    #[test]
    fn fresh_thread_starts_at_entry() {
        let t = thread();
        assert_eq!(t.next_fetch_pc, t.program().entry());
        assert!(!t.diverged);
        assert!(!t.fetch_eligible(0), "empty FTQ is not eligible");
    }

    #[test]
    fn window_lookup_by_seq() {
        let mut t = thread();
        t.presize(8, 16);
        for s in 0..5u64 {
            let di = t.walker.next_inst();
            t.window.set_di(s, di);
            t.window
                .push(crate::window::InFlightCtl::at_fetch(s, 0, &di, None), None);
        }
        assert_eq!(t.window.ctl(3).unwrap().seq, 3);
        assert!(t.window.ctl(9).is_none());
        // The payload column returns what the walker decoded.
        assert_eq!(t.window.di(2).pc, t.window.di(1).next_pc);
        // After popping the front, lookups still work.
        t.window.pop_front();
        assert_eq!(t.window.ctl(3).unwrap().seq, 3);
        assert!(t.window.ctl(0).is_none());
        t.window.ctl_mut(4).unwrap().set_issued();
        assert!(t.window.ctl(4).unwrap().issued());
    }

    #[test]
    fn iblock_gates_eligibility() {
        let mut t = thread();
        t.ftq.push_back(crate::frontend::PredictedBlock {
            block: smt_isa::FetchBlock {
                thread: 0,
                start: t.program().entry(),
                len: 4,
                embedded_branches: 0,
                end_branch: None,
                next_fetch: t.program().entry().add_insts(4),
            },
            meta: crate::frontend::BlockMeta::capture(&t.spec),
            trace_group: None,
        });
        t.ftq_consumed = 1;
        assert_eq!(t.ftq.front().unwrap().block.len - t.ftq_consumed, 3);
        assert!(t.fetch_eligible(0));
        t.iblock_until = Some(10);
        assert!(!t.fetch_eligible(5));
        assert!(t.fetch_eligible(10));
    }
}
