//! Structure-of-arrays in-flight instruction window.
//!
//! The pipeline's steady-state scans — commit's head poll, issue wakeup,
//! the resolve/squash tail walk — touch only a handful of bookkeeping words
//! per instruction (sequence number, status flags, completion cycle,
//! physical registers). Keeping those in a fat per-slot struct next to the
//! ~64-byte [`DynInst`] payload drags the payload through every scan and
//! every `VecDeque` shuffle. [`Window`] splits the two apart:
//!
//! * a hot [`InFlightCtl`] deque holding exactly the scanned bookkeeping
//!   (a few slots per cache line instead of one), and
//! * two parallel rings — the [`DynInst`] payload column and the
//!   `Option<BranchInfo>` column — indexed by `seq & mask`, exactly the
//!   scheme already proven safe for the thread's `BlockMeta` checkpoint
//!   ring.
//!
//! **Index-safety argument** (shared with `ThreadState::meta`): the ring
//! capacity is `(window_cap + 1).next_power_of_two()`, strictly larger
//! than the window occupancy bound, and window sequence numbers are
//! contiguous, so no two live instructions can map to the same slot. Stale
//! slots hold retired garbage and are never read: payload reads are only
//! performed for live sequence numbers, or for an entry popped in the same
//! stage tick that reads it (no push can intervene — only the fetch stage
//! pushes, and it never pops).
//!
//! The payload column doubles as the fetch stage's decode target: the bulk
//! walker decode writes straight into [`Window::payload_slots`] instead of
//! a separate width-sized scratch buffer, so a delivered instruction is
//! written once, in place, and never copied between buffers.

use std::collections::VecDeque;

use smt_isa::{
    inst_idx, snap_mismatch, Addr, Cycle, Diagnostic, DynInst, InstClass, InstIdx, Snap,
    SnapReader, SnapWriter,
};

use crate::frontend::BranchInfo;

/// Physical register id (dense across int + fp spaces).
pub type PhysReg = u32;

/// Status bit: the instruction passed dispatch (holds backend resources).
const DISPATCHED: u8 = 1 << 0;
/// Status bit: the instruction has issued to a functional unit.
const ISSUED: u8 = 1 << 1;
/// Classification bit: fetched down a wrong (divergent) path.
const WRONG_PATH: u8 = 1 << 2;
/// Classification bit: the payload is a load.
const IS_LOAD: u8 = 1 << 3;
/// Classification bit: the payload is a branch (any kind).
const IS_BRANCH: u8 = 1 << 4;
/// Classification bit: a [`BranchInfo`] record rides in the binfo column.
const HAS_BINFO: u8 = 1 << 5;
/// Classification bit: the attached `BranchInfo` has `decode_redirect`.
const DECODE_REDIRECT: u8 = 1 << 6;

/// Mask of all defined flag bits (snapshot validation).
const FLAG_BITS: u8 =
    DISPATCHED | ISSUED | WRONG_PATH | IS_LOAD | IS_BRANCH | HAS_BINFO | DECODE_REDIRECT;

/// Hot per-instruction bookkeeping: everything the issue/commit/squash
/// scans need, and nothing else.
///
/// The mutable status bits (`dispatched`, `issued`) and the classification
/// bits derived from the payload at fetch (`wrong_path`, `is_load`,
/// `is_branch`, `has_binfo`, `decode_redirect`) share one flags byte; the
/// classification bits are immutable after [`InFlightCtl::at_fetch`], which
/// is what lets the scans run without touching the payload column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlightCtl {
    /// Per-thread fetch-order sequence number.
    pub seq: u64,
    /// Cycle the instruction was fetched.
    pub fetched_at: Cycle,
    /// Completion cycle (valid once issued).
    pub done_at: Cycle,
    /// Physical destination register, if any.
    pub phys_dest: Option<PhysReg>,
    /// Previous mapping of the destination architectural register.
    pub prev_phys: Option<PhysReg>,
    /// Renamed source registers.
    pub src_phys: [Option<PhysReg>; 2],
    flags: u8,
}

impl InFlightCtl {
    /// Builds the control entry for a just-fetched instruction, deriving
    /// the immutable classification bits from the payload and its optional
    /// branch record.
    pub fn at_fetch(seq: u64, fetched_at: Cycle, di: &DynInst, binfo: Option<&BranchInfo>) -> Self {
        let mut flags = 0u8;
        if di.wrong_path {
            flags |= WRONG_PATH;
        }
        if di.class == InstClass::Load {
            flags |= IS_LOAD;
        }
        if di.class.is_branch() {
            flags |= IS_BRANCH;
        }
        if let Some(b) = binfo {
            flags |= HAS_BINFO;
            if b.decode_redirect {
                flags |= DECODE_REDIRECT;
            }
        }
        InFlightCtl {
            seq,
            fetched_at,
            done_at: 0,
            phys_dest: None,
            prev_phys: None,
            src_phys: [None, None],
            flags,
        }
    }

    /// Whether the instruction passed dispatch.
    pub fn dispatched(&self) -> bool {
        self.flags & DISPATCHED != 0
    }

    /// Marks the instruction dispatched.
    pub fn set_dispatched(&mut self) {
        self.flags |= DISPATCHED;
    }

    /// Whether the instruction has issued to a functional unit.
    pub fn issued(&self) -> bool {
        self.flags & ISSUED != 0
    }

    /// Marks the instruction issued.
    pub fn set_issued(&mut self) {
        self.flags |= ISSUED;
    }

    /// Whether the payload was fetched down a wrong (divergent) path.
    pub fn wrong_path(&self) -> bool {
        self.flags & WRONG_PATH != 0
    }

    /// Whether the payload is a load.
    pub fn is_load(&self) -> bool {
        self.flags & IS_LOAD != 0
    }

    /// Whether the payload is a branch of any kind.
    pub fn is_branch(&self) -> bool {
        self.flags & IS_BRANCH != 0
    }

    /// Whether a [`BranchInfo`] record rides in the binfo column.
    pub fn has_binfo(&self) -> bool {
        self.flags & HAS_BINFO != 0
    }

    /// Whether the attached branch record carries `decode_redirect`.
    pub fn decode_redirect(&self) -> bool {
        self.flags & DECODE_REDIRECT != 0
    }

    /// Whether execution finished by cycle `now`.
    pub fn completed(&self, now: Cycle) -> bool {
        self.issued() && self.done_at <= now
    }
}

impl Snap for InFlightCtl {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.seq);
        w.u64(self.fetched_at);
        w.u64(self.done_at);
        self.phys_dest.save(w);
        self.prev_phys.save(w);
        self.src_phys.save(w);
        w.u8(self.flags);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        let seq = r.u64()?;
        let fetched_at = r.u64()?;
        let done_at = r.u64()?;
        let phys_dest = Snap::load(r)?;
        let prev_phys = Snap::load(r)?;
        let src_phys = Snap::load(r)?;
        let flags = r.u8()?;
        if flags & !FLAG_BITS != 0 {
            return Err(snap_mismatch(
                "window flags",
                format!("undefined flag bits {flags:#04x}"),
            ));
        }
        Ok(InFlightCtl {
            seq,
            fetched_at,
            done_at,
            phys_dest,
            prev_phys,
            src_phys,
            flags,
        })
    }
}

/// Deterministic placeholder filling fresh payload-ring slots; never read.
const PAYLOAD_FILL: DynInst = DynInst {
    thread: 0,
    static_id: 0,
    pc: Addr::NULL,
    class: InstClass::IntAlu,
    dest: None,
    srcs: [None, None],
    mem: None,
    taken: false,
    next_pc: Addr::NULL,
    wrong_path: false,
};

/// Tag guarding the window's structure-of-arrays snapshot section
/// (`"SOAW"` in ASCII): a stream that drifted out of sync fails here with
/// a named diagnostic instead of misparsing columns as control words.
const WINDOW_SECTION_TAG: u32 = 0x534f_4157;

/// The in-flight instruction window, structure-of-arrays layout.
///
/// See the module docs for the layout and the index-safety argument. The
/// deque and both rings are sized once by [`Window::presize`]; steady-state
/// pushes and pops never allocate.
#[derive(Clone, Debug, Default)]
pub struct Window {
    ctl: VecDeque<InFlightCtl>,
    payload: Vec<DynInst>,
    binfo: Vec<Option<BranchInfo>>,
    mask: u64,
}

impl Window {
    /// Creates an empty, un-sized window; [`Window::presize`] must run
    /// before the first push.
    pub fn new() -> Self {
        Window::default()
    }

    /// Sizes the control deque for `window_cap` entries and both columns to
    /// the strictly-larger power of two, establishing the no-collision
    /// property for `seq & mask` indexing.
    pub fn presize(&mut self, window_cap: usize) {
        self.ctl.reserve(window_cap);
        let cap = (window_cap + 1).next_power_of_two();
        // lint:allow(no-alloc-in-step): column allocation, once per simulator construction
        self.payload = vec![PAYLOAD_FILL; cap];
        // lint:allow(no-alloc-in-step): column allocation, once per simulator construction
        self.binfo = vec![None; cap];
        self.mask = cap as u64 - 1;
    }

    fn slot(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.ctl.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.ctl.is_empty()
    }

    /// The oldest in-flight instruction's control entry.
    pub fn front(&self) -> Option<&InFlightCtl> {
        self.ctl.front()
    }

    /// The youngest in-flight instruction's control entry.
    pub fn back(&self) -> Option<&InFlightCtl> {
        self.ctl.back()
    }

    /// Iterates the control entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &InFlightCtl> {
        self.ctl.iter()
    }

    /// Looks up a live instruction's control entry by sequence number.
    ///
    /// The window is contiguous in `seq`, so this is O(1).
    pub fn ctl(&self, seq: u64) -> Option<&InFlightCtl> {
        let head = self.ctl.front()?.seq;
        self.ctl.get((seq.checked_sub(head)?) as usize)
    }

    /// Mutable variant of [`Window::ctl`].
    pub fn ctl_mut(&mut self, seq: u64) -> Option<&mut InFlightCtl> {
        let head = self.ctl.front()?.seq;
        self.ctl.get_mut((seq.checked_sub(head)?) as usize)
    }

    /// The payload of instruction `seq`.
    ///
    /// Valid for live sequence numbers, or for an entry popped in the same
    /// stage tick (no intervening push can reuse the slot; see module docs).
    pub fn di(&self, seq: u64) -> &DynInst {
        &self.payload[self.slot(seq)]
    }

    /// The branch record of instruction `seq`, if one was attached at
    /// fetch. Same validity contract as [`Window::di`].
    pub fn binfo(&self, seq: u64) -> Option<BranchInfo> {
        self.binfo[self.slot(seq)]
    }

    /// Writes the payload for the upcoming instruction `seq` (the non-bulk
    /// fetch path); must be followed by the matching [`Window::push`].
    pub fn set_di(&mut self, seq: u64, di: DynInst) {
        let slot = self.slot(seq);
        self.payload[slot] = di;
    }

    /// The payload column for the `n` upcoming instructions starting at
    /// `start_seq`, as (up to) two slices where the ring wraps. The fetch
    /// stage hands these straight to the bulk walker decode, so delivered
    /// instructions are written once, in place.
    ///
    /// The slots are dead: `n` is bounded by the fetch width and the window
    /// has room for the push, so by the contiguity argument none of the
    /// returned slots aliases a live instruction.
    pub fn payload_slots(&mut self, start_seq: u64, n: usize) -> (&mut [DynInst], &mut [DynInst]) {
        let cap = self.payload.len();
        debug_assert!(n <= cap, "payload_slots asked for {n} of {cap} slots");
        let s = (start_seq & self.mask) as usize;
        let (head, tail) = self.payload.split_at_mut(s);
        let first = n.min(cap - s);
        (&mut tail[..first], &mut head[..n - first])
    }

    /// Pushes a fetched instruction: the control entry and its branch
    /// record column. The payload slot for `ctl.seq` must already hold the
    /// instruction (via [`Window::set_di`] or [`Window::payload_slots`]).
    pub fn push(&mut self, ctl: InFlightCtl, binfo: Option<BranchInfo>) {
        debug_assert!(
            self.ctl.back().is_none_or(|b| b.seq + 1 == ctl.seq),
            "window seqs must stay contiguous"
        );
        debug_assert!(
            self.ctl.len() < self.payload.len(),
            "window overran its ring"
        );
        let slot = self.slot(ctl.seq);
        self.binfo[slot] = binfo;
        self.ctl.push_back(ctl);
    }

    /// Pops the oldest instruction (commit). Its payload columns stay
    /// readable through [`Window::di`]/[`Window::binfo`] for the rest of
    /// the popping stage's tick.
    pub fn pop_front(&mut self) -> Option<InFlightCtl> {
        self.ctl.pop_front()
    }

    /// Pops the youngest instruction (squash/flush walks). Same post-pop
    /// read contract as [`Window::pop_front`].
    pub fn pop_back(&mut self) -> Option<InFlightCtl> {
        self.ctl.pop_back()
    }

    /// Number of instructions at or after `seq` (tail length from `seq`).
    pub fn tail_len_from(&self, seq: u64) -> InstIdx {
        match self.ctl.back() {
            Some(b) if b.seq >= seq => inst_idx(b.seq - seq + 1),
            _ => 0,
        }
    }

    /// Serializes the live window as a tagged structure-of-arrays section:
    /// the section tag, the occupancy, each live instruction's control
    /// entry + payload + branch record (stale ring slots are never
    /// written), and the ring mask as a geometry check.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u32(WINDOW_SECTION_TAG);
        w.usize(self.ctl.len());
        for c in &self.ctl {
            c.save(w);
            self.payload[self.slot(c.seq)].save(w);
            self.binfo[self.slot(c.seq)].save(w);
        }
        w.u64(self.mask);
    }

    /// Restores a window saved by [`Window::save_state`] in place,
    /// preserving the pre-sized capacities.
    ///
    /// # Errors
    ///
    /// `E0018` if the section tag is wrong, the stored occupancy exceeds
    /// this window's capacity, the stored sequence numbers are not
    /// contiguous, the ring geometry differs, or the stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let tag = r.u32()?;
        if tag != WINDOW_SECTION_TAG {
            return Err(snap_mismatch(
                "window section",
                format!("expected tag {WINDOW_SECTION_TAG:#010x}, found {tag:#010x}"),
            ));
        }
        let len = r.usize()?;
        if len > self.ctl.capacity() {
            return Err(snap_mismatch(
                "window occupancy",
                format!(
                    "snapshot holds {len} in-flight instructions, capacity is {}",
                    self.ctl.capacity()
                ),
            ));
        }
        self.ctl.clear();
        for i in 0..len {
            let ctl = InFlightCtl::load(r)?;
            let di = DynInst::load(r)?;
            let binfo: Option<BranchInfo> = Snap::load(r)?;
            if let Some(prev) = self.ctl.back() {
                if prev.seq + 1 != ctl.seq {
                    return Err(snap_mismatch(
                        "window contiguity",
                        format!(
                            "entry {i} has seq {} after {} — window seqs must be contiguous",
                            ctl.seq, prev.seq
                        ),
                    ));
                }
            }
            if ctl.has_binfo() != binfo.is_some() {
                return Err(snap_mismatch(
                    "window binfo column",
                    format!("entry {i} flag/column disagreement on the branch record"),
                ));
            }
            let slot = self.slot(ctl.seq);
            self.payload[slot] = di;
            self.binfo[slot] = binfo;
            self.ctl.push_back(ctl);
        }
        let mask = r.u64()?;
        if mask != self.mask {
            return Err(snap_mismatch(
                "window ring mask",
                format!("snapshot mask {mask:#x} differs from {:#x}", self.mask),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn di_at(pc: u64, next: u64) -> DynInst {
        DynInst {
            pc: Addr::new(pc),
            next_pc: Addr::new(next),
            ..PAYLOAD_FILL
        }
    }

    fn push_seq(w: &mut Window, seq: u64) {
        let di = di_at(0x1000 + seq * 4, 0x1000 + seq * 4 + 4);
        w.set_di(seq, di);
        w.push(InFlightCtl::at_fetch(seq, 7, &di, None), None);
    }

    #[test]
    fn lookup_by_seq_is_stable_across_pops() {
        let mut w = Window::new();
        w.presize(8);
        for s in 0..5 {
            push_seq(&mut w, s);
        }
        assert_eq!(w.ctl(3).unwrap().seq, 3);
        assert!(w.ctl(9).is_none());
        let popped = w.pop_front().unwrap();
        assert_eq!(popped.seq, 0);
        // Post-pop payload read, same tick: still the popped instruction.
        assert_eq!(w.di(0).pc, Addr::new(0x1000));
        assert_eq!(w.ctl(3).unwrap().seq, 3);
        assert!(w.ctl(0).is_none());
        w.ctl_mut(4).unwrap().set_issued();
        assert!(w.ctl(4).unwrap().issued());
    }

    #[test]
    fn payload_ring_wraps_without_collision() {
        let mut w = Window::new();
        w.presize(6); // ring capacity 8
                      // March the window far past the ring size, always ≤ cap live.
        for s in 0..64u64 {
            if w.len() == 6 {
                w.pop_front();
            }
            push_seq(&mut w, s);
            for c in w.iter() {
                assert_eq!(
                    w.di(c.seq).pc,
                    Addr::new(0x1000 + c.seq * 4),
                    "seq {}",
                    c.seq
                );
            }
        }
    }

    #[test]
    fn payload_slots_split_at_the_wrap() {
        let mut w = Window::new();
        w.presize(6); // ring capacity 8
        let (a, b) = w.payload_slots(5, 6);
        assert_eq!(a.len(), 3); // slots 5, 6, 7
        assert_eq!(b.len(), 3); // slots 0, 1, 2
        let (a, b) = w.payload_slots(1, 4);
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
    }

    #[test]
    fn flags_derive_from_payload_and_binfo() {
        let mut load = PAYLOAD_FILL;
        load.class = InstClass::Load;
        let c = InFlightCtl::at_fetch(0, 0, &load, None);
        assert!(c.is_load() && !c.is_branch() && !c.has_binfo());
        assert!(!c.dispatched() && !c.issued() && !c.completed(0));
        let mut c = c;
        c.set_issued();
        c.done_at = 3;
        assert!(!c.completed(2));
        assert!(c.completed(3));
    }

    #[test]
    fn snapshot_round_trips_and_validates() {
        let mut w = Window::new();
        w.presize(8);
        for s in 0..5 {
            push_seq(&mut w, s);
        }
        w.pop_front();
        let mut sw = SnapWriter::new();
        w.save_state(&mut sw);
        let bytes = sw.into_bytes();

        let mut fresh = Window::new();
        fresh.presize(8);
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(fresh.len(), 4);
        assert_eq!(fresh.front().unwrap().seq, 1);
        assert_eq!(fresh.di(2).pc, Addr::new(0x1008));

        // A re-save of the restored window is byte-identical.
        let mut sw2 = SnapWriter::new();
        fresh.save_state(&mut sw2);
        assert_eq!(sw2.into_bytes(), bytes);

        // Wrong geometry is a diagnostic, not a panic.
        let mut tiny = Window::new();
        tiny.presize(1);
        let err = tiny.load_state(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.code, "E0018");

        // A corrupted tag is a diagnostic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        let mut fresh2 = Window::new();
        fresh2.presize(8);
        let err = fresh2.load_state(&mut SnapReader::new(&bad)).unwrap_err();
        assert_eq!(err.code, "E0018");
        assert!(err.message.contains("tag"));
    }

    #[test]
    fn tail_len_counts_from_seq() {
        let mut w = Window::new();
        w.presize(8);
        for s in 3..9 {
            push_seq(&mut w, s);
        }
        assert_eq!(w.tail_len_from(3), 6);
        assert_eq!(w.tail_len_from(7), 2);
        assert_eq!(w.tail_len_from(9), 0);
    }
}
