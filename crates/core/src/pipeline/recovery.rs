//! Mis-speculation recovery: the branch-resolution stage (redirect on
//! mispredicted branches) and the long-latency-load FLUSH, both of which
//! roll the window back, undo renames, purge the pre-issue structures, and
//! restore the front end's speculative state.

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic): stage-protocol invariants; violations must abort the simulation

use smt_isa::{inst_idx, RegClass};

use crate::frontend::FrontEnd;

use super::sched::{EventHorizon, SkipReason};
use super::{PipelineCtx, PipelineStage};

/// The resolve stage: detects resolved mispredictions (decode-detectable
/// misfetches after one stage, the rest at completion) and squashes the
/// wrong path.
#[derive(Clone, Debug)]
pub(crate) struct ResolveStage;

impl PipelineStage for ResolveStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let now = ctx.cycle;
        for tid in 0..ctx.threads.len() {
            let Some(seq) = ctx.threads[tid].pending_redirect else {
                continue;
            };
            let resolved = ctx.threads[tid]
                .window
                .ctl(seq)
                .map(|c| {
                    // Decode-detectable misfetches redirect as soon as the
                    // instruction reaches decode (one stage after fetch);
                    // everything else waits for execution.
                    let decode_ok = c.decode_redirect() && now >= c.fetched_at + 2;
                    decode_ok || c.completed(now)
                })
                .unwrap_or(false);
            if resolved {
                squash_after(ctx, tid, seq);
            }
        }
    }

    /// Resolution is timer-driven: a decode-detectable misfetch redirects
    /// `fetched_at + 2` cycles after fetch, everything else at the
    /// diverging instruction's completion. A redirect whose timer has
    /// expired is an act (the squash mutates half the machine); one still
    /// pending reports the timer as its event. An unissued, non-decode
    /// redirect is bounded by its own issue-queue entry.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        let now = ctx.cycle;
        for th in &ctx.threads {
            let Some(seq) = th.pending_redirect else {
                continue;
            };
            let Some(c) = th.window.ctl(seq) else {
                continue;
            };
            if c.decode_redirect() {
                if now >= c.fetched_at + 2 {
                    ev.act();
                    return;
                }
                ev.event(c.fetched_at + 2, SkipReason::IssueWait);
            }
            if c.completed(now) {
                ev.act();
                return;
            }
            if c.issued() {
                let reason = if c.is_load() {
                    SkipReason::MemWait
                } else {
                    SkipReason::IssueWait
                };
                ev.event(c.done_at, reason);
            }
        }
    }
}

/// Squashes everything younger than `seq` in thread `tid` and redirects
/// its front end to the oracle path.
pub(crate) fn squash_after(ctx: &mut PipelineCtx, tid: usize, seq: u64) {
    // Extract the branch's recovery info first (all payloads are
    // `Copy`, so this is a plain read).
    let (di, binfo) = {
        let w = &ctx.threads[tid].window;
        w.ctl(seq).expect("redirect target alive");
        (
            *w.di(seq),
            w.binfo(seq).expect("diverging inst carries info"),
        )
    };
    let meta = *ctx.threads[tid].meta(seq);
    // Roll the window back, youngest first, undoing renames. Popped seqs'
    // payload slots stay intact until fetch refills them later in the
    // tick, so the destination arch register can still be read after the
    // pop.
    let mut freed_rob = 0u32;
    {
        let th = &mut ctx.threads[tid];
        while th.window.back().is_some_and(|b| b.seq > seq) {
            let ctl = th.window.pop_back().expect("checked");
            ctx.stats.squashed += 1;
            if ctl.dispatched() {
                freed_rob += 1;
                if let Some(newp) = ctl.phys_dest {
                    let dest = th.window.di(ctl.seq).dest.expect("dispatched with dest");
                    th.rename_map[dest.flat_index()] = ctl.prev_phys.expect("dispatched with dest");
                    match dest.class() {
                        RegClass::Int => ctx.free_int.push(newp),
                        RegClass::Fp => ctx.free_fp.push(newp),
                    }
                }
            }
        }
    }
    ctx.rob_occ -= freed_rob;
    // Every removed entry belongs to `tid`, so the length delta is the
    // thread's pre-issue count adjustment.
    let before = ctx.preissue_live();
    ctx.fetch_buffer.retain(|e| !(e.tid == tid && e.seq > seq));
    ctx.decode_latch.retain(|e| !(e.tid == tid && e.seq > seq));
    ctx.rename_latch.retain(|e| !(e.tid == tid && e.seq > seq));
    ctx.iq_int.retain(|e| !(e.tid == tid && e.seq > seq));
    ctx.iq_ls.retain(|e| !(e.tid == tid && e.seq > seq));
    ctx.iq_fp.retain(|e| !(e.tid == tid && e.seq > seq));
    ctx.preissue[tid] -= inst_idx(before - ctx.preissue_live());

    // Repair the speculative front-end state and redirect.
    ctx.frontend
        .repair(&mut ctx.threads[tid].spec, &binfo, &meta, &di);
    let th = &mut ctx.threads[tid];
    th.ftq.clear();
    th.ftq_consumed = 0;
    th.diverged = false;
    th.iblock_until = None;
    th.pending_redirect = None;
    // Squashed sequence numbers are reused: every structure was purged
    // of them above, and window lookups rely on `seq` being contiguous.
    th.next_seq = seq + 1;
    th.next_fetch_pc = th.walker.pc();
    debug_assert_eq!(th.next_fetch_pc, di.next_pc, "oracle redirect mismatch");
}

/// Tullsen & Brown's FLUSH: squash the thread's instructions younger
/// than the long-latency load (from the first subsequent fetch block
/// on), freeing the shared queues it would otherwise clog, and rewind
/// the oracle so they are re-fetched when the miss returns.
pub(crate) fn flush_after_load(ctx: &mut PipelineCtx, tid: usize, load_seq: u64) {
    // A diverged thread's younger instructions are wrong-path and will
    // be reclaimed by the normal redirect; flushing would fight it.
    if ctx.threads[tid].diverged {
        return;
    }
    // The flush boundary is the first branch after the load: its block
    // checkpoint describes the exact front-end state to restore.
    let boundary = {
        let th = &ctx.threads[tid];
        let head = match th.window.front() {
            Some(h) => h.seq,
            None => return,
        };
        let start = (load_seq + 1).max(head);
        th.window
            .iter()
            .skip((start - head) as usize)
            .find(|c| c.has_binfo())
            .map(|c| (c.seq, *th.meta(c.seq)))
    };
    let Some((flush_seq, meta)) = boundary else {
        return; // nothing younger worth flushing
    };

    let mut freed_rob = 0u32;
    let mut rolled = 0u64;
    {
        let th = &mut ctx.threads[tid];
        while th.window.back().is_some_and(|b| b.seq >= flush_seq) {
            let ctl = th.window.pop_back().expect("checked");
            debug_assert!(!ctl.wrong_path(), "flush on an undiverged thread");
            rolled += 1;
            ctx.stats.squashed += 1;
            if ctl.dispatched() {
                freed_rob += 1;
                if let Some(newp) = ctl.phys_dest {
                    let dest = th.window.di(ctl.seq).dest.expect("dispatched with dest");
                    th.rename_map[dest.flat_index()] = ctl.prev_phys.expect("dispatched with dest");
                    match dest.class() {
                        RegClass::Int => ctx.free_int.push(newp),
                        RegClass::Fp => ctx.free_fp.push(newp),
                    }
                }
            }
        }
    }
    if rolled == 0 {
        return;
    }
    ctx.rob_occ -= freed_rob;
    // As in `squash_after`: all removed entries belong to `tid`.
    let before = ctx.preissue_live();
    ctx.fetch_buffer
        .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
    ctx.decode_latch
        .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
    ctx.rename_latch
        .retain(|e| !(e.tid == tid && e.seq >= flush_seq));
    ctx.iq_int.retain(|e| !(e.tid == tid && e.seq >= flush_seq));
    ctx.iq_ls.retain(|e| !(e.tid == tid && e.seq >= flush_seq));
    ctx.iq_fp.retain(|e| !(e.tid == tid && e.seq >= flush_seq));
    ctx.preissue[tid] -= inst_idx(before - ctx.preissue_live());

    let th = &mut ctx.threads[tid];
    th.walker.rollback(rolled);
    th.spec.hist = meta.hist;
    th.spec.ras.restore(meta.ras);
    th.spec.path = meta.path;
    th.spec.stream_start = meta.stream_start;
    th.ftq.clear();
    th.ftq_consumed = 0;
    th.iblock_until = None;
    th.next_seq = flush_seq;
    th.next_fetch_pc = th.walker.pc();
    debug_assert!(th.pending_redirect.is_none());
    ctx.stats.flushes += 1;
}
