//! The issue/execute stage: wakes ready instructions in the three issue
//! queues, models functional-unit limits and the data cache, and arms the
//! long-latency STALL/FLUSH mechanisms.

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic): stage-protocol invariants; violations must abort the simulation

use smt_isa::InstClass;
use smt_mem::DataOutcome;

use crate::config::LongLatencyAction;

use super::recovery::flush_after_load;
use super::sched::{EventHorizon, SkipReason};
use super::{PipelineCtx, PipelineStage, LONG_LATENCY, STALL_ISSUE_WIDTH};

/// The issue stage: one pass per issue queue (int, load/store, fp), then
/// any FLUSH events the load/store pass requested.
#[derive(Clone, Debug)]
pub(crate) struct IssueStage {
    /// Threads whose long-latency load requested a FLUSH this cycle,
    /// processed after all queues issue (the flush mutates queues).
    pending_flushes: Vec<(usize, u64)>,
}

impl IssueStage {
    pub(crate) fn new(fu_ls: usize) -> Self {
        IssueStage {
            pending_flushes: Vec::with_capacity(fu_ls),
        }
    }
}

impl PipelineStage for IssueStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        self.issue_queue(ctx, 0);
        self.issue_queue(ctx, 1);
        self.issue_queue(ctx, 2);
        // Take/restore rather than drain-by-value so the buffer keeps its
        // capacity across cycles (flush_after_load never requests flushes).
        let mut flushes = std::mem::take(&mut self.pending_flushes);
        for &(tid, load_seq) in &flushes {
            flush_after_load(ctx, tid, load_seq);
        }
        flushes.clear();
        self.pending_flushes = flushes;
    }

    /// Issue acts as soon as any queue entry's operands are ready (even an
    /// MSHR-full load retry touches the data cache); an entry whose sources
    /// become ready at a finite future cycle is an issue-wait event. Sources
    /// are recomputed from `ready_at` rather than read from the cached
    /// `wake` field, which the skipped ticks would have refreshed.
    /// Unresolved (`u64::MAX`) sources report nothing: the producer's own
    /// queue entry bounds the wait.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        debug_assert!(self.pending_flushes.is_empty(), "flushes drain every tick");
        let now = ctx.cycle;
        for queue in [&ctx.iq_int, &ctx.iq_ls, &ctx.iq_fp] {
            for e in queue {
                let mut ready = e.entered + 1;
                for &p in e.src_phys.iter().flatten() {
                    ready = ready.max(ctx.ready_at[p as usize]);
                }
                if ready <= now {
                    ev.act();
                    return;
                }
                if ready != u64::MAX {
                    ev.event(ready, SkipReason::IssueWait);
                }
            }
        }
    }
}

impl IssueStage {
    fn issue_queue(&mut self, ctx: &mut PipelineCtx, which: usize) {
        let now = ctx.cycle;
        let fu_limit = match which {
            0 => ctx.cfg.fu_int,
            1 => ctx.cfg.fu_ls,
            _ => ctx.cfg.fu_fp,
        };
        let mut queue = std::mem::take(match which {
            0 => &mut ctx.iq_int,
            1 => &mut ctx.iq_ls,
            _ => &mut ctx.iq_fp,
        });
        // In-place two-pointer compaction: `kept` trails the read index, so
        // surviving entries shift down in order and the queue Vec is reused
        // without a per-cycle allocation.
        let mut kept = 0usize;
        let mut issued = 0u32;
        let len = queue.len();
        for idx in 0..len {
            if issued == fu_limit || queue[idx].entered >= now {
                // Entries append in dispatch order, so `entered` is
                // non-decreasing along the queue, and an exhausted FU limit
                // stays exhausted: the whole tail is kept verbatim.
                if issued == fu_limit {
                    // Aged entries left waiting behind the FU limit observe
                    // an issue-width stall this cycle.
                    for te in &queue[idx..len] {
                        if te.entered < now {
                            ctx.note_stall(te.tid, STALL_ISSUE_WIDTH);
                        }
                    }
                }
                if kept != idx {
                    queue.copy_within(idx..len, kept);
                }
                kept += len - idx;
                break;
            }
            // Operand-blocked entries park behind their cached wake-up
            // cycle: one compare, no window deref (see `IqEntry::wake`).
            // Compaction copies only happen once an earlier entry has left
            // the queue (`kept != idx`); the steady-state prefix of waiting
            // entries is scanned in place.
            if queue[idx].wake > now {
                if kept != idx {
                    queue[kept] = queue[idx];
                }
                kept += 1;
                continue;
            }
            // Queue entries never outlive their window instructions (squash
            // and flush purge the queues eagerly), so the cached operand
            // and class fields are always live.
            debug_assert!(ctx.threads[queue[idx].tid]
                .window
                .ctl(queue[idx].seq)
                .is_some());
            let mut ready_cycle = 0u64;
            let mut unresolved = false;
            for &p in queue[idx].src_phys.iter().flatten() {
                let r = ctx.ready_at[p as usize];
                unresolved |= r == u64::MAX;
                ready_cycle = ready_cycle.max(r);
            }
            if ready_cycle > now {
                // An unresolved source (producer not yet issued) must be
                // re-examined next cycle; a finite bound is exact and lets
                // the entry sleep until it arrives.
                if kept != idx {
                    queue[kept] = queue[idx];
                }
                queue[kept].wake = if unresolved { now + 1 } else { ready_cycle };
                kept += 1;
                continue;
            }
            let e = queue[idx];
            let class = e.class;
            let mem_addr = e.mem_addr;
            let wrong_path = e.wrong_path;
            let done_at = match class {
                InstClass::Load => {
                    let addr = mem_addr.expect("loads carry addresses");
                    match ctx.mem.load(addr, now) {
                        DataOutcome::Stall => {
                            if kept != idx {
                                queue[kept] = e;
                            }
                            kept += 1;
                            continue;
                        }
                        DataOutcome::Done { ready } => {
                            let done = ready.max(now) + 1;
                            // Long-latency (memory) miss detection for the
                            // MISSCOUNT metric and STALL/FLUSH mechanisms.
                            // Only correct-path loads arm the mechanisms.
                            if done - now > LONG_LATENCY && !wrong_path {
                                // Drop expired entries first: consumers only
                                // ever count `> now`, and this keeps the list
                                // bounded by the in-flight load count (so the
                                // pre-sized capacity is never exceeded).
                                let th = &mut ctx.threads[e.tid];
                                th.outstanding_misses.retain(|&r| r > now);
                                th.outstanding_misses.push(done);
                                match ctx.cfg.fetch_policy.long_latency {
                                    LongLatencyAction::None => {}
                                    LongLatencyAction::Stall => {
                                        let th = &mut ctx.threads[e.tid];
                                        th.mem_stall_until =
                                            Some(th.mem_stall_until.unwrap_or(0).max(done));
                                    }
                                    LongLatencyAction::Flush => {
                                        let th = &mut ctx.threads[e.tid];
                                        th.mem_stall_until =
                                            Some(th.mem_stall_until.unwrap_or(0).max(done));
                                        self.pending_flushes.push((e.tid, e.seq));
                                    }
                                }
                            }
                            done
                        }
                    }
                }
                other => now + other.default_latency(),
            };
            {
                let ctl = ctx.threads[e.tid].window.ctl_mut(e.seq).expect("present");
                ctl.set_issued();
                ctl.done_at = done_at;
                if let Some(p) = ctl.phys_dest {
                    ctx.ready_at[p as usize] = done_at;
                }
            }
            issued += 1;
            // Issued entries leave the pre-issue structures.
            ctx.preissue[e.tid] -= 1;
        }
        queue.truncate(kept);
        match which {
            0 => ctx.iq_int = queue,
            1 => ctx.iq_ls = queue,
            _ => ctx.iq_fp = queue,
        }
    }
}
