//! Event-driven cycle skipping: the next-interesting-event scheduler
//! (DESIGN.md §14).
//!
//! Between steps, every pipeline stage answers two questions through
//! [`PipelineStage::horizon`]: *can you change machine state this cycle?*
//! and, if not, *what is the earliest future cycle at which your inputs
//! change on their own?* Self-scheduled changes are always timer expiries —
//! a load's `done_at`, an I-block's miss return, a STALL/FLUSH gate, an
//! issue-queue operand becoming ready, an MSHR fill — so when no stage can
//! act, the machine is frozen until the minimum reported expiry and the
//! scheduler jumps straight to it.
//!
//! The jump is behavior-invariant by construction: a cycle in which no
//! stage acts only runs `attribute_stalls`, and every stall bit a stage
//! would set on such a cycle is a pure function of state that cannot change
//! before the horizon (the stages record those bits in
//! [`EventHorizon::flag`], and [`apply`] charges them once per skipped
//! cycle with the same severity order as `attribute_stalls`). The
//! stall-partition invariant `stalls.total(tid) == cycles` therefore holds
//! through skipped regions, and a skip clamped at a chunk boundary
//! re-derives the identical classification when the resumed simulator calls
//! the scheduler again on the same frozen state.
//!
//! Unlike the PR 5 fast path this file replaces, no stage is special-cased:
//! the contract covers every fetch policy (RR/ICOUNT/BRCOUNT/MISSCOUNT,
//! with or without STALL/FLUSH) and every front-end engine, and skips
//! backend-frozen windows — latches occupied, dispatch blocked on a full
//! ROB, a data miss at the ROB head — that the whole-machine-idle predicate
//! could never touch.

use smt_isa::{Cycle, MAX_THREADS};

use super::{
    PipelineCtx, PipelineStage, STALL_DCACHE_MISS, STALL_FETCH_STARVED, STALL_ICACHE_MISS,
    STALL_ROB_FULL,
};
use crate::frontend::FrontEnd;
use crate::sim::Simulator;

/// Why the scheduler skipped: the classification of the binding (earliest)
/// event. The discriminant is the tie-break priority — when several sources
/// expire on the same cycle, the skip is charged to the highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SkipReason {
    /// An issue-side expiry: operand readiness in an issue queue, a
    /// non-load completion, or a decode-redirect resolution timer.
    IssueWait = 0,
    /// An I-cache miss return the FTQ head is blocked on.
    FtqWait = 1,
    /// A data-side memory expiry: a load's completion at the ROB head or
    /// an MSHR fill return.
    MemWait = 2,
    /// A STALL/FLUSH long-latency gate: fetch deliberately idle until the
    /// offending load returns.
    PolicyIdle = 3,
}

impl SkipReason {
    /// Tie-break priority (mirrors the discriminant; spelled as a match so
    /// the hot path needs no numeric cast).
    fn priority(self) -> u8 {
        match self {
            SkipReason::IssueWait => 0,
            SkipReason::FtqWait => 1,
            SkipReason::MemWait => 2,
            SkipReason::PolicyIdle => 3,
        }
    }
}

/// Accumulates one scheduling decision: whether any stage can act this
/// cycle, the minimum future event with its classification, the per-thread
/// stall bits that hold on every cycle of the idle window, and whether the
/// full fetch buffer blocks an otherwise-ready fetch (charged to
/// `fetch_buffer_stalls` per skipped cycle, as the fetch stage would).
#[derive(Debug)]
pub(crate) struct EventHorizon {
    now: Cycle,
    acted: bool,
    wake: Cycle,
    reason: SkipReason,
    flags: [u8; MAX_THREADS],
    buffer_full: bool,
}

impl EventHorizon {
    pub(crate) fn new(now: Cycle) -> Self {
        EventHorizon {
            now,
            acted: false,
            wake: u64::MAX,
            reason: SkipReason::IssueWait,
            flags: [0; MAX_THREADS],
            buffer_full: false,
        }
    }

    /// The reporting stage would mutate machine state this cycle: the
    /// scheduler must step, not skip.
    #[inline]
    pub(crate) fn act(&mut self) {
        self.acted = true;
    }

    #[inline]
    pub(crate) fn acted(&self) -> bool {
        self.acted
    }

    /// Registers a self-scheduled state change at cycle `at` (strictly in
    /// the future). Minimum wins; on a tie the higher-priority reason does.
    #[inline]
    pub(crate) fn event(&mut self, at: Cycle, reason: SkipReason) {
        debug_assert!(at > self.now, "horizon event must be in the future");
        if at < self.wake || (at == self.wake && reason.priority() > self.reason.priority()) {
            self.wake = at;
            self.reason = reason;
        }
    }

    /// Records a stall bit that holds for `tid` on every cycle of the idle
    /// window (the bit the stage would `note_stall` each stepped cycle).
    #[inline]
    pub(crate) fn flag(&mut self, tid: usize, bit: u8) {
        self.flags[tid] |= bit;
    }

    /// Records that fetch is blocked solely by a full fetch buffer (the
    /// condition behind the per-cycle `fetch_buffer_stalls` counter).
    #[inline]
    pub(crate) fn buffer_full(&mut self) {
        self.buffer_full = true;
    }
}

impl Simulator {
    /// Tries to jump to the next interesting event: returns the number of
    /// cycles skipped (stats updated as if each had been stepped), or 0 if
    /// some stage can act this cycle and a real step is required.
    ///
    /// Stages are polled cheapest-first so busy cycles bail out after one
    /// or two O(1)/O(threads) probes; the issue-queue scan — the only
    /// O(queue) probe — runs last.
    pub(crate) fn fast_forward(&mut self, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        let ctx = &self.ctx;
        let mut ev = EventHorizon::new(ctx.cycle);
        self.decode.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.rename.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.commit.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.predict.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.fetch.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.resolve.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.dispatch.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        self.issue.horizon(ctx, &mut ev);
        if ev.acted() {
            return 0;
        }
        // The memory model and front-end engine report their own horizons:
        // pending MSHR fills on either side, and (for future push-driven
        // engines) any self-scheduled predictor event. Both are conservative
        // bounds — an expiry that enables no stage merely splits the skip,
        // and the re-derived classification charges the remainder
        // identically.
        if let Some(at) = ctx.mem.next_event(ctx.cycle) {
            ev.event(at, SkipReason::MemWait);
        }
        if let Some(at) = ctx.frontend.next_event(ctx.cycle) {
            ev.event(at, SkipReason::PolicyIdle);
        }
        apply(&mut self.ctx, &ev, max)
    }
}

/// Executes a skip decided by [`Simulator::fast_forward`]: charges each
/// thread's recorded stall bit (same severity order as `attribute_stalls`;
/// issue-width and bank-conflict bits require an acting stage and thus
/// cannot occur in an idle window) once per skipped cycle, advances the
/// clock, and books the skip under its reason counter. Returns the skip
/// length, 0 if no finite future event exists.
fn apply(ctx: &mut PipelineCtx, ev: &EventHorizon, max: u64) -> u64 {
    if ev.wake == u64::MAX {
        // Fully blocked with no self-scheduled event (unreachable with the
        // synthetic workloads): fall back to stepping.
        return 0;
    }
    debug_assert!(ev.wake > ctx.cycle);
    let skip = (ev.wake - ctx.cycle).min(max);
    for tid in 0..ctx.threads.len() {
        debug_assert_eq!(
            ctx.stall_flags[tid], 0,
            "stall flags must be consumed before the scheduler runs"
        );
        let s = &mut ctx.stats.stalls;
        let flags = ev.flags[tid];
        let bucket = if flags & STALL_DCACHE_MISS != 0 {
            &mut s.dcache_miss
        } else if flags & STALL_ROB_FULL != 0 {
            &mut s.rob_full
        } else if flags & STALL_ICACHE_MISS != 0 {
            &mut s.icache_miss
        } else if flags & STALL_FETCH_STARVED != 0 {
            &mut s.fetch_starved
        } else {
            &mut s.residual
        };
        bucket[tid] += skip;
    }
    if ev.buffer_full {
        ctx.stats.fetch_buffer_stalls += skip;
    }
    ctx.cycle += skip;
    ctx.stats.cycles = ctx.cycle - ctx.stats_since;
    match ev.reason {
        SkipReason::IssueWait => ctx.stats.skip_issue_wait += skip,
        SkipReason::FtqWait => ctx.stats.skip_ftq_wait += skip,
        SkipReason::MemWait => ctx.stats.skip_mem_wait += skip,
        SkipReason::PolicyIdle => ctx.stats.skip_policy_idle += skip,
    }
    skip
}
