//! The pipeline-stage decomposition of the cycle loop.
//!
//! Each stage is a struct owning its own scratch buffers and exposing
//! `fn tick(&mut self, ctx: &mut PipelineCtx)` ([`PipelineStage`]); the
//! shared machine state — threads, queues, register files, memory, stats —
//! lives in [`PipelineCtx`]. `Simulator::step` calls the stages in reverse
//! pipeline order (commit side first), exactly as the monolithic loop did,
//! so stage decomposition is behavior-preserving by construction.
//!
//! The stages also *attribute stalls*: as each stage runs it marks, per
//! thread, which bottleneck it observed this cycle (bits in
//! [`PipelineCtx::stall_flags`]); [`attribute_stalls`] then charges each
//! active thread's cycle to exactly one [`StallBreakdown`] bucket (highest
//! severity wins) or to the idle/overlap residual, so the buckets plus the
//! residual always sum to total cycles per thread.

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic): stage-protocol invariants; violations must abort the simulation

pub(crate) mod commit;
pub(crate) mod decode_rename;
pub(crate) mod fetch;
pub(crate) mod issue;
pub(crate) mod recovery;
pub(crate) mod sched;

use std::collections::VecDeque;

use smt_isa::{Addr, Cycle, InstClass, MAX_THREADS};
use smt_mem::MemoryHierarchy;

use crate::config::{LongLatencyAction, PolicyKind, SimConfig};
use crate::frontend::AnyFrontEnd;
use crate::metrics::SimStats;
use crate::thread::ThreadState;
use crate::window::PhysReg;

pub(crate) use commit::CommitStage;
pub(crate) use decode_rename::{DecodeStage, DispatchStage, RenameStage};
pub(crate) use fetch::{FetchStage, PredictStage};
pub(crate) use issue::IssueStage;
pub(crate) use recovery::ResolveStage;

/// A data access slower than this many cycles counts as a long-latency
/// (memory) miss for the STALL/FLUSH mechanisms and the MISSCOUNT metric —
/// above the 10-cycle L2 hit, below the 100-cycle memory access.
pub(crate) const LONG_LATENCY: u64 = 30;

/// One pipeline stage: owns its scratch, ticks once per cycle against the
/// shared context.
pub(crate) trait PipelineStage {
    /// Advances the stage one cycle.
    fn tick(&mut self, ctx: &mut PipelineCtx);

    /// The stage's event-horizon report (DESIGN.md §14): without mutating
    /// anything, decide whether [`PipelineStage::tick`] would change machine
    /// state *this* cycle (`ev.act()`), and if not, register the earliest
    /// future cycle at which this stage's inputs can change on their own
    /// (`ev.event(at, reason)`) plus the per-thread stall bits the stage
    /// would charge on every idle cycle until then (`ev.flag`). The
    /// scheduler jumps to the minimum reported event when no stage acts;
    /// a stage whose unblocking depends solely on another stage acting
    /// reports nothing.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut sched::EventHorizon);
}

// Per-thread stall-observation bits, set by the stages as they run and
// consumed (then cleared) by `attribute_stalls` at the end of the cycle.
/// Fetch blocked on an I-cache miss (or a miss was taken this cycle).
pub(crate) const STALL_ICACHE_MISS: u8 = 1 << 0;
/// Fetch lost an I-cache bank to a higher-priority thread (2.X only).
pub(crate) const STALL_BANK_CONFLICT: u8 = 1 << 1;
/// Thread was fetch-ready but the policy served other threads first.
pub(crate) const STALL_FETCH_STARVED: u8 = 1 << 2;
/// Dispatch blocked because the shared ROB was full.
pub(crate) const STALL_ROB_FULL: u8 = 1 << 3;
/// A ready instruction could not issue: functional units exhausted.
pub(crate) const STALL_ISSUE_WIDTH: u8 = 1 << 4;
/// Commit blocked behind an outstanding data-cache miss.
pub(crate) const STALL_DCACHE_MISS: u8 = 1 << 5;

/// Issue-queue entry.
///
/// Besides the identifying `(tid, seq)` pair, the entry caches everything
/// the issue scan needs from the in-flight instruction — renamed sources,
/// class, memory address, wrong-path bit — all of which are immutable after
/// dispatch. The per-cycle wakeup scan therefore runs over the contiguous
/// queue `Vec` alone, never chasing into the per-thread window deques; the
/// window entry is only touched on actual issue (to record `issued` /
/// `done_at`). Sound because a queue entry cannot outlive its window
/// instruction: squash and flush purge the queues in the same call that
/// rolls the window back, and commit only retires already-issued heads.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IqEntry {
    pub(crate) tid: usize,
    pub(crate) seq: u64,
    pub(crate) entered: Cycle,
    /// Cached earliest cycle this entry could issue — an *exact* bound, not
    /// a heuristic: `entered + 1` until the sources are examined, then the
    /// max source `ready_at` once every source is finite (finite `ready_at`
    /// values never change while a consumer is in flight: the producer's
    /// register cannot be reallocated before the consumer commits). Entries
    /// with an unresolved (`u64::MAX`) source are re-examined every cycle.
    /// Lets the issue scan skip operand-blocked entries with one compare
    /// instead of `ready_at` loads, without changing the issue order or
    /// timing by a single cycle.
    pub(crate) wake: Cycle,
    /// Renamed source registers, fixed at dispatch.
    pub(crate) src_phys: [Option<PhysReg>; 2],
    /// Instruction class (selects latency and, for loads/stores, the data
    /// cache path).
    pub(crate) class: InstClass,
    /// Wrong-path bit (wrong-path loads never arm STALL/FLUSH).
    pub(crate) wrong_path: bool,
    /// Data address for loads and stores.
    pub(crate) mem_addr: Option<Addr>,
}

/// Pipeline-latch entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LatchEntry {
    pub(crate) tid: usize,
    pub(crate) seq: u64,
    pub(crate) entered: Cycle,
}

/// Thread ids in fetch-priority order: a fixed-size list so the per-cycle
/// priority computation needs no heap.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Priorities {
    tids: [usize; MAX_THREADS],
    len: usize,
}

impl Priorities {
    pub(crate) fn order(&self) -> &[usize] {
        &self.tids[..self.len]
    }
}

/// I-cache banks touched so far this cycle. The per-cycle fetch budget is at
/// most 16 instructions (one 64-byte line, two if the start is unaligned) per
/// port, so a small fixed array covers every reachable configuration.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BankSet {
    banks: [u64; 8],
    len: usize,
}

impl BankSet {
    pub(crate) fn new() -> Self {
        BankSet {
            banks: [0; 8],
            len: 0,
        }
    }

    pub(crate) fn contains(&self, bank: u64) -> bool {
        self.banks[..self.len].contains(&bank)
    }

    pub(crate) fn push(&mut self, bank: u64) {
        debug_assert!(self.len < self.banks.len(), "more lines than fetch width");
        if self.len < self.banks.len() {
            self.banks[self.len] = bank;
            self.len += 1;
        }
    }
}

/// The shared machine state every stage ticks against: configuration, the
/// front-end engine, per-thread state, the inter-stage queues, register
/// files, memory, and statistics. What used to be loose fields on the
/// monolithic `Simulator` — stages now borrow it mutably one at a time.
#[derive(Clone, Debug)]
pub(crate) struct PipelineCtx {
    pub(crate) cfg: SimConfig,
    pub(crate) frontend: AnyFrontEnd,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) cycle: Cycle,
    pub(crate) fetch_buffer: VecDeque<LatchEntry>,
    pub(crate) decode_latch: VecDeque<LatchEntry>,
    pub(crate) rename_latch: VecDeque<LatchEntry>,
    pub(crate) iq_int: Vec<IqEntry>,
    pub(crate) iq_ls: Vec<IqEntry>,
    pub(crate) iq_fp: Vec<IqEntry>,
    /// Cycle at which statistics were last reset (for warmup exclusion).
    pub(crate) stats_since: Cycle,
    pub(crate) free_int: Vec<PhysReg>,
    pub(crate) free_fp: Vec<PhysReg>,
    /// Cycle at which each physical register's value is ready.
    pub(crate) ready_at: Vec<Cycle>,
    pub(crate) rob_occ: u32,
    /// Per-thread entry count across the six pre-issue structures (fetch
    /// buffer, decode/rename latches, three issue queues) — the ICOUNT
    /// metric, maintained incrementally at each insert/remove so the
    /// per-cycle priority computation does not rescan every queue. A debug
    /// assertion in [`PipelineCtx::priorities`] cross-checks it against the
    /// full recount on every use.
    pub(crate) preissue: [u32; MAX_THREADS],
    /// Per-thread stall-observation bits for the cycle in progress
    /// (`STALL_*` constants), consumed by [`attribute_stalls`].
    pub(crate) stall_flags: [u8; MAX_THREADS],
    pub(crate) stats: SimStats,
}

impl PipelineCtx {
    /// Total entries across the six pre-issue structures (the quantity the
    /// incremental `preissue` counters track, summed over threads).
    pub(crate) fn preissue_live(&self) -> usize {
        self.fetch_buffer.len()
            + self.decode_latch.len()
            + self.rename_latch.len()
            + self.iq_int.len()
            + self.iq_ls.len()
            + self.iq_fp.len()
    }

    /// Per-thread pre-issue instruction counts recomputed from the queues —
    /// the reference the incremental `preissue` counters are checked against
    /// (debug builds) on every ICOUNT priority computation.
    pub(crate) fn icounts(&self) -> [u32; MAX_THREADS] {
        let mut c = [0u32; MAX_THREADS];
        for e in self
            .fetch_buffer
            .iter()
            .chain(self.decode_latch.iter())
            .chain(self.rename_latch.iter())
        {
            c[e.tid] += 1;
        }
        for e in self
            .iq_int
            .iter()
            .chain(self.iq_ls.iter())
            .chain(self.iq_fp.iter())
        {
            c[e.tid] += 1;
        }
        c
    }

    /// Per-thread pre-issue *branch* counts (the BRCOUNT metric).
    pub(crate) fn brcounts(&self) -> [u32; MAX_THREADS] {
        let mut c = [0u32; MAX_THREADS];
        let mut count = |tid: usize, seq: u64| {
            // The branch bit lives in the control flags, so the metric scan
            // never touches the payload column.
            if let Some(ctl) = self.threads[tid].window.ctl(seq) {
                if ctl.is_branch() {
                    c[tid] += 1;
                }
            }
        };
        for e in self
            .fetch_buffer
            .iter()
            .chain(self.decode_latch.iter())
            .chain(self.rename_latch.iter())
        {
            count(e.tid, e.seq);
        }
        for e in self
            .iq_int
            .iter()
            .chain(self.iq_ls.iter())
            .chain(self.iq_fp.iter())
        {
            count(e.tid, e.seq);
        }
        c
    }

    /// Thread ids in fetch-priority order under the configured policy.
    ///
    /// Each thread's sort key is packed into one `u64` — the policy metric
    /// in the high bits, the *rotated* thread id below it, the thread id
    /// itself in the low byte for recovery — so the per-cycle sort compares
    /// single words. The rotated id is unique per thread, so keys are unique
    /// and the unstable (allocation-free) sort is deterministic; the metric
    /// is bounded by the window size (≪ 2⁴⁸), so the fields never collide.
    pub(crate) fn priorities(&self) -> Priorities {
        let n = self.threads.len();
        let mut tids = [0usize; MAX_THREADS];
        if n == 1 {
            return Priorities { tids, len: 1 };
        }
        let rot = (self.cycle as usize) % n;
        let now = self.cycle;
        let pack = |metric: u64, t: usize| {
            debug_assert!(metric < 1 << 48);
            (metric << 16) | ((((t + n - rot) % n) as u64) << 8) | t as u64
        };
        let mut keys = [0u64; MAX_THREADS];
        match self.cfg.fetch_policy.kind {
            PolicyKind::Icount => {
                debug_assert_eq!(
                    self.icounts(),
                    self.preissue,
                    "incremental ICOUNT counters diverged from the queues"
                );
                for (t, k) in keys.iter_mut().enumerate().take(n) {
                    *k = pack(self.preissue[t] as u64, t);
                }
            }
            PolicyKind::RoundRobin => {
                // A pure rotation: construct the order directly.
                for (i, slot) in tids.iter_mut().enumerate().take(n) {
                    *slot = (rot + i) % n;
                }
                return Priorities { tids, len: n };
            }
            PolicyKind::BrCount => {
                let bc = self.brcounts();
                for (t, k) in keys.iter_mut().enumerate().take(n) {
                    *k = pack(bc[t] as u64, t);
                }
            }
            PolicyKind::MissCount => {
                for (t, th) in self.threads.iter().enumerate() {
                    let mc = th.outstanding_misses.iter().filter(|&&r| r > now).count();
                    keys[t] = pack(mc as u64, t);
                }
            }
        }
        keys[..n].sort_unstable();
        for (slot, &k) in tids.iter_mut().zip(keys.iter()).take(n) {
            *slot = (k & 0xff) as usize;
        }
        Priorities { tids, len: n }
    }

    /// Whether STALL/FLUSH gating blocks `tid` from front-end service.
    pub(crate) fn gated(&self, tid: usize) -> bool {
        self.cfg.fetch_policy.long_latency != LongLatencyAction::None
            && self.threads[tid]
                .mem_stall_until
                .is_some_and(|until| until > self.cycle)
    }

    /// Which issue queue serves an instruction class (0 = int, 1 = L/S,
    /// 2 = fp).
    pub(crate) fn queue_for(class: InstClass) -> usize {
        match class {
            InstClass::Load | InstClass::Store => 1,
            InstClass::FpAlu => 2,
            _ => 0,
        }
    }

    /// Marks a stall observation for `tid` this cycle.
    #[inline]
    pub(crate) fn note_stall(&mut self, tid: usize, bit: u8) {
        self.stall_flags[tid] |= bit;
    }

    /// Prints a debugging snapshot of the pipeline (backs the simulator's
    /// `dump_state`; not part of the stable API).
    pub(crate) fn dump(&self) {
        println!(
            "cycle {} rob_occ {} fb {} dl {} rl {} iq {}/{}/{} free {}/{}",
            self.cycle,
            self.rob_occ,
            self.fetch_buffer.len(),
            self.decode_latch.len(),
            self.rename_latch.len(),
            self.iq_int.len(),
            self.iq_ls.len(),
            self.iq_fp.len(),
            self.free_int.len(),
            self.free_fp.len()
        );
        for th in &self.threads {
            println!("t{}: window {} pending {:?} diverged {} iblock {:?} ftq {} next_pc {} walker_pc {}",
                th.id, th.window.len(), th.pending_redirect, th.diverged, th.iblock_until,
                th.ftq.len(), th.next_fetch_pc, th.walker.pc());
            if let Some(h) = th.window.front() {
                println!(
                    "   head: seq {} {} dispatched {} issued {} done {} wp {}",
                    h.seq,
                    th.window.di(h.seq),
                    h.dispatched(),
                    h.issued(),
                    h.done_at,
                    h.wrong_path()
                );
            }
            if let Some(seq) = th.pending_redirect {
                if let Some(ctl) = th.window.ctl(seq) {
                    println!(
                        "   redirect: seq {} {} dispatched {} issued {} done {} srcs {:?}",
                        ctl.seq,
                        th.window.di(seq),
                        ctl.dispatched(),
                        ctl.issued(),
                        ctl.done_at,
                        ctl.src_phys
                    );
                } else {
                    println!("   redirect inst MISSING");
                }
            }
        }
    }
}

/// End-of-cycle stall accounting: charges each active thread's cycle to
/// exactly one breakdown bucket — the most severe bottleneck any stage
/// observed for it this cycle — or to the idle/overlap residual, then
/// clears the observation bits. One increment per thread per cycle, so per
/// thread the buckets plus the residual always sum to total cycles.
///
/// Severity order (commit side outranks fetch side, since a blocked commit
/// stalls the thread regardless of how well fetch is going): data-cache
/// miss > ROB full > issue width > I-cache miss > bank conflict >
/// fetch-policy starvation.
pub(crate) fn attribute_stalls(ctx: &mut PipelineCtx) {
    let n = ctx.threads.len();
    for tid in 0..n {
        let flags = ctx.stall_flags[tid];
        ctx.stall_flags[tid] = 0;
        let s = &mut ctx.stats.stalls;
        let bucket = if flags & STALL_DCACHE_MISS != 0 {
            &mut s.dcache_miss
        } else if flags & STALL_ROB_FULL != 0 {
            &mut s.rob_full
        } else if flags & STALL_ISSUE_WIDTH != 0 {
            &mut s.issue_width
        } else if flags & STALL_ICACHE_MISS != 0 {
            &mut s.icache_miss
        } else if flags & STALL_BANK_CONFLICT != 0 {
            &mut s.bank_conflict
        } else if flags & STALL_FETCH_STARVED != 0 {
            &mut s.fetch_starved
        } else {
            &mut s.residual
        };
        bucket[tid] += 1;
    }
}
