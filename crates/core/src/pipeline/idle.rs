//! Idle-cycle fast-forward: when every active thread is provably stalled
//! until a known wake-up cycle, advance the clock in one step instead of
//! ticking eight no-op stages per cycle.
//!
//! The predicate below is *exact*, not heuristic: a cycle is skipped only
//! when replaying it through `Simulator::step` would mutate nothing but the
//! cycle counter and the stall-attribution buckets. Both of those are
//! reproduced here for every skipped cycle (the per-thread stall flags are
//! provably constant across the skipped window), so all statistics —
//! including the `stalls.total(tid) == cycles` partition invariant — stay
//! bit-identical to the step-by-step execution. The step-equivalence
//! property tests compare whole `SimStats` snapshots to lock this in.
//!
//! Windows large enough to matter arise from I-cache misses that block
//! every thread at once and, far more often, from the STALL/FLUSH
//! long-latency policies (§5 of the paper), which deliberately idle a
//! thread for the full memory latency.

use smt_isa::InstClass;

use super::{IqEntry, PipelineCtx};

/// Tightens the wake-up bound.
#[inline]
fn bound(wake: &mut u64, at: u64) {
    *wake = (*wake).min(at);
}

/// Scans one issue queue; returns `false` if any entry could issue at
/// `now` (or needs issue-stage cleanup), tightening `wake` otherwise.
fn queue_idle(ctx: &PipelineCtx, queue: &[IqEntry], now: u64, wake: &mut u64) -> bool {
    for e in queue {
        // Queue entries never outlive their window instructions (squash and
        // flush purge the queues eagerly), so the cached sources are live.
        debug_assert!(ctx.threads[e.tid].inst(e.seq).is_some());
        // First cycle the entry could issue: it must have aged one cycle
        // and every renamed source must be ready. An un-issued producer
        // leaves `ready_at` at `u64::MAX`; such entries are unbounded here
        // but their producers' own queue entries bound the wake-up.
        let mut ready = e.entered + 1;
        for &p in e.src_phys.iter().flatten() {
            ready = ready.max(ctx.ready_at[p as usize]);
        }
        if ready <= now {
            return false;
        }
        if ready != u64::MAX {
            bound(wake, ready);
        }
    }
    true
}

/// If the machine is provably idle at `ctx.cycle`, advances the clock by up
/// to `max` cycles (bounded by the earliest wake-up), charging the same
/// per-cycle stall buckets the stages would have, and returns the number of
/// cycles skipped. Returns 0 when any stage could act this cycle.
pub(crate) fn fast_forward(ctx: &mut PipelineCtx, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    // Any in-flight pre-dispatch instruction means decode/rename/dispatch
    // will act. With all three empty, every window instruction is
    // dispatched.
    if !ctx.fetch_buffer.is_empty() || !ctx.decode_latch.is_empty() || !ctx.rename_latch.is_empty()
    {
        return 0;
    }
    let now = ctx.cycle;
    let ftq_depth = ctx.cfg.ftq_depth as usize;
    let mut wake = u64::MAX;
    for (tid, th) in ctx.threads.iter().enumerate() {
        // Mis-speculation in flight: resolve/squash can fire on its own
        // schedule (decode-detectable redirects are purely time-based).
        if th.pending_redirect.is_some() || th.diverged {
            return 0;
        }
        let gated = ctx.gated(tid);
        // The prediction stage fills any ungated thread with FTQ space.
        if th.ftq.len() < ftq_depth && !gated {
            return 0;
        }
        // The fetch stage serves any eligible ungated thread (the fetch
        // buffer is empty, so it always has room to deliver).
        if th.fetch_eligible(now) && !gated {
            return 0;
        }
        if let Some(m) = th.mem_stall_until {
            if m > now {
                bound(&mut wake, m);
            }
        }
        // Keep the I-cache-miss stall flag constant across the window.
        if !th.ftq.is_empty() {
            if let Some(r) = th.iblock_until {
                if r > now {
                    bound(&mut wake, r);
                }
            }
        }
        if let Some(head) = th.window.front() {
            debug_assert!(head.dispatched, "undispatched head with empty latches");
            if head.completed(now) {
                return 0; // commit would retire it
            }
            if head.issued {
                bound(&mut wake, head.done_at);
            }
        }
    }
    if !queue_idle(ctx, &ctx.iq_int, now, &mut wake)
        || !queue_idle(ctx, &ctx.iq_ls, now, &mut wake)
        || !queue_idle(ctx, &ctx.iq_fp, now, &mut wake)
    {
        return 0;
    }
    if wake <= now || wake == u64::MAX {
        return 0;
    }
    let skip = (wake - now).min(max);
    // Charge each skipped cycle's stall attribution. The observable flags
    // are constant across the window (each bound above guarantees the
    // condition it depends on outlasts `wake`), so per thread the whole
    // window lands in one bucket, with the same severity resolution as
    // `attribute_stalls`: dcache-miss outranks icache-miss; no other stage
    // observes anything while the machine is idle.
    for tid in 0..ctx.threads.len() {
        debug_assert_eq!(ctx.stall_flags[tid], 0, "unconsumed stall flags");
        let th = &ctx.threads[tid];
        let dcache = th.window.front().is_some_and(|h| {
            h.dispatched && h.issued && !h.completed(now) && h.di.class == InstClass::Load
        });
        let icache = !th.ftq.is_empty() && th.iblock_until.is_some_and(|r| r > now);
        let s = &mut ctx.stats.stalls;
        let bucket = if dcache {
            &mut s.dcache_miss
        } else if icache {
            &mut s.icache_miss
        } else {
            &mut s.residual
        };
        bucket[tid] += skip;
    }
    ctx.cycle += skip;
    ctx.stats.cycles = ctx.cycle - ctx.stats_since;
    ctx.stats.ff_cycles += skip;
    skip
}
