//! The decoupled front end: the prediction stage (engine → FTQs) and the
//! fetch stage (FTQs → I-cache → fetch buffer), including both of the
//! paper's fetch architectures (1.X single-port, 2.X dual-port with
//! bank-conflict logic).

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic): stage-protocol invariants; violations must abort the simulation

use smt_isa::{inst_idx, InstClass, MAX_THREADS};
use smt_mem::FetchOutcome;

use crate::config::LongLatencyAction;
use crate::frontend::{BranchInfo, FrontEnd, LINE_BYTES};
use crate::window::InFlightCtl;

use super::sched::{EventHorizon, SkipReason};
use super::{
    BankSet, LatchEntry, PipelineCtx, PipelineStage, STALL_BANK_CONFLICT, STALL_FETCH_STARVED,
    STALL_ICACHE_MISS,
};

/// The prediction stage: serves up to `n` threads per cycle, asking the
/// front-end engine for fetch blocks. The engine appends straight into the
/// served thread's FTQ — each predicted block is written exactly once.
#[derive(Clone, Debug)]
pub(crate) struct PredictStage;

impl PipelineStage for PredictStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let ports = ctx.cfg.fetch_policy.threads_per_cycle as usize;
        let width = ctx.cfg.fetch_policy.width;
        let ftq_depth = ctx.cfg.ftq_depth as usize;
        let gating = ctx.cfg.fetch_policy.long_latency != LongLatencyAction::None;
        let now = ctx.cycle;
        let order = ctx.priorities();
        // Split the borrows by field so the engine can read the thread's
        // program while updating its speculative state and FTQ — no
        // per-thread `Program` clone, no per-cycle block Vec.
        let PipelineCtx {
            frontend,
            threads,
            stats,
            ..
        } = ctx;
        let mut served = 0usize;
        for &tid in order.order() {
            if served == ports {
                break;
            }
            let th = &mut threads[tid];
            let gated = gating && th.mem_stall_until.is_some_and(|until| until > now);
            let depth = th.ftq.len();
            if depth >= ftq_depth || gated {
                continue;
            }
            let pc = th.next_fetch_pc;
            let space = ftq_depth - depth;
            frontend.predict_blocks_into(
                tid,
                pc,
                &mut th.spec,
                th.walker.program(),
                width,
                space,
                &mut th.ftq,
            );
            debug_assert!(th.ftq.len() > depth && th.ftq.len() <= ftq_depth);
            th.next_fetch_pc = th.ftq.back().expect("non-empty").block.next_fetch;
            stats.blocks_predicted += (th.ftq.len() - depth) as u64;
            served += 1;
        }
    }

    /// Prediction acts whenever any thread has FTQ space and is not gated;
    /// a STALL/FLUSH gate is a timer, so its expiry is the stage's event.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        let ftq_depth = ctx.cfg.ftq_depth as usize;
        let now = ctx.cycle;
        for (tid, th) in ctx.threads.iter().enumerate() {
            if th.ftq.len() < ftq_depth && !ctx.gated(tid) {
                ev.act();
                return;
            }
            if ctx.cfg.fetch_policy.long_latency != LongLatencyAction::None {
                if let Some(until) = th.mem_stall_until {
                    if until > now {
                        ev.event(until, SkipReason::PolicyIdle);
                    }
                }
            }
        }
    }
}

/// The fetch stage: drains FTQ heads through the I-cache into the shared
/// fetch buffer, under the policy's port/width budget. The stage carries no
/// scratch: the walker's bulk decode writes straight into the window's
/// payload column ([`Window::payload_slots`](crate::window::Window)).
#[derive(Clone, Debug)]
pub(crate) struct FetchStage;

impl PipelineStage for FetchStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let now = ctx.cycle;
        let ports = ctx.cfg.fetch_policy.threads_per_cycle as usize;
        let mut budget = ctx.cfg.fetch_policy.width;
        let order = ctx.priorities();
        let mut banks_used = BankSet::new();
        let mut delivered_total = 0u32;
        let mut attempted = false;
        let mut buffer_full_seen = false;
        let mut port = 0usize;
        let n = ctx.threads.len();
        // Threads whose fetch is blocked behind an I-cache miss observe an
        // icache-miss stall this cycle (the miss was taken earlier).
        for tid in 0..n {
            let th = &ctx.threads[tid];
            if !th.ftq.is_empty() && th.iblock_until.is_some_and(|r| r > now) {
                ctx.note_stall(tid, STALL_ICACHE_MISS);
            }
        }
        let mut fetch_served = [false; MAX_THREADS];
        for &tid in order.order() {
            if port == ports || budget == 0 {
                break;
            }
            if !ctx.threads[tid].fetch_eligible(now) || ctx.gated(tid) {
                continue;
            }
            if ctx.fetch_buffer.len() >= ctx.cfg.fetch_buffer as usize {
                buffer_full_seen = true;
                break;
            }
            let is_second = port > 0;
            let (got, did_attempt) = fetch_from(ctx, tid, budget, &mut banks_used, is_second);
            attempted |= did_attempt;
            delivered_total += got;
            budget -= got;
            fetch_served[tid] = true;
            port += 1;
        }
        // Threads that were fetch-ready and ungated but got no port this
        // cycle were starved by the fetch policy (or the full buffer).
        for (tid, &served) in fetch_served.iter().enumerate().take(n) {
            if !served && ctx.threads[tid].fetch_eligible(now) && !ctx.gated(tid) {
                ctx.note_stall(tid, STALL_FETCH_STARVED);
            }
        }
        if attempted {
            ctx.stats.fetch_cycles += 1;
            ctx.stats.distribution.record(delivered_total);
        }
        if buffer_full_seen {
            ctx.stats.fetch_buffer_stalls += 1;
        }
    }

    /// Fetch acts whenever an eligible, ungated thread meets a fetch buffer
    /// with room (even a miss or MSHR-full retry touches the I-cache). Its
    /// events are I-block miss returns; its standing stall bits mirror the
    /// tick exactly: icache-miss for blocked FTQ heads, fetch-starved for
    /// every eligible thread when only the full buffer blocks them (in which
    /// case the per-cycle buffer-full counter runs too).
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        let now = ctx.cycle;
        let room = ctx.fetch_buffer.len() < ctx.cfg.fetch_buffer as usize;
        let mut starved = false;
        for (tid, th) in ctx.threads.iter().enumerate() {
            if !th.ftq.is_empty() {
                if let Some(ready) = th.iblock_until {
                    if ready > now {
                        ev.flag(tid, STALL_ICACHE_MISS);
                        ev.event(ready, SkipReason::FtqWait);
                    }
                }
            }
            if th.fetch_eligible(now) && !ctx.gated(tid) {
                if room {
                    ev.act();
                    return;
                }
                starved = true;
                ev.flag(tid, STALL_FETCH_STARVED);
            }
        }
        if starved {
            ev.buffer_full();
        }
    }
}

/// Fetches up to `budget` instructions from `tid`'s FTQ head.
///
/// Returns `(instructions delivered, whether an I-cache access was
/// attempted)`.
fn fetch_from(
    ctx: &mut PipelineCtx,
    tid: usize,
    budget: u32,
    banks_used: &mut BankSet,
    second_port: bool,
) -> (u32, bool) {
    let now = ctx.cycle;
    let mut budget = budget;
    let mut delivered = 0u32;
    let mut attempted = false;
    let mut current_group: Option<u64> = None;
    // A port normally consumes (part of) one FTQ entry per cycle — one
    // I-cache access. Blocks sharing a trace-cache line are the
    // exception: the trace storage supplies them all in one access.
    loop {
        let room = ctx.cfg.fetch_buffer as usize - ctx.fetch_buffer.len();
        let (group, start_pc, remaining) = {
            let th = &ctx.threads[tid];
            let Some(head) = th.ftq.front() else {
                break;
            };
            (
                head.trace_group,
                head.block.start.add_insts(th.ftq_consumed as u64),
                head.block.len - th.ftq_consumed,
            )
        };
        if delivered > 0 && (group.is_none() || group != current_group) {
            break;
        }
        current_group = group;
        let is_trace = group.is_some();
        let want = budget.min(remaining).min(inst_idx(room));
        if want == 0 {
            break;
        }

        let mut allowed = want;
        if is_trace {
            // Trace-cache hit: instructions come from the trace line,
            // no conventional I-cache access or bank constraint.
            attempted = true;
        } else {
            // Touch every I-cache line the delivery spans (at most a
            // few: the per-cycle budget is ≤ 16 instructions = one line).
            let first_line = start_pc.line(LINE_BYTES);
            let last_line = start_pc.add_insts(want as u64 - 1).line(LINE_BYTES);
            let mut line = first_line;
            loop {
                let insts_before_line = if line.raw() <= start_pc.raw() {
                    0
                } else {
                    inst_idx((line.raw() - start_pc.raw()) / 4)
                };
                let bank = line.bank(LINE_BYTES, 8);
                if second_port && banks_used.contains(bank) {
                    // Figure 3's bank-conflict logic: the lower-priority
                    // thread loses the conflicting access this cycle.
                    ctx.stats.bank_conflicts += 1;
                    ctx.note_stall(tid, STALL_BANK_CONFLICT);
                    allowed = allowed.min(insts_before_line);
                    break;
                }
                attempted = true;
                match ctx.mem.fetch(line, now) {
                    FetchOutcome::Hit => {
                        banks_used.push(bank);
                    }
                    FetchOutcome::Miss { ready } => {
                        ctx.threads[tid].iblock_until = Some(ready);
                        ctx.note_stall(tid, STALL_ICACHE_MISS);
                        allowed = allowed.min(insts_before_line);
                        break;
                    }
                    FetchOutcome::Stall => {
                        allowed = allowed.min(insts_before_line);
                        break;
                    }
                }
                if line == last_line {
                    break;
                }
                line += LINE_BYTES;
            }
        }

        if allowed == 0 {
            break;
        }
        deliver(ctx, tid, allowed);
        delivered += allowed;
        budget -= allowed;
        // Continue across FTQ entries only within one trace line.
        if !is_trace || budget == 0 {
            break;
        }
        // If the thread diverged mid-trace, stop early; the remaining
        // entries are squashed territory.
        if ctx.threads[tid].diverged {
            break;
        }
    }
    (delivered, attempted)
}

/// Delivers `n` instructions from `tid`'s FTQ head into the window and
/// the fetch buffer, consulting the oracle walker.
///
/// The on-oracle prefix of the delivery is decoded in bulk
/// ([`next_block`](smt_workloads::Walker::next_block)) straight into the
/// window's payload column — the very slots the pushes below claim — so a
/// delivered instruction is written once and never staged through scratch.
/// The walker stops the bulk run after the first redirecting instruction,
/// which is exactly where this loop either finishes the block (correctly
/// predicted end branch) or detects a misprediction and diverges — so the
/// per-position results are identical to single-stepping.
fn deliver(ctx: &mut PipelineCtx, tid: usize, n: u32) {
    let now = ctx.cycle;
    let th = &mut ctx.threads[tid];
    // Copy out only the block descriptor (a few words); the bulky block
    // checkpoint stays in the FTQ head until a branch needs it recorded.
    let consumed = th.ftq_consumed;
    let block = th.ftq.front().expect("caller checked").block;
    let first_pc = block.start.add_insts(u64::from(consumed));
    let first_seq = th.next_seq;
    let bulk = if !th.diverged && th.walker.pc() == first_pc {
        // The n payload slots are dead (the window has room for n pushes),
        // but may wrap the ring. Continue into the wrapped half only if the
        // first half filled completely without ending at a redirecting
        // instruction — exactly the conditions under which one contiguous
        // `next_block` call would have kept decoding.
        let (a, b) = th.window.payload_slots(first_seq, n as usize);
        let k = th.walker.next_block(a, a.len());
        if k == a.len() && !b.is_empty() && a[k - 1].next_pc == a[k - 1].pc.add_insts(1) {
            k + th.walker.next_block(b, b.len())
        } else {
            k
        }
    } else {
        0
    };
    for i in 0..n {
        let idx_in_block = consumed + i;
        let pc = block.start.add_insts(u64::from(idx_in_block));
        let is_last = idx_in_block == block.len - 1;
        let is_end = is_last && block.end_branch.is_some();
        let spec_next = if is_last {
            block.next_fetch
        } else {
            pc.add_insts(1)
        };

        let seq = th.next_seq;
        let bulk_hit = (i as usize) < bulk;
        let on_oracle = bulk_hit || (!th.diverged && th.walker.pc() == pc);
        let di = if bulk_hit {
            // The bulk decode already wrote this instruction in place.
            debug_assert_eq!(th.window.di(seq).pc, pc);
            *th.window.di(seq)
        } else if on_oracle {
            let di = th.walker.next_inst();
            th.window.set_di(seq, di);
            di
        } else {
            let (spec_taken, spec_target) = if is_end {
                let eb = block.end_branch.expect("is_end");
                (eb.predicted_taken, eb.predicted_target)
            } else {
                (false, smt_isa::Addr::NULL)
            };
            let di = th.walker.wrong_path(pc, spec_taken, spec_target);
            th.window.set_di(seq, di);
            di
        };

        let mut mispredicted = false;
        if on_oracle && di.next_pc != spec_next {
            mispredicted = true;
            th.diverged = true;
            debug_assert!(th.pending_redirect.is_none());
            th.pending_redirect = Some(seq);
            ctx.stats.control_mispredicts += 1;
        }
        // Misfetches a decoder can catch without executing: a direct
        // unconditional branch whose (static) target disagrees with the
        // speculative path, or a "branch" slot holding a non-branch.
        let decode_redirect = mispredicted
            && (matches!(
                di.class,
                InstClass::Branch(smt_isa::BranchKind::Jump)
                    | InstClass::Branch(smt_isa::BranchKind::Call)
            ) || !di.class.is_branch());

        let binfo = if di.class.is_branch() || mispredicted {
            Some(BranchInfo {
                block_start: block.start,
                is_end,
                spec_taken: if is_end {
                    block.end_branch.map(|e| e.predicted_taken).unwrap_or(false)
                } else {
                    false
                },
                spec_next,
                mispredicted,
                decode_redirect,
            })
        } else {
            None
        };

        th.next_seq += 1;
        // The checkpoint rides in the thread's seq-indexed ring, not the
        // window entry, so the window slot stays small (see `meta_ring`).
        if binfo.is_some() {
            th.set_meta_from_ftq_head(seq);
        }
        if di.wrong_path {
            ctx.stats.fetched_wrong_path += 1;
        }
        ctx.stats.fetched += 1;
        th.window
            .push(InFlightCtl::at_fetch(seq, now, &di, binfo.as_ref()), binfo);
        ctx.fetch_buffer.push_back(LatchEntry {
            tid,
            seq,
            entered: now,
        });
    }
    th.ftq_consumed += n;
    if th.ftq_consumed == block.len {
        th.ftq.pop_front();
        th.ftq_consumed = 0;
    }
    // Each delivered instruction occupies one fetch-buffer slot.
    ctx.preissue[tid] += n;
}
