//! The commit stage: in-order retirement, predictor training (resolve- and
//! commit-time), stream bookkeeping, and the trace-cache fill unit.

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic): stage-protocol invariants; violations must abort the simulation

use smt_bpred::ObservedStream;
use smt_isa::{InstClass, RegClass};

use crate::frontend::FrontEnd;

use super::sched::{EventHorizon, SkipReason};
use super::{PipelineCtx, PipelineStage, STALL_DCACHE_MISS};

/// The commit stage: retires completed instructions in order, round-robin
/// across threads under the shared commit width.
#[derive(Clone, Debug)]
pub(crate) struct CommitStage;

impl PipelineStage for CommitStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let now = ctx.cycle;
        let n = ctx.threads.len();
        let mut budget = ctx.cfg.commit_width;
        let start = (ctx.cycle as usize) % n;
        // Only the trace cache's fill unit consumes committed instructions;
        // skip the per-instruction buffer shuffle entirely for the others.
        let trace_fill_active = matches!(ctx.frontend, crate::frontend::AnyFrontEnd::TraceCache(_));
        for k in 0..n {
            let tid = (start + k) % n;
            while budget > 0 {
                let committable = {
                    let th = &ctx.threads[tid];
                    th.window
                        .front()
                        .map(|c| c.dispatched() && c.completed(now))
                        .unwrap_or(false)
                };
                if !committable {
                    break;
                }
                let ctl = ctx.threads[tid].window.pop_front().expect("checked");
                let seq = ctl.seq;
                // Popped this very cycle; fetch runs after commit within the
                // tick, so the payload columns still hold this seq's data.
                let di = *ctx.threads[tid].window.di(seq);
                let binfo = ctx.threads[tid].window.binfo(seq);
                debug_assert!(!ctl.wrong_path(), "wrong-path instruction reached commit");
                ctx.rob_occ -= 1;
                if let Some(prev) = ctl.prev_phys {
                    let dest = di.dest.expect("prev implies dest");
                    match dest.class() {
                        RegClass::Int => ctx.free_int.push(prev),
                        RegClass::Fp => ctx.free_fp.push(prev),
                    }
                }
                ctx.stats.committed[tid] += 1;
                budget -= 1;

                if di.class == InstClass::Store {
                    let addr = di.mem.expect("stores carry addresses").addr;
                    ctx.mem.store(addr, now);
                }

                // Trace-cache fill unit (no-op for other engines).
                if trace_fill_active {
                    let hist_end = ctx.threads[tid].commit_hist_end;
                    let mut fill = std::mem::take(&mut ctx.threads[tid].trace_fill);
                    ctx.frontend.trace_fill_commit(&mut fill, &di, hist_end);
                    ctx.threads[tid].trace_fill = fill;
                }
                if di.is_cond_branch() && binfo.map(|b| b.is_end).unwrap_or(false) {
                    let th = &mut ctx.threads[tid];
                    th.commit_hist_end = (th.commit_hist_end << 1) | di.taken as u64;
                }

                // Branch training and stream bookkeeping.
                ctx.threads[tid].commit_stream_len += 1;
                if di.is_branch() {
                    if let Some(info) = &binfo {
                        // The slot cannot have been reused: the instruction
                        // left the window this very cycle, and fetch runs
                        // after commit within the tick.
                        let meta_hist = ctx.threads[tid].meta(seq).hist;
                        ctx.frontend.train_resolve(info, meta_hist, &di);
                        if di.is_cond_branch() {
                            ctx.stats.cond_branches += 1;
                            if info.spec_taken != di.taken {
                                ctx.stats.cond_mispredicts += 1;
                            }
                            if info.is_end {
                                let bits = meta_hist.len().min(16);
                                let mask = (1u64 << bits) - 1;
                                if meta_hist.bits() & mask != ctx.threads[tid].commit_hist & mask {
                                    ctx.stats.hist_mismatches += 1;
                                    // Counter check first: the env lookup
                                    // (which may allocate) then runs at most
                                    // six times per measurement window.
                                    if ctx.stats.hist_mismatches <= 6
                                        // lint:allow(no-env-in-core): debug-only stderr tracing; results never see it
                                        && std::env::var_os("SMT_DEBUG_HIST").is_some()
                                    {
                                        eprintln!(
                                            "hist mismatch @cycle {} t{} pc {} ckpt {:016b} arch {:016b} taken {} spec_taken {}",
                                            now, tid, di.pc,
                                            meta_hist.bits() & mask,
                                            ctx.threads[tid].commit_hist & mask,
                                            di.taken, info.spec_taken
                                        );
                                    }
                                }
                            }
                        }
                    }
                    if di.is_cond_branch() {
                        let th = &mut ctx.threads[tid];
                        th.commit_hist = (th.commit_hist << 1) | di.taken as u64;
                    }
                    if di.taken {
                        let kind = di.class.branch_kind().expect("branch");
                        let (start_addr, path, len) = {
                            let th = &ctx.threads[tid];
                            (th.commit_stream_start, th.cpath, th.commit_stream_len)
                        };
                        ctx.frontend.train_commit(
                            start_addr,
                            &path,
                            ObservedStream {
                                len,
                                kind,
                                target: di.next_pc,
                            },
                        );
                        let th = &mut ctx.threads[tid];
                        th.cpath.push(start_addr);
                        th.commit_stream_start = di.next_pc;
                        th.commit_stream_len = 0;
                    }
                }
            }
            if budget == 0 {
                break;
            }
        }
        // Threads whose ROB head is an issued load still waiting on the
        // data cache observe a dcache-miss stall this cycle (short-latency
        // hits complete within a cycle or two, so the bucket is dominated
        // by real misses).
        for tid in 0..n {
            let blocked = ctx.threads[tid]
                .window
                .front()
                .map(|c| c.dispatched() && c.issued() && !c.completed(now) && c.is_load())
                .unwrap_or(false);
            if blocked {
                ctx.note_stall(tid, STALL_DCACHE_MISS);
            }
        }
    }

    /// Commit acts when any ROB head is dispatched and complete. An issued
    /// but incomplete head is a completion timer — the stage's event — and
    /// an issued load head also records the per-cycle dcache-miss bit, the
    /// same observation the tick's trailing loop makes. Heads that are not
    /// yet issued (or dispatched) are another stage's problem.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        let now = ctx.cycle;
        for (tid, th) in ctx.threads.iter().enumerate() {
            let Some(head) = th.window.front() else {
                continue;
            };
            if !head.dispatched() {
                continue;
            }
            if head.completed(now) {
                ev.act();
                return;
            }
            if head.issued() {
                let reason = if head.is_load() {
                    ev.flag(tid, STALL_DCACHE_MISS);
                    SkipReason::MemWait
                } else {
                    SkipReason::IssueWait
                };
                ev.event(head.done_at, reason);
            }
        }
    }
}
