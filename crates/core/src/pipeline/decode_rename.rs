//! The in-order middle of the pipeline: decode, rename, and dispatch.
//!
//! Decode and rename are pure latency latches (entries spend a cycle in
//! each); dispatch performs the real work — register renaming and resource
//! acquisition (ROB slot, issue-queue slot, physical register) — stalling
//! the owning thread in order when any resource is exhausted.

// The pipeline stages use `expect` to assert invariants that the stage
// protocol itself guarantees (e.g. "caller checked" FTQ heads, rename maps
// populated at dispatch). Construction is fallible and validated; once
// built, these are genuine internal invariants, not input errors.
// lint:allow-file(no-panic): stage-protocol invariants; violations must abort the simulation

use smt_isa::{RegClass, MAX_THREADS};

use super::sched::EventHorizon;
use super::{IqEntry, PipelineCtx, PipelineStage, STALL_ROB_FULL};

/// The decode latch: moves up to `decode_width` aged entries from the fetch
/// buffer into the decode latch.
#[derive(Clone, Debug)]
pub(crate) struct DecodeStage;

impl PipelineStage for DecodeStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let now = ctx.cycle;
        let width = ctx.cfg.decode_width as usize;
        let mut moved = 0;
        while moved < width
            && ctx.decode_latch.len() < width
            && ctx.fetch_buffer.front().is_some_and(|e| e.entered < now)
        {
            let mut e = ctx.fetch_buffer.pop_front().expect("checked");
            e.entered = now;
            ctx.decode_latch.push_back(e);
            moved += 1;
        }
    }

    /// A pure latch acts exactly when an aged entry meets downstream room;
    /// between steps every queued entry is aged, so this is a length check.
    /// Unblocking needs another stage to act — no self-scheduled events.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        if ctx.decode_latch.len() < ctx.cfg.decode_width as usize && !ctx.fetch_buffer.is_empty() {
            debug_assert!(ctx
                .fetch_buffer
                .front()
                .is_some_and(|e| e.entered < ctx.cycle));
            ev.act();
        }
    }
}

/// The rename latch: moves up to `decode_width` aged entries from the
/// decode latch into the rename latch.
#[derive(Clone, Debug)]
pub(crate) struct RenameStage;

impl PipelineStage for RenameStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let now = ctx.cycle;
        let width = ctx.cfg.decode_width as usize;
        let mut moved = 0;
        while moved < width
            && ctx.rename_latch.len() < width
            && ctx.decode_latch.front().is_some_and(|e| e.entered < now)
        {
            let mut e = ctx.decode_latch.pop_front().expect("checked");
            e.entered = now;
            ctx.rename_latch.push_back(e);
            moved += 1;
        }
    }

    /// Same latch rule as decode, one stage later.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        if ctx.rename_latch.len() < ctx.cfg.decode_width as usize && !ctx.decode_latch.is_empty() {
            debug_assert!(ctx
                .decode_latch
                .front()
                .is_some_and(|e| e.entered < ctx.cycle));
            ev.act();
        }
    }
}

/// The dispatch stage: renames registers and moves instructions from the
/// rename latch into the issue queues, in order per thread, bounded by the
/// shared ROB, the per-queue capacities, and the free physical registers.
#[derive(Clone, Debug)]
pub(crate) struct DispatchStage {
    /// Reusable scratch holding the entries kept in the latch this cycle
    /// (stalled or not yet aged). Capacity never grows past the latch bound.
    scratch: Vec<super::LatchEntry>,
}

impl DispatchStage {
    pub(crate) fn new(decode_width: usize) -> Self {
        DispatchStage {
            scratch: Vec::with_capacity(decode_width),
        }
    }
}

impl PipelineStage for DispatchStage {
    fn tick(&mut self, ctx: &mut PipelineCtx) {
        let now = ctx.cycle;
        let mut budget = ctx.cfg.decode_width;
        let mut stalled = [false; MAX_THREADS];
        // Drain the latch through the persistent scratch buffer and refill
        // it with the kept entries (same order), so the per-cycle filter
        // allocates nothing.
        let kept = &mut self.scratch;
        debug_assert!(kept.is_empty());
        while let Some(e) = ctx.rename_latch.pop_front() {
            if budget == 0 || stalled[e.tid] || e.entered >= now {
                kept.push(e);
                continue;
            }
            // The window entry may have been squashed since renaming began.
            // Liveness comes from the control column; the payload column is
            // only read once the seq is known live.
            let Some((class, dest, srcs, mem_addr, wrong_path)) = ({
                let w = &ctx.threads[e.tid].window;
                w.ctl(e.seq).map(|_| {
                    let di = w.di(e.seq);
                    (
                        di.class,
                        di.dest,
                        di.srcs,
                        di.mem.map(|m| m.addr),
                        di.wrong_path,
                    )
                })
            }) else {
                // The entry evaporates: it left the pre-issue structures
                // without moving to an issue queue.
                ctx.preissue[e.tid] -= 1;
                continue;
            };
            // Resource checks: shared ROB, issue-queue slot, physical
            // register.
            if ctx.rob_occ >= ctx.cfg.rob_size {
                ctx.note_stall(e.tid, STALL_ROB_FULL);
                stalled[e.tid] = true;
                kept.push(e);
                continue;
            }
            let (qlen, qcap) = match PipelineCtx::queue_for(class) {
                0 => (ctx.iq_int.len(), ctx.cfg.iq_int as usize),
                1 => (ctx.iq_ls.len(), ctx.cfg.iq_ls as usize),
                _ => (ctx.iq_fp.len(), ctx.cfg.iq_fp as usize),
            };
            if qlen >= qcap {
                stalled[e.tid] = true;
                kept.push(e);
                continue;
            }
            let need_reg = dest.map(|d| d.class());
            let have_reg = match need_reg {
                Some(RegClass::Int) => !ctx.free_int.is_empty(),
                Some(RegClass::Fp) => !ctx.free_fp.is_empty(),
                None => true,
            };
            if !have_reg {
                stalled[e.tid] = true;
                kept.push(e);
                continue;
            }

            // Rename: sources first, then the destination.
            let map = &ctx.threads[e.tid].rename_map;
            let src_phys = [
                srcs[0].map(|r| map[r.flat_index()]),
                srcs[1].map(|r| map[r.flat_index()]),
            ];
            let (phys_dest, prev_phys) = match dest {
                Some(d) => {
                    let new = match d.class() {
                        RegClass::Int => ctx.free_int.pop().expect("checked"),
                        RegClass::Fp => ctx.free_fp.pop().expect("checked"),
                    };
                    ctx.ready_at[new as usize] = u64::MAX;
                    let prev = ctx.threads[e.tid].rename_map[d.flat_index()];
                    ctx.threads[e.tid].rename_map[d.flat_index()] = new;
                    (Some(new), Some(prev))
                }
                None => (None, None),
            };
            {
                let ctl = ctx.threads[e.tid].window.ctl_mut(e.seq).expect("present");
                ctl.set_dispatched();
                ctl.phys_dest = phys_dest;
                ctl.prev_phys = prev_phys;
                ctl.src_phys = src_phys;
            }
            ctx.rob_occ += 1;
            let iq = IqEntry {
                tid: e.tid,
                seq: e.seq,
                entered: now,
                // Entries age one cycle before they can issue.
                wake: now + 1,
                src_phys,
                class,
                wrong_path,
                mem_addr,
            };
            match PipelineCtx::queue_for(class) {
                0 => ctx.iq_int.push(iq),
                1 => ctx.iq_ls.push(iq),
                _ => ctx.iq_fp.push(iq),
            }
            budget -= 1;
        }
        ctx.rename_latch.extend(kept.drain(..));
    }

    /// Replays the tick's resource walk without acquiring anything: the
    /// first latch entry that would dispatch (or evaporate) is an act; a
    /// thread blocked by the full shared ROB records the per-cycle ROB
    /// stall bit. Queue slots, registers and ROB space are only freed by
    /// other stages acting, so dispatch reports no self-scheduled events.
    fn horizon(&self, ctx: &PipelineCtx, ev: &mut EventHorizon) {
        let mut stalled = [false; MAX_THREADS];
        for e in &ctx.rename_latch {
            if stalled[e.tid] {
                continue;
            }
            debug_assert!(e.entered < ctx.cycle, "latch entries age between steps");
            let w = &ctx.threads[e.tid].window;
            if w.ctl(e.seq).is_none() {
                // A squashed entry would evaporate (mutating the ICOUNT
                // bookkeeping): that is an act.
                ev.act();
                return;
            }
            let di = w.di(e.seq);
            if ctx.rob_occ >= ctx.cfg.rob_size {
                ev.flag(e.tid, STALL_ROB_FULL);
                stalled[e.tid] = true;
                continue;
            }
            let (qlen, qcap) = match PipelineCtx::queue_for(di.class) {
                0 => (ctx.iq_int.len(), ctx.cfg.iq_int as usize),
                1 => (ctx.iq_ls.len(), ctx.cfg.iq_ls as usize),
                _ => (ctx.iq_fp.len(), ctx.cfg.iq_fp as usize),
            };
            if qlen >= qcap {
                stalled[e.tid] = true;
                continue;
            }
            let have_reg = match di.dest.map(|d| d.class()) {
                Some(RegClass::Int) => !ctx.free_int.is_empty(),
                Some(RegClass::Fp) => !ctx.free_fp.is_empty(),
                None => true,
            };
            if !have_reg {
                stalled[e.tid] = true;
                continue;
            }
            ev.act();
            return;
        }
    }
}
