//! Command-line client for the sweep daemon.
//!
//! ```text
//! smt-client [--addr HOST:PORT] [--wait] <command>
//!
//! commands:
//!   --ping                         liveness probe
//!   --stats                        print both caches' counters
//!   --shutdown                     stop the daemon
//!   --figure5                      submit the paper's figure-5 matrix
//!   --workloads A,B --engines E,F --policies P,Q
//!                                  submit a custom matrix
//!
//! job options:
//!   --smoke                        smoke-test run length (2k/10k cycles)
//!   --warmup N / --measure N       explicit run length
//!   --jobs N                       daemon-side worker override
//!   --expect-hits-at-least PCT     exit 1 if the hit rate is below PCT
//! ```
//!
//! `--wait` retries the connection for a few seconds, for scripts that
//! start the daemon and immediately talk to it.

use std::process::exit;
use std::time::Duration;

use smt_experiments::RunLength;
use smt_serve::{Client, MatrixRequest};

fn usage() -> ! {
    eprintln!(
        "usage: smt-client [--addr HOST:PORT] [--wait] \
         (--ping | --stats | --shutdown | --figure5 | \
         --workloads A,B --engines E,F --policies P,Q) \
         [--smoke] [--warmup N] [--measure N] [--jobs N] \
         [--expect-hits-at-least PCT]"
    );
    exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("smt-client: {msg}");
    exit(1);
}

#[derive(PartialEq)]
enum Command {
    Ping,
    Stats,
    Shutdown,
    Job,
}

fn main() {
    let mut addr = "127.0.0.1:4004".to_string();
    let mut wait = false;
    let mut command = None;
    let mut figure5 = false;
    let mut workloads = Vec::new();
    let mut engines = Vec::new();
    let mut policies = Vec::new();
    let mut len = RunLength::from_env();
    let mut jobs = None;
    let mut expect_hits_pct = None;

    let mut set_command = |c: Command| {
        if command.replace(c).is_some() {
            usage();
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let list = |v: String| -> Vec<String> {
            v.split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.to_string())
                .collect()
        };
        let num = |v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| fail(format!("{v:?} is not a number")))
        };
        match arg.as_str() {
            "--addr" => addr = value(),
            "--wait" => wait = true,
            "--ping" => set_command(Command::Ping),
            "--stats" => set_command(Command::Stats),
            "--shutdown" => set_command(Command::Shutdown),
            "--figure5" => {
                figure5 = true;
                set_command(Command::Job);
            }
            "--workloads" => {
                workloads = list(value());
                set_command(Command::Job);
            }
            "--engines" => engines = list(value()),
            "--policies" => policies = list(value()),
            "--smoke" => len = RunLength::SMOKE,
            "--warmup" => len.warmup_cycles = num(value()),
            "--measure" => len.measure_cycles = num(value()),
            "--jobs" => {
                jobs = Some(
                    usize::try_from(num(value())).unwrap_or_else(|_| fail("jobs out of range")),
                )
            }
            "--expect-hits-at-least" => expect_hits_pct = Some(num(value())),
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };

    let mut client = connect(&addr, wait);
    match command {
        Command::Ping => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("PONG from {addr}");
        }
        Command::Stats => {
            let s = client.stats().unwrap_or_else(|e| fail(e));
            println!(
                "memo cache: {} / {} entries, {} hits, {} misses, {} evictions",
                s.memo.len,
                s.memo.cap,
                s.memo.counters.hits,
                s.memo.counters.misses,
                s.memo.counters.evictions
            );
            println!(
                "warm cache: {} / {} entries, {} hits, {} misses, {} evictions",
                s.warm.len,
                s.warm.cap,
                s.warm.counters.hits,
                s.warm.counters.misses,
                s.warm.counters.evictions
            );
        }
        Command::Shutdown => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("daemon at {addr} acknowledged shutdown");
        }
        Command::Job => {
            let mut req = if figure5 {
                MatrixRequest::figure5(len)
            } else {
                MatrixRequest {
                    workloads,
                    engines,
                    policies,
                    warmup_cycles: len.warmup_cycles,
                    measure_cycles: len.measure_cycles,
                    jobs: None,
                }
            };
            req.jobs = jobs;
            let job = client.submit(&req).unwrap_or_else(|e| fail(e));
            for (result, outcome) in job.results.iter().zip(&job.outcomes) {
                println!(
                    "{:8} {:12} {:16} {:4}  IPC {:.3}  IPFC {:.3}",
                    result.workload, result.engine, result.policy, outcome, result.ipc, result.ipfc
                );
            }
            let s = job.summary;
            println!(
                "{} cells: {} hits, {} misses, {} evictions, {} ms on the daemon",
                s.cells, s.hits, s.misses, s.evictions, s.wall_ms
            );
            if let Some(pct) = expect_hits_pct {
                let got = 100 * job.hits() / job.results.len().max(1);
                if (got as u64) < pct {
                    fail(format!("hit rate {got}% below required {pct}%"));
                }
                println!("hit rate {got}% meets required {pct}%");
            }
        }
    }
}

/// Connects, optionally retrying for a few seconds while the daemon binds.
fn connect(addr: &str, wait: bool) -> Client {
    let attempts = if wait { 100 } else { 1 };
    let mut last = None;
    for _ in 0..attempts {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) => last = Some(e),
        }
        if wait {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    match last {
        Some(e) => fail(format!("cannot connect to {addr}: {e}")),
        None => fail(format!("cannot connect to {addr}")),
    }
}
