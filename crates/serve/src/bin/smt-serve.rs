//! The sweep daemon binary.
//!
//! ```text
//! smt-serve [--addr HOST:PORT] [--jobs N] [--memo-dir PATH]
//! ```
//!
//! Binds the address (default `127.0.0.1:4004`), prints the bound address
//! on stdout (`--addr 127.0.0.1:0` picks an ephemeral port), and serves
//! until a client sends `SHUTDOWN`. `--memo-dir` enables the on-disk memo
//! layer so results survive daemon restarts.

use std::process::exit;

use smt_experiments::Jobs;
use smt_serve::Server;

fn usage() -> ! {
    eprintln!("usage: smt-serve [--addr HOST:PORT] [--jobs N] [--memo-dir PATH]");
    exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:4004".to_string();
    let mut jobs = Jobs::from_env().unwrap_or_else(|e| {
        eprintln!("smt-serve: {e}");
        exit(2);
    });
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--jobs" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => match Jobs::new(n) {
                    Ok(j) => jobs = j,
                    Err(e) => {
                        eprintln!("smt-serve: {e}");
                        exit(2);
                    }
                },
                _ => usage(),
            },
            "--memo-dir" => match args.next() {
                Some(dir) => {
                    if let Err(e) = smt_experiments::set_memo_dir(Some(dir.into())) {
                        eprintln!("smt-serve: {e}");
                        exit(2);
                    }
                }
                None => usage(),
            },
            _ => usage(),
        }
    }
    let server = match Server::bind(&addr, jobs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smt-serve: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!("smt-serve listening on {}", server.addr());
    server.wait();
    println!("smt-serve: shutdown complete");
}
