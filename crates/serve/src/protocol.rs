//! The hand-rolled, newline-delimited request/response protocol
//! (DESIGN.md §16).
//!
//! One request or response per line. Fields are **tab**-separated — the
//! engine vocabulary contains a space (`"trace cache"`), so space cannot
//! delimit — and list-valued fields are comma-joined (no vocabulary string
//! contains a comma). `RunResult` payloads ride inside one tab field using
//! the `|`-separated bit-exact codec from `smt_experiments::memo`, so a
//! decoded result is byte-identical to the daemon's.
//!
//! ## Grammar
//!
//! Requests:
//!
//! ```text
//! PING
//! STATS
//! SHUTDOWN
//! RUN \t workloads=<w,...> \t engines=<e,...> \t policies=<p,...>
//!     \t warmup=<u64> \t measure=<u64> [\t jobs=<usize>]
//! ```
//!
//! Responses (to `RUN`: one `OK`, then `RESULT` lines in **completion**
//! order as cells finish, then `SUMMARY`, then `END`):
//!
//! ```text
//! PONG
//! BYE
//! STATS \t memo_len=… \t memo_cap=… \t memo_hits=… \t memo_misses=…
//!       \t memo_evictions=… \t warm_len=… \t warm_cap=… \t warm_hits=…
//!       \t warm_misses=… \t warm_evictions=…
//! OK \t cells=<n>
//! RESULT \t <cell index> \t <hit|miss> \t <encoded RunResult>
//! SUMMARY \t cells=<n> \t hits=<n> \t misses=<n> \t evictions=<n> \t wall_ms=<n>
//! END
//! ERR \t <code> \t <message>
//! ```
//!
//! Error codes: `E_PARSE` (malformed line), `E_VOCAB` (unknown workload,
//! engine or policy name), `E_CONFIG` (the request's configuration fails
//! semantic validation), `E_JOBS` (bad worker count), `E_TOO_LARGE` (cell
//! count above [`MAX_CELLS`]).

use std::fmt;
use std::str::FromStr;

use smt_core::{FetchEngineKind, FetchPolicy, SimConfig};
use smt_experiments::{
    decode_result, encode_result, CacheOutcome, CacheSnapshot, Jobs, RunLength, RunResult,
};
use smt_workloads::Workload;

/// Upper bound on a single request's cell count: a fat-fingered cross
/// product should be an error, not a denial of service.
pub const MAX_CELLS: usize = 4096;

/// A config-matrix job request: the cross product
/// `workloads × policies × engines` at one run length, all in the existing
/// experiment vocabulary (names as spelled by `Display`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixRequest {
    /// Workload names (e.g. `"4_MIX"`), Table 2 vocabulary.
    pub workloads: Vec<String>,
    /// Engine names (e.g. `"gskew+FTB"`, `"trace cache"`).
    pub engines: Vec<String>,
    /// Policy names in `POLICY[-STALL|-FLUSH].n.X` notation.
    pub policies: Vec<String>,
    /// Warmup cycles per cell.
    pub warmup_cycles: u64,
    /// Measured cycles per cell.
    pub measure_cycles: u64,
    /// Worker-count override; `None` uses the daemon's default.
    pub jobs: Option<usize>,
}

impl MatrixRequest {
    /// The paper's figure-5 matrix (ILP suite × three engines ×
    /// `ICOUNT.1.8`/`ICOUNT.2.8`) at the given run length — 24 cells.
    pub fn figure5(len: RunLength) -> MatrixRequest {
        MatrixRequest {
            workloads: Workload::ilp_suite()
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            engines: FetchEngineKind::all()
                .iter()
                .map(|e| e.to_string())
                .collect(),
            policies: vec!["ICOUNT.1.8".to_string(), "ICOUNT.2.8".to_string()],
            warmup_cycles: len.warmup_cycles,
            measure_cycles: len.measure_cycles,
            jobs: None,
        }
    }

    /// The request's cell count (`workloads × policies × engines`).
    pub fn cells(&self) -> usize {
        self.workloads.len() * self.engines.len() * self.policies.len()
    }

    /// Renders the request as its `RUN` line.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "RUN\tworkloads={}\tengines={}\tpolicies={}\twarmup={}\tmeasure={}",
            self.workloads.join(","),
            self.engines.join(","),
            self.policies.join(","),
            self.warmup_cycles,
            self.measure_cycles,
        );
        if let Some(jobs) = self.jobs {
            line.push_str(&format!("\tjobs={jobs}"));
        }
        line
    }

    /// Resolves the request's names against the experiment vocabulary and
    /// validates every `(workload, policy)` configuration, returning the
    /// concrete matrix the daemon can hand to the memoized sweep.
    pub fn resolve(&self) -> Result<ResolvedMatrix, RequestError> {
        if self.workloads.is_empty() || self.engines.is_empty() || self.policies.is_empty() {
            return Err(RequestError::new(
                "E_PARSE",
                "workloads, engines and policies must each be non-empty",
            ));
        }
        if self.measure_cycles == 0 {
            return Err(RequestError::new("E_PARSE", "measure must be at least 1"));
        }
        if self.cells() > MAX_CELLS {
            return Err(RequestError::new(
                "E_TOO_LARGE",
                format!("{} cells exceeds the {MAX_CELLS}-cell limit", self.cells()),
            ));
        }
        let table2 = Workload::all_table2();
        let mut workloads = Vec::with_capacity(self.workloads.len());
        for name in &self.workloads {
            match table2.iter().find(|w| w.name() == name) {
                Some(w) => workloads.push(w.clone()),
                None => {
                    return Err(RequestError::new(
                        "E_VOCAB",
                        format!("unknown workload {name:?} (Table 2 names only)"),
                    ))
                }
            }
        }
        let mut engines = Vec::with_capacity(self.engines.len());
        for name in &self.engines {
            match FetchEngineKind::from_str(name) {
                Ok(e) => engines.push(e),
                Err(d) => return Err(RequestError::new("E_VOCAB", d.to_string())),
            }
        }
        let mut policies = Vec::with_capacity(self.policies.len());
        for name in &self.policies {
            match FetchPolicy::from_str(name) {
                Ok(p) => policies.push(p),
                Err(d) => return Err(RequestError::new("E_VOCAB", d.to_string())),
            }
        }
        let jobs = match self.jobs {
            None => None,
            Some(n) => match Jobs::new(n) {
                Ok(j) => Some(j),
                Err(e) => return Err(RequestError::new("E_JOBS", e.to_string())),
            },
        };
        // Semantic validation before any cycle is simulated: the daemon
        // must reply ERR with the stable diagnostic codes, never exit the
        // process the way the CLI preflight does.
        for w in &workloads {
            for &p in &policies {
                let cfg = SimConfig {
                    fetch_policy: p,
                    ..SimConfig::default()
                };
                let diags = cfg.validate_for_threads(w.num_threads());
                if smt_core::has_errors(&diags) {
                    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                    return Err(RequestError::new(
                        "E_CONFIG",
                        format!("{} / {}: {}", w.name(), p, rendered.join("; ")),
                    ));
                }
            }
        }
        Ok(ResolvedMatrix {
            workloads,
            engines,
            policies,
            len: RunLength {
                warmup_cycles: self.warmup_cycles,
                measure_cycles: self.measure_cycles,
            },
            jobs,
        })
    }
}

/// A [`MatrixRequest`] resolved against the vocabulary: concrete workloads,
/// engines, policies, run length and validated worker count.
#[derive(Clone, Debug)]
pub struct ResolvedMatrix {
    /// The workloads, Table 2 order preserved from the request.
    pub workloads: Vec<Workload>,
    /// The engines.
    pub engines: Vec<FetchEngineKind>,
    /// The policies.
    pub policies: Vec<FetchPolicy>,
    /// Warmup and measured cycles per cell.
    pub len: RunLength,
    /// Validated worker-count override, if the request carried one.
    pub jobs: Option<Jobs>,
}

/// Why a request was rejected: a stable machine-readable code plus a
/// human-readable message (sanitized onto one line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// Stable error code (`E_PARSE`, `E_VOCAB`, `E_CONFIG`, `E_JOBS`,
    /// `E_TOO_LARGE`).
    pub code: String,
    /// One-line description.
    pub message: String,
}

impl RequestError {
    /// A new error with `message` flattened onto one line (protocol lines
    /// must contain no newlines, and `ERR`'s message field no tabs).
    pub fn new(code: &str, message: impl Into<String>) -> RequestError {
        RequestError {
            code: code.to_string(),
            message: sanitize(&message.into()),
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Flattens arbitrary text into one tab-free protocol field.
fn sanitize(s: &str) -> String {
    s.replace(['\n', '\r', '\t'], " ")
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache-occupancy and counter report.
    Stats,
    /// Run a config matrix.
    Run(MatrixRequest),
    /// Stop the daemon (acknowledged with `BYE`).
    Shutdown,
}

impl Request {
    /// Renders the request as its protocol line.
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Run(m) => m.to_line(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let mut fields = line.split('\t');
        let verb = fields.next().unwrap_or("");
        match verb {
            "PING" => Ok(Request::Ping),
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            "RUN" => {
                let mut workloads = None;
                let mut engines = None;
                let mut policies = None;
                let mut warmup = None;
                let mut measure = None;
                let mut jobs = None;
                for field in fields {
                    let (k, v) = field.split_once('=').ok_or_else(|| {
                        RequestError::new("E_PARSE", format!("field {field:?} is not key=value"))
                    })?;
                    let list = |v: &str| -> Vec<String> {
                        v.split(',')
                            .filter(|s| !s.is_empty())
                            .map(|s| s.to_string())
                            .collect()
                    };
                    let num = |v: &str| -> Result<u64, RequestError> {
                        v.parse().map_err(|_| {
                            RequestError::new("E_PARSE", format!("{k}={v:?} is not a number"))
                        })
                    };
                    match k {
                        "workloads" => workloads = Some(list(v)),
                        "engines" => engines = Some(list(v)),
                        "policies" => policies = Some(list(v)),
                        "warmup" => warmup = Some(num(v)?),
                        "measure" => measure = Some(num(v)?),
                        "jobs" => {
                            jobs =
                                Some(usize::try_from(num(v)?).map_err(|_| {
                                    RequestError::new("E_PARSE", "jobs out of range")
                                })?)
                        }
                        other => {
                            return Err(RequestError::new(
                                "E_PARSE",
                                format!("unknown RUN field {other:?}"),
                            ))
                        }
                    }
                }
                let missing =
                    |what: &str| RequestError::new("E_PARSE", format!("RUN missing {what}="));
                Ok(Request::Run(MatrixRequest {
                    workloads: workloads.ok_or_else(|| missing("workloads"))?,
                    engines: engines.ok_or_else(|| missing("engines"))?,
                    policies: policies.ok_or_else(|| missing("policies"))?,
                    warmup_cycles: warmup.ok_or_else(|| missing("warmup"))?,
                    measure_cycles: measure.ok_or_else(|| missing("measure"))?,
                    jobs,
                }))
            }
            other => Err(RequestError::new(
                "E_PARSE",
                format!("unknown request {other:?}"),
            )),
        }
    }
}

/// The trailer of a completed job: per-job cache counters and wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Cells in the job.
    pub cells: usize,
    /// Cells served from the memo cache.
    pub hits: usize,
    /// Cells computed fresh.
    pub misses: usize,
    /// Memo-cache evictions while the job ran (process-wide delta: exact
    /// when one job runs at a time, an upper bound under concurrency).
    pub evictions: u64,
    /// Wall-clock milliseconds the job took on the daemon.
    pub wall_ms: u64,
}

/// Both caches' [`CacheSnapshot`]s, as reported by `STATS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsReport {
    /// The result memo cache.
    pub memo: CacheSnapshot,
    /// The warm-start snapshot cache.
    pub warm: CacheSnapshot,
}

/// One daemon response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `PING` acknowledgement.
    Pong,
    /// `SHUTDOWN` acknowledgement.
    Bye,
    /// Cache report.
    Stats(StatsReport),
    /// Job accepted; `cells` results will follow.
    Ok {
        /// Cell count of the accepted job.
        cells: usize,
    },
    /// One finished cell, streamed in completion order.
    Result {
        /// The cell's index in the job's stable cell order.
        index: usize,
        /// Served from cache or computed.
        outcome: CacheOutcome,
        /// The cell's result, bit-exact.
        result: RunResult,
    },
    /// Job trailer.
    Summary(JobSummary),
    /// End of a job's response stream.
    End,
    /// Request rejected.
    Err(RequestError),
}

impl Response {
    /// Renders the response as its protocol line.
    pub fn to_line(&self) -> String {
        match self {
            Response::Pong => "PONG".to_string(),
            Response::Bye => "BYE".to_string(),
            Response::Stats(s) => format!(
                "STATS\tmemo_len={}\tmemo_cap={}\tmemo_hits={}\tmemo_misses={}\tmemo_evictions={}\
                 \twarm_len={}\twarm_cap={}\twarm_hits={}\twarm_misses={}\twarm_evictions={}",
                s.memo.len,
                s.memo.cap,
                s.memo.counters.hits,
                s.memo.counters.misses,
                s.memo.counters.evictions,
                s.warm.len,
                s.warm.cap,
                s.warm.counters.hits,
                s.warm.counters.misses,
                s.warm.counters.evictions,
            ),
            Response::Ok { cells } => format!("OK\tcells={cells}"),
            Response::Result {
                index,
                outcome,
                result,
            } => format!("RESULT\t{index}\t{outcome}\t{}", encode_result(result)),
            Response::Summary(s) => format!(
                "SUMMARY\tcells={}\thits={}\tmisses={}\tevictions={}\twall_ms={}",
                s.cells, s.hits, s.misses, s.evictions, s.wall_ms
            ),
            Response::End => "END".to_string(),
            Response::Err(e) => format!("ERR\t{}\t{}", e.code, e.message),
        }
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        let num =
            |s: &str| -> Result<u64, String> { s.parse().map_err(|_| format!("bad number {s:?}")) };
        let kv = |field: &str, key: &str| -> Result<u64, String> {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            if k != key {
                return Err(format!("expected {key}=, got {k}="));
            }
            num(v)
        };
        match fields.first().copied() {
            Some("PONG") => Ok(Response::Pong),
            Some("BYE") => Ok(Response::Bye),
            Some("END") => Ok(Response::End),
            Some("OK") if fields.len() == 2 => Ok(Response::Ok {
                cells: usize::try_from(kv(fields[1], "cells")?)
                    .map_err(|_| "cells out of range".to_string())?,
            }),
            Some("RESULT") if fields.len() == 4 => Ok(Response::Result {
                index: usize::try_from(num(fields[1])?)
                    .map_err(|_| "index out of range".to_string())?,
                outcome: fields[2].parse()?,
                result: decode_result(fields[3])?,
            }),
            Some("SUMMARY") if fields.len() == 6 => Ok(Response::Summary(JobSummary {
                cells: usize::try_from(kv(fields[1], "cells")?)
                    .map_err(|_| "cells out of range".to_string())?,
                hits: usize::try_from(kv(fields[2], "hits")?)
                    .map_err(|_| "hits out of range".to_string())?,
                misses: usize::try_from(kv(fields[3], "misses")?)
                    .map_err(|_| "misses out of range".to_string())?,
                evictions: kv(fields[4], "evictions")?,
                wall_ms: kv(fields[5], "wall_ms")?,
            })),
            Some("STATS") if fields.len() == 11 => {
                let snap = |at: usize, prefix: &str| -> Result<CacheSnapshot, String> {
                    Ok(CacheSnapshot {
                        len: usize::try_from(kv(fields[at], &format!("{prefix}_len"))?)
                            .map_err(|_| "len out of range".to_string())?,
                        cap: usize::try_from(kv(fields[at + 1], &format!("{prefix}_cap"))?)
                            .map_err(|_| "cap out of range".to_string())?,
                        counters: smt_experiments::CacheCounters {
                            hits: kv(fields[at + 2], &format!("{prefix}_hits"))?,
                            misses: kv(fields[at + 3], &format!("{prefix}_misses"))?,
                            evictions: kv(fields[at + 4], &format!("{prefix}_evictions"))?,
                        },
                    })
                };
                Ok(Response::Stats(StatsReport {
                    memo: snap(1, "memo")?,
                    warm: snap(6, "warm")?,
                }))
            }
            Some("ERR") if fields.len() >= 3 => Ok(Response::Err(RequestError {
                code: fields[1].to_string(),
                message: fields[2..].join(" "),
            })),
            _ => Err(format!("unparsable response line {line:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> MatrixRequest {
        MatrixRequest {
            workloads: vec!["2_ILP".into(), "4_MIX".into()],
            engines: vec!["gshare+BTB".into(), "trace cache".into()],
            policies: vec!["ICOUNT.1.8".into(), "ICOUNT-FLUSH.2.8".into()],
            warmup_cycles: 2_000,
            measure_cycles: 10_000,
            jobs: Some(3),
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Run(request()),
            Request::Run(MatrixRequest {
                jobs: None,
                ..request()
            }),
        ] {
            assert_eq!(Request::parse(&req.to_line()), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn run_parse_rejects_malformed_lines() {
        assert!(Request::parse("NONSENSE").is_err());
        assert!(
            Request::parse("RUN\tworkloads=2_ILP").is_err(),
            "missing fields"
        );
        assert!(Request::parse("RUN\tbogus=1").is_err(), "unknown field");
        assert!(Request::parse("RUN\tworkloads").is_err(), "not key=value");
        let e = Request::parse("RUN\twarmup=abc").unwrap_err();
        assert_eq!(e.code, "E_PARSE");
    }

    #[test]
    fn figure5_is_24_cells_and_resolves() {
        let req = MatrixRequest::figure5(RunLength::SMOKE);
        assert_eq!(req.cells(), 24);
        let resolved = req.resolve().expect("figure 5 resolves");
        assert_eq!(resolved.workloads.len(), 4);
        assert_eq!(resolved.engines.len(), 3);
        assert_eq!(resolved.policies.len(), 2);
        assert_eq!(resolved.len, RunLength::SMOKE);
        assert_eq!(resolved.jobs, None);
    }

    #[test]
    fn resolve_rejects_unknown_vocabulary() {
        let e = MatrixRequest {
            workloads: vec!["9_NOPE".into()],
            ..MatrixRequest::figure5(RunLength::SMOKE)
        }
        .resolve()
        .unwrap_err();
        assert_eq!(e.code, "E_VOCAB");
        let e = MatrixRequest {
            engines: vec!["quantum".into()],
            ..MatrixRequest::figure5(RunLength::SMOKE)
        }
        .resolve()
        .unwrap_err();
        assert_eq!(e.code, "E_VOCAB");
        let e = MatrixRequest {
            policies: vec!["ICOUNT.3.8".into()],
            ..MatrixRequest::figure5(RunLength::SMOKE)
        }
        .resolve()
        .unwrap_err();
        assert_eq!(e.code, "E_VOCAB");
    }

    #[test]
    fn resolve_rejects_degenerate_requests() {
        let base = MatrixRequest::figure5(RunLength::SMOKE);
        let empty = MatrixRequest {
            workloads: Vec::new(),
            ..base.clone()
        };
        assert_eq!(empty.resolve().unwrap_err().code, "E_PARSE");
        let zero = MatrixRequest {
            measure_cycles: 0,
            ..base.clone()
        };
        assert_eq!(zero.resolve().unwrap_err().code, "E_PARSE");
        let huge = MatrixRequest {
            policies: vec!["ICOUNT.1.8".to_string(); MAX_CELLS],
            ..base.clone()
        };
        assert_eq!(huge.resolve().unwrap_err().code, "E_TOO_LARGE");
        let jobs = MatrixRequest {
            jobs: Some(0),
            ..base
        };
        assert_eq!(jobs.resolve().unwrap_err().code, "E_JOBS");
    }

    #[test]
    fn responses_round_trip() {
        let result = RunResult {
            workload: "2_ILP".into(),
            engine: "trace cache".into(),
            policy: "ICOUNT.2.8".into(),
            ipfc: 3.5,
            ipc: 2.25,
            branch_accuracy: 0.9375,
            wrong_path: 0.125,
            frac_ge4: 0.5,
            frac_ge8: 0.25,
            frac_eq8: 0.25,
            frac_ge16: 0.0,
            per_thread_ipc: vec![1.125, 1.125],
            fairness: 1.0,
            skipped_cycles: 7,
        };
        let snap = CacheSnapshot {
            len: 24,
            cap: 4096,
            counters: smt_experiments::CacheCounters {
                hits: 48,
                misses: 24,
                evictions: 0,
            },
        };
        for resp in [
            Response::Pong,
            Response::Bye,
            Response::End,
            Response::Ok { cells: 24 },
            Response::Result {
                index: 5,
                outcome: CacheOutcome::Hit,
                result,
            },
            Response::Summary(JobSummary {
                cells: 24,
                hits: 24,
                misses: 0,
                evictions: 1,
                wall_ms: 3,
            }),
            Response::Stats(StatsReport {
                memo: snap,
                warm: CacheSnapshot {
                    len: 2,
                    cap: 256,
                    ..snap
                },
            }),
            Response::Err(RequestError::new("E_VOCAB", "unknown\tworkload\n\"9_X\"")),
        ] {
            assert_eq!(
                Response::parse(&resp.to_line()),
                Ok(resp.clone()),
                "{resp:?}"
            );
        }
        assert!(Response::parse("GOBBLEDYGOOK").is_err());
        assert!(
            Response::parse("RESULT\t1\thit").is_err(),
            "missing payload"
        );
    }

    #[test]
    fn error_messages_are_sanitized_to_one_field() {
        let e = RequestError::new("E_CONFIG", "line one\nline two\twith tab");
        assert!(!e.message.contains('\n'));
        assert!(!e.message.contains('\t'));
        let rendered = Response::Err(e).to_line();
        assert_eq!(rendered.lines().count(), 1);
        assert_eq!(rendered.matches('\t').count(), 2, "{rendered:?}");
    }
}
