//! The sweep daemon: a `std::net` TCP listener speaking the line protocol.
//!
//! One accept-loop thread; one thread per connection; per-job parallelism
//! inside a connection goes through the audited sweep executor
//! (`run_matrix_sweep_memoized` → `sweep_cells`). The raw `thread::spawn`
//! and wall-clock reads in this file are the daemon's ledgered lint
//! escapes: connection threads only move protocol bytes — every simulated
//! result is produced inside the executor, so the parallel == serial
//! determinism argument is untouched — and the one timer feeds the
//! `SUMMARY` line's `wall_ms` observability field, never a result.
//!
//! Shutdown is cooperative: `SHUTDOWN` (or [`Server::shutdown`]) sets a
//! flag, closes every live connection (waking threads parked in a read),
//! and self-connects to unblock `accept`; the accept loop exits, and
//! every connection thread is joined before [`Server::wait`] returns.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use smt_experiments::{
    memo_snapshot, run_matrix_sweep_memoized, warm_snapshot, CacheOutcome, Jobs, RunResult,
};

use crate::protocol::{JobSummary, MatrixRequest, Request, Response, StatsReport};

/// State shared by the accept loop and every connection thread.
struct Shared {
    /// Set once; the accept loop exits at the next wakeup.
    shutdown: AtomicBool,
    /// The bound address (connection threads self-connect to wake accept).
    addr: SocketAddr,
    /// Default per-job worker count (requests may override with `jobs=`).
    jobs: Jobs,
    /// One clone per live connection, so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
}

/// Raises the shutdown flag, unblocks every connection thread parked in a
/// read, and wakes the accept loop so it can observe the flag.
fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    if let Ok(conns) = shared.conns.lock() {
        for conn in conns.iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
    let _ = TcpStream::connect(shared.addr);
}

/// A running sweep daemon.
///
/// Binding spawns the accept loop and returns immediately; the daemon then
/// serves until a client sends `SHUTDOWN` ([`Server::wait`] returns) or the
/// owner calls [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving with `jobs` workers per job by default.
    pub fn bind(addr: &str, jobs: Jobs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            addr,
            jobs,
            conns: Mutex::new(Vec::new()),
        });
        let loop_shared = Arc::clone(&shared);
        // lint:allow(no-nondeterministic-threading): the daemon's accept loop; moves protocol bytes only, all simulation runs inside the audited sweep executor
        let accept = std::thread::spawn(move || accept_loop(listener, loop_shared));
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (a client sent `SHUTDOWN`). Every
    /// connection thread has been joined when this returns.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops the daemon from the owning process: sets the shutdown flag,
    /// wakes the accept loop, and joins it (and, transitively, every
    /// connection thread).
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until the shutdown flag is observed, then joins
/// every connection thread.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Results stream as many small flushed lines; leaving Nagle on
        // would serialize them against delayed ACKs (~40 ms per line).
        let _ = stream.set_nodelay(true);
        if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), shared.conns.lock()) {
            conns.push(clone);
        }
        let conn_shared = Arc::clone(&shared);
        // lint:allow(no-nondeterministic-threading): one protocol-pump thread per client connection; cell results are computed by the audited sweep executor, so which thread serves a client cannot affect any result
        connections.push(std::thread::spawn(move || {
            handle_connection(stream, conn_shared)
        }));
    }
    for conn in connections {
        let _ = conn.join();
    }
}

/// Serves one client connection: requests in, response lines out, until
/// the client disconnects or sends `SHUTDOWN`.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let writer = Mutex::new(BufWriter::new(stream));
    let send = |resp: &Response| -> bool {
        let Ok(mut w) = writer.lock() else {
            return false;
        };
        writeln!(w, "{}", resp.to_line())
            .and_then(|()| w.flush())
            .is_ok()
    };
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(e) => {
                if !send(&Response::Err(e)) {
                    break;
                }
            }
            Ok(Request::Ping) => {
                if !send(&Response::Pong) {
                    break;
                }
            }
            Ok(Request::Stats) => {
                let report = StatsReport {
                    memo: memo_snapshot(),
                    warm: warm_snapshot(),
                };
                if !send(&Response::Stats(report)) {
                    break;
                }
            }
            Ok(Request::Shutdown) => {
                let _ = send(&Response::Bye);
                trigger_shutdown(&shared);
                break;
            }
            Ok(Request::Run(req)) => {
                if !run_job(&req, &shared, &writer) {
                    break;
                }
            }
        }
    }
}

/// Executes one `RUN` job, streaming `RESULT` lines as cells complete.
/// Returns `false` when the client is gone and the connection should close.
fn run_job(req: &MatrixRequest, shared: &Shared, writer: &Mutex<BufWriter<TcpStream>>) -> bool {
    let send = |resp: &Response| -> bool {
        let Ok(mut w) = writer.lock() else {
            return false;
        };
        writeln!(w, "{}", resp.to_line())
            .and_then(|()| w.flush())
            .is_ok()
    };
    let resolved = match req.resolve() {
        Ok(r) => r,
        Err(e) => return send(&Response::Err(e)),
    };
    let cells = req.cells();
    if !send(&Response::Ok { cells }) {
        return false;
    }
    let jobs = resolved.jobs.unwrap_or(shared.jobs);
    let evictions_before = memo_snapshot().counters.evictions;
    // The job wall timer: observability only (the SUMMARY line), never a
    // result — results are deterministic functions of the request.
    let started = Instant::now(); // lint:allow(no-wall-clock): job wall-time for the SUMMARY observability line; results never see it
    let on_cell = |index: usize, result: &RunResult, outcome: CacheOutcome| {
        // A send failure here (client went away) cannot abort the sweep —
        // remaining cells still land in the memo cache for the next client.
        send(&Response::Result {
            index,
            outcome,
            result: result.clone(),
        });
    };
    let sweep = run_matrix_sweep_memoized(
        &resolved.workloads,
        &resolved.engines,
        &resolved.policies,
        resolved.len,
        jobs,
        Some(&on_cell),
    );
    let hits = sweep
        .stats
        .iter()
        .filter(|s| s.cache == Some(CacheOutcome::Hit))
        .count();
    let misses = sweep
        .stats
        .iter()
        .filter(|s| s.cache == Some(CacheOutcome::Miss))
        .count();
    if smt_experiments::report_level() >= 1 {
        eprintln!(
            "{}",
            smt_experiments::render_sweep_stats("smt-serve job", &sweep.stats)
        );
    }
    let summary = JobSummary {
        cells,
        hits,
        misses,
        evictions: memo_snapshot()
            .counters
            .evictions
            .saturating_sub(evictions_before),
        wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
    };
    send(&Response::Summary(summary)) && send(&Response::End)
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end daemon behaviour is covered by `tests/service.rs`; here
    // only the pure pieces.

    #[test]
    fn bind_and_shutdown_without_clients() {
        let server = Server::bind("127.0.0.1:0", Jobs::SERIAL).expect("bind");
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_request_error_is_not_possible_for_ephemeral_bind() {
        // Two servers on distinct ephemeral ports coexist.
        let a = Server::bind("127.0.0.1:0", Jobs::SERIAL).expect("bind a");
        let b = Server::bind("127.0.0.1:0", Jobs::SERIAL).expect("bind b");
        assert_ne!(a.addr(), b.addr());
        a.shutdown();
        b.shutdown();
    }
}
