//! A blocking client for the sweep daemon.
//!
//! [`Client::submit`] streams a [`MatrixRequest`], reassembles the
//! completion-ordered `RESULT` lines back into the job's stable cell order
//! (workload-major, then policy, then engine — the same order
//! `run_matrix_sweep_memoized` uses), and returns the bit-exact results
//! plus the job trailer.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use smt_experiments::{CacheOutcome, RunResult};

use crate::protocol::{JobSummary, MatrixRequest, Request, RequestError, Response, StatsReport};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed or dropped mid-stream.
    Io(io::Error),
    /// The daemon sent something the protocol cannot parse, or the stream
    /// ended where the protocol promised more.
    Protocol(String),
    /// The daemon rejected the request with an `ERR` line.
    Server(RequestError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server rejected request: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Everything a completed job sent back.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Per-cell results in the job's **stable cell order** (not arrival
    /// order): `workloads × policies × engines`, last index fastest.
    pub results: Vec<RunResult>,
    /// Per-cell cache outcomes, same order as `results`.
    pub outcomes: Vec<CacheOutcome>,
    /// The job trailer (hit/miss/eviction counts, daemon wall time).
    pub summary: JobSummary,
}

impl JobOutcome {
    /// Cells served from the memo cache.
    pub fn hits(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == CacheOutcome::Hit)
            .count()
    }
}

/// A connected daemon client. One request in flight at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:4004"`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Requests are single small flushed lines; don't let Nagle hold
        // them back against the server's delayed ACKs.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", req.to_line())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-conversation".to_string(),
            ));
        }
        Response::parse(line.trim_end_matches(['\n', '\r'])).map_err(ClientError::Protocol)
    }

    /// Liveness probe; errors unless the daemon answers `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected PONG, got {:?}",
                other.to_line()
            ))),
        }
    }

    /// Fetches both caches' occupancy and lifetime counters.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        self.send(&Request::Stats)?;
        match self.read_response()? {
            Response::Stats(s) => Ok(s),
            Response::Err(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected STATS, got {:?}",
                other.to_line()
            ))),
        }
    }

    /// Asks the daemon to stop; errors unless it acknowledges with `BYE`.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.read_response()? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected BYE, got {:?}",
                other.to_line()
            ))),
        }
    }

    /// Submits a matrix job and blocks until its `END`, reassembling the
    /// streamed results into stable cell order.
    pub fn submit(&mut self, req: &MatrixRequest) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Run(req.clone()))?;
        let cells = match self.read_response()? {
            Response::Ok { cells } => cells,
            Response::Err(e) => return Err(ClientError::Server(e)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected OK, got {:?}",
                    other.to_line()
                )))
            }
        };
        let mut slots: Vec<Option<(RunResult, CacheOutcome)>> = vec![None; cells];
        let mut summary = None;
        loop {
            match self.read_response()? {
                Response::Result {
                    index,
                    outcome,
                    result,
                } => {
                    let slot = slots.get_mut(index).ok_or_else(|| {
                        ClientError::Protocol(format!("cell index {index} out of range ({cells})"))
                    })?;
                    if slot.replace((result, outcome)).is_some() {
                        return Err(ClientError::Protocol(format!(
                            "cell index {index} streamed twice"
                        )));
                    }
                }
                Response::Summary(s) => summary = Some(s),
                Response::End => break,
                Response::Err(e) => return Err(ClientError::Server(e)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected mid-job response {:?}",
                        other.to_line()
                    )))
                }
            }
        }
        let summary =
            summary.ok_or_else(|| ClientError::Protocol("END without SUMMARY".to_string()))?;
        let mut results = Vec::with_capacity(cells);
        let mut outcomes = Vec::with_capacity(cells);
        for (index, slot) in slots.into_iter().enumerate() {
            let (result, outcome) = slot.ok_or_else(|| {
                ClientError::Protocol(format!("cell index {index} never streamed"))
            })?;
            results.push(result);
            outcomes.push(outcome);
        }
        Ok(JobOutcome {
            results,
            outcomes,
            summary,
        })
    }
}
