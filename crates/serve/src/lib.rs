//! # smt-serve — sweep-as-a-service
//!
//! A persistent daemon that keeps the expensive per-process state of the
//! experiment harness — parsed `Arc<Program>` images, warm-start
//! snapshots, and above all the content-hash memo cache of finished
//! [`RunResult`](smt_experiments::RunResult)s — alive across many sweep
//! invocations, so that re-running a figure costs milliseconds instead of
//! a fresh simulation.
//!
//! Zero dependencies beyond the workspace: the transport is `std::net`
//! TCP with a newline-delimited, tab-separated protocol
//! ([`protocol`], DESIGN.md §16). Per-job parallelism reuses the audited
//! deterministic sweep executor, so a daemon-served result is bit-exact
//! with a fresh `cargo run` of the same cell — the memoized == fresh
//! property is enforced by tests.
//!
//! ## Quick start
//!
//! ```text
//! cargo run --release -p smt-serve --bin smt-serve -- --addr 127.0.0.1:4004 &
//! cargo run --release -p smt-serve --bin smt-client -- --figure5        # cold
//! cargo run --release -p smt-serve --bin smt-client -- --figure5        # warm: ~100% hits
//! cargo run --release -p smt-serve --bin smt-client -- --shutdown
//! ```
//!
//! In-process embedding (no fixed port, no race):
//!
//! ```
//! use smt_experiments::{Jobs, RunLength};
//! use smt_serve::{Client, MatrixRequest, Server};
//!
//! let server = Server::bind("127.0.0.1:0", Jobs::SERIAL).expect("bind");
//! let addr = server.addr().to_string();
//! let mut client = Client::connect(&addr).expect("connect");
//! client.ping().expect("ping");
//! let req = MatrixRequest {
//!     workloads: vec!["2_ILP".into()],
//!     engines: vec!["stream".into()],
//!     policies: vec!["ICOUNT.2.8".into()],
//!     warmup_cycles: 100,
//!     measure_cycles: 400,
//!     jobs: None,
//! };
//! let job = client.submit(&req).expect("job");
//! assert_eq!(job.results.len(), 1);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, JobOutcome};
pub use protocol::{
    JobSummary, MatrixRequest, Request, RequestError, ResolvedMatrix, Response, StatsReport,
    MAX_CELLS,
};
pub use server::Server;
