//! End-to-end daemon tests: cache reuse across jobs, bit-exact results
//! independent of client arrival order, and protocol error recovery.
//!
//! All tests share one process-global memo cache (that is the point of the
//! daemon), so each test uses a cell space no other test touches — a
//! distinct `measure_cycles` is enough, since the run length is part of
//! the `CellKey`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use smt_experiments::{encode_result, sweep_indexed, CacheOutcome, Jobs, RunLength};
use smt_serve::{Client, ClientError, MatrixRequest, Server};

fn jobs(n: usize) -> Jobs {
    Jobs::new(n).expect("worker count")
}

/// The figure-5 matrix served twice: the second job must be pure cache
/// hits and byte-identical to the first.
#[test]
fn figure5_twice_is_all_hits_and_bit_exact() {
    let server = Server::bind("127.0.0.1:0", jobs(4)).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let req = MatrixRequest::figure5(RunLength::SMOKE);

    let first = client.submit(&req).expect("first job");
    assert_eq!(first.results.len(), 24);
    assert_eq!(first.summary.cells, 24);
    assert_eq!(first.summary.hits + first.summary.misses, 24);

    let second = client.submit(&req).expect("second job");
    assert_eq!(second.summary.hits, 24, "repeat job must be pure hits");
    assert_eq!(second.summary.misses, 0);
    assert!(second.outcomes.iter().all(|&o| o == CacheOutcome::Hit));
    let encode = |job: &smt_serve::JobOutcome| -> Vec<String> {
        job.results.iter().map(encode_result).collect()
    };
    assert_eq!(encode(&first), encode(&second), "results must be bit-exact");

    let stats = client.stats().expect("stats");
    assert!(stats.memo.len >= 24, "memo cache holds the matrix");
    assert!(stats.warm.len >= 1, "warm-start snapshots retained");

    client.shutdown().expect("shutdown handshake");
    server.wait();
}

/// Four clients submit the same job concurrently (driven by the audited
/// sweep executor, so no raw threads in this test): every client gets the
/// same bit-exact result regardless of arrival order.
#[test]
fn concurrent_clients_agree_bit_exactly() {
    let server = Server::bind("127.0.0.1:0", Jobs::SERIAL).expect("bind");
    let addr = server.addr().to_string();
    // A cell space private to this test: measure length no other test uses.
    let req = MatrixRequest {
        workloads: vec!["2_ILP".into(), "4_ILP".into()],
        engines: vec!["stream".into(), "gshare+BTB".into()],
        policies: vec!["ICOUNT.1.8".into(), "ICOUNT.2.8".into()],
        warmup_cycles: 500,
        measure_cycles: 2_401,
        jobs: None,
    };
    let transcripts: Vec<Vec<String>> = sweep_indexed(4, jobs(4), |_| {
        let mut client = Client::connect(&addr).expect("connect");
        let job = client.submit(&req).expect("job");
        assert_eq!(job.summary.hits + job.summary.misses, 8);
        job.results.iter().map(encode_result).collect()
    });
    for t in &transcripts[1..] {
        assert_eq!(
            t, &transcripts[0],
            "every client must see identical bit-exact results"
        );
    }
    server.shutdown();
}

/// Malformed and invalid requests produce `ERR` lines, and the connection
/// stays usable afterwards.
#[test]
fn errors_are_reported_and_survivable() {
    let server = Server::bind("127.0.0.1:0", Jobs::SERIAL).expect("bind");
    let addr = server.addr().to_string();

    // Raw socket: a garbage line gets E_PARSE, then the connection still
    // answers PING.
    let mut raw = TcpStream::connect(&addr).expect("connect raw");
    writeln!(raw, "NONSENSE").expect("write");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR\tE_PARSE\t"), "got {line:?}");
    writeln!(raw, "PING").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim_end(), "PONG");
    drop((raw, reader));

    // Typed client: vocabulary and size violations come back as
    // `ClientError::Server` with the stable codes.
    let mut client = Client::connect(&addr).expect("connect");
    let bad_vocab = MatrixRequest {
        workloads: vec!["9_NOPE".into()],
        ..MatrixRequest::figure5(RunLength::SMOKE)
    };
    match client.submit(&bad_vocab) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "E_VOCAB"),
        other => panic!("expected E_VOCAB, got {other:?}"),
    }
    let too_big = MatrixRequest {
        policies: vec!["ICOUNT.1.8".into(); smt_serve::MAX_CELLS],
        ..MatrixRequest::figure5(RunLength::SMOKE)
    };
    match client.submit(&too_big) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "E_TOO_LARGE"),
        other => panic!("expected E_TOO_LARGE, got {other:?}"),
    }
    // The same connection still serves a real (tiny, test-private) job.
    let ok = MatrixRequest {
        workloads: vec!["2_ILP".into()],
        engines: vec!["stream".into()],
        policies: vec!["ICOUNT.2.8".into()],
        warmup_cycles: 100,
        measure_cycles: 503,
        jobs: Some(1),
    };
    let job = client.submit(&ok).expect("job after errors");
    assert_eq!(job.results.len(), 1);
    server.shutdown();
}
