use smt_isa::Addr;
use smt_workloads::{BenchmarkProfile, ProgramBuilder, Walker};

fn main() {
    for p in BenchmarkProfile::all() {
        print!("{:10} target {:5.2} |", p.name, p.avg_bb_size);
        for seed in [1u64, 4, 9] {
            let prog = ProgramBuilder::new(p.clone())
                .base(Addr::new(0x40_0000))
                .seed(seed)
                .build();
            let mut w = Walker::new(prog, 0);
            let _ = w.measure(20_000);
            let s = w.measure(300_000);
            print!(
                " {:5.2}/tk{:4.2}/st{:5.1}",
                s.avg_bb_size(),
                s.taken_rate(),
                s.avg_stream_len()
            );
        }
        println!();
    }
}
