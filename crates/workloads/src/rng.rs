//! A tiny deterministic RNG for program synthesis.
//!
//! Program generation must be bit-for-bit reproducible across platforms and
//! dependency upgrades (the whole evaluation depends on it), so we use our
//! own splitmix64-based generator rather than an external crate whose stream
//! could change between versions.

use crate::behavior::mix64;

/// Deterministic pseudo-random generator (splitmix64 sequence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Srng {
    state: u64,
}

impl Srng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Srng {
            // Avoid the all-zero fixed point of some seeds; mix once.
            state: mix64(seed ^ 0xa076_1d64_78bd_642f),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform integer in `[lo, hi)` (empty ranges return `lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo + 1 {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// [`Srng::range`] narrowed to `u32` for the generator's small bounded
    /// draws (periods, depths, milli-probabilities). The draw is `< hi`,
    /// so the narrowing is lossless whenever the requested bound fits.
    pub fn range_u32(&mut self, lo: u64, hi: u64) -> u32 {
        debug_assert!(hi <= 1 << 32, "range_u32 bound {hi} exceeds u32");
        self.range(lo, hi) as u32 // lint:allow(no-lossy-cast): draw < hi, asserted ≤ 2^32
    }

    /// [`Srng::range`] narrowed to `u16` (architectural register indices).
    pub fn range_u16(&mut self, lo: u64, hi: u64) -> u16 {
        debug_assert!(hi <= 1 << 16, "range_u16 bound {hi} exceeds u16");
        self.range(lo, hi) as u16 // lint:allow(no-lossy-cast): draw < hi, asserted ≤ 2^16
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric-ish draw with mean `mean`, clamped to `[1, cap]`.
    ///
    /// Used for basic-block sizes: integer-code block sizes are short-tailed
    /// and skewed, which a clamped geometric reproduces well.
    pub fn geometric(&mut self, mean: f64, cap: u64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        // Inverse-CDF sampling of a geometric with mean `mean`.
        let p = 1.0 / mean;
        let u = self.f64().max(1e-12);
        let g = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
        g.clamp(1, cap)
    }

    /// Picks an element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Srng::new(42);
        let mut b = Srng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Srng::new(1);
        let mut b = Srng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Srng::new(7);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range(5, 5), 5);
        assert_eq!(r.range(5, 6), 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Srng::new(3);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = Srng::new(11);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| r.geometric(8.0, 64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.25, "observed mean {mean}");
    }

    #[test]
    fn geometric_clamps() {
        let mut r = Srng::new(13);
        for _ in 0..10_000 {
            let v = r.geometric(50.0, 16);
            assert!((1..=16).contains(&v));
        }
        assert_eq!(r.geometric(0.5, 16), 1);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Srng::new(17);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
    }
}
