//! Deterministic per-instruction behaviour generators.
//!
//! Every dynamic outcome in a synthetic benchmark — a conditional branch's
//! direction, an indirect jump's target, a load's effective address — is a
//! *pure function* of `(static instruction, occurrence index)`. This gives
//! the two properties the reproduction needs:
//!
//! 1. **Determinism**: identical seeds produce identical dynamic streams, so
//!    experiments are exactly reproducible and predictor state is meaningful.
//! 2. **Learnability**: generators are chosen so that predictors can learn
//!    them to a *calibrated* degree — loop branches and short patterns are
//!    perfectly history-predictable, biased branches are predictable only to
//!    their bias, uniformly random addresses defeat caches beyond the
//!    working-set size.

use smt_isa::Addr;

/// Fast, high-quality 64-bit mixing function (splitmix64 finalizer).
///
/// Used to derive per-occurrence pseudo-random values from a salt and an
/// occurrence counter without any mutable RNG state.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Direction behaviour of a static conditional branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BranchBehavior {
    /// Loop back-edge: taken `period - 1` consecutive times, then not taken
    /// once. Perfectly predictable by a history predictor whose history
    /// covers the period; near-perfect (1/period miss rate) for bimodal.
    Loop {
        /// Loop trip count (≥ 2); the branch is taken `period - 1` of every
        /// `period` executions.
        period: u32,
    },
    /// Repeating direction pattern of up to 64 bits. Perfectly predictable
    /// by global/history predictors when `len` fits the history register.
    Pattern {
        /// Bit `i % len` of `bits` gives the direction of occurrence `i`
        /// (1 = taken).
        bits: u64,
        /// Pattern length in bits (1 ..= 64).
        len: u32,
    },
    /// Bernoulli branch: taken with probability `p_taken_milli / 1000`,
    /// decided by hashing the occurrence index at `run`-occurrence
    /// granularity.
    ///
    /// With `run = 1` every occurrence is independent noise — the genuinely
    /// hard branches that set the predictor-accuracy ceiling. With larger
    /// `run` the branch holds its direction for runs of executions, the
    /// *phase-like* behaviour of real biased branches (guard tests, error
    /// checks), which history predictors exploit.
    Biased {
        /// Taken probability in thousandths (0 ..= 1000).
        p_taken_milli: u32,
        /// Per-branch hash salt.
        salt: u64,
        /// Direction run length in occurrences (≥ 1).
        run: u32,
    },
    /// History-correlated branch: the direction is a fixed pseudo-random
    /// function of the last `depth` *conditional-branch outcomes* on the
    /// executing thread's architectural path (marginally taken with
    /// probability `p_taken_milli / 1000`).
    ///
    /// This is the behaviour real global-history predictors earn their keep
    /// on — a branch whose outcome correlates with nearby branches. gshare
    /// and gskew learn it exactly (their index contains the function's
    /// input); a bimodal predictor only sees the marginal bias.
    Correlated {
        /// Marginal taken probability in thousandths.
        p_taken_milli: u32,
        /// Correlation depth in history bits (1 ..= 16).
        depth: u32,
        /// Per-branch hash salt.
        salt: u64,
    },
}

impl BranchBehavior {
    /// Direction of the `n`-th dynamic execution of this branch, given the
    /// executing thread's architectural conditional-outcome history
    /// (`path_hist`, most recent outcome in bit 0).
    ///
    /// Only [`BranchBehavior::Correlated`] consults the history; the other
    /// behaviours are pure functions of `n`.
    pub fn taken(&self, n: u64, path_hist: u64) -> bool {
        match *self {
            BranchBehavior::Loop { period } => (n % period as u64) != (period as u64 - 1),
            BranchBehavior::Pattern { bits, len } => (bits >> (n % len as u64)) & 1 == 1,
            BranchBehavior::Biased {
                p_taken_milli,
                salt,
                run,
            } => (mix64(salt ^ (n / run.max(1) as u64)) % 1000) < p_taken_milli as u64,
            BranchBehavior::Correlated {
                p_taken_milli,
                depth,
                salt,
            } => {
                let mask = if depth >= 64 {
                    u64::MAX
                } else {
                    (1u64 << depth) - 1
                };
                (mix64(salt ^ (path_hist & mask)) % 1000) < p_taken_milli as u64
            }
        }
    }

    /// Long-run fraction of executions that are taken, in [0, 1]
    /// (approximate for correlated branches: the marginal bias).
    pub fn taken_rate(&self) -> f64 {
        match *self {
            BranchBehavior::Loop { period } => (period as f64 - 1.0) / period as f64,
            BranchBehavior::Pattern { bits, len } => {
                let mask = if len == 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                };
                (bits & mask).count_ones() as f64 / len as f64
            }
            BranchBehavior::Biased { p_taken_milli, .. }
            | BranchBehavior::Correlated { p_taken_milli, .. } => p_taken_milli as f64 / 1000.0,
        }
    }
}

/// Target behaviour of a static indirect jump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndirectBehavior {
    /// Candidate targets (switch arms, virtual-call receivers).
    pub targets: Vec<Addr>,
    /// Hash salt selecting among targets per occurrence.
    pub salt: u64,
    /// If non-zero, occurrence `n` reuses the target of occurrence `n-1`
    /// with probability `sticky_milli / 1000` (temporal locality that a BTB
    /// can exploit). Stickiness is emulated by hashing `n / run_len`.
    pub sticky_run: u32,
}

impl IndirectBehavior {
    /// Target of the `n`-th dynamic execution.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn target(&self, n: u64) -> Addr {
        assert!(!self.targets.is_empty(), "indirect branch with no targets");
        let idx = if self.sticky_run > 1 {
            mix64(self.salt ^ (n / self.sticky_run as u64)) % self.targets.len() as u64
        } else {
            mix64(self.salt ^ n) % self.targets.len() as u64
        };
        self.targets[idx as usize]
    }
}

/// Effective-address behaviour of a static load or store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemBehavior {
    /// Sequential/strided access over a small region — the cache-friendly
    /// pattern of ILP benchmarks.
    Stride {
        /// Region base address.
        base: Addr,
        /// Stride in bytes between consecutive occurrences.
        stride: u32,
        /// Number of accesses before wrapping to `base`.
        period: u32,
    },
    /// Pseudo-random access uniformly over a working set. Working sets larger
    /// than a cache level defeat that level.
    Region {
        /// Region base address.
        base: Addr,
        /// Working-set size in bytes.
        size: u64,
        /// Per-instruction hash salt.
        salt: u64,
    },
    /// Pointer-chase access: pseudo-random over a (typically huge) working
    /// set, and flagged so the program builder serializes consecutive links
    /// through a register dependence — the latency-bound pattern of
    /// mcf/twolf-like benchmarks.
    Chase {
        /// Region base address.
        base: Addr,
        /// Working-set size in bytes.
        size: u64,
        /// Per-instruction hash salt.
        salt: u64,
    },
}

/// Data accesses are aligned to this many bytes.
pub const ACCESS_ALIGN: u64 = 8;

impl MemBehavior {
    /// Effective address of the `n`-th dynamic execution.
    pub fn address(&self, n: u64) -> Addr {
        match *self {
            MemBehavior::Stride {
                base,
                stride,
                period,
            } => base + (n % period.max(1) as u64) * stride as u64,
            MemBehavior::Region { base, size, salt } | MemBehavior::Chase { base, size, salt } => {
                let slots = (size / ACCESS_ALIGN).max(1);
                base + (mix64(salt ^ n) % slots) * ACCESS_ALIGN
            }
        }
    }

    /// Whether this is a pointer-chase access (serialized by construction).
    pub fn is_chase(&self) -> bool {
        matches!(self, MemBehavior::Chase { .. })
    }

    /// Size in bytes of the region this access pattern touches.
    pub fn footprint(&self) -> u64 {
        match *self {
            MemBehavior::Stride { stride, period, .. } => stride as u64 * period as u64,
            MemBehavior::Region { size, .. } | MemBehavior::Chase { size, .. } => size,
        }
    }
}

/// Per-static-instruction behaviour, stored alongside the instruction table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Behavior {
    /// No dynamic behaviour (plain ALU instruction, direct jump/call/return).
    None,
    /// Conditional-branch direction generator.
    Branch(BranchBehavior),
    /// Indirect-jump target generator.
    Indirect(IndirectBehavior),
    /// Load/store address generator.
    Mem(MemBehavior),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_behavior_taken_period_minus_one_times() {
        let b = BranchBehavior::Loop { period: 4 };
        let dirs: Vec<bool> = (0..8).map(|n| b.taken(n, 0)).collect();
        assert_eq!(dirs, [true, true, true, false, true, true, true, false]);
        assert!((b.taken_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pattern_behavior_repeats() {
        let b = BranchBehavior::Pattern {
            bits: 0b0110,
            len: 4,
        };
        let dirs: Vec<bool> = (0..8).map(|n| b.taken(n, 0)).collect();
        assert_eq!(dirs, [false, true, true, false, false, true, true, false]);
        assert!((b.taken_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn biased_behavior_matches_bias_in_the_long_run() {
        let b = BranchBehavior::Biased {
            p_taken_milli: 800,
            salt: 0xdead_beef,
            run: 1,
        };
        let taken = (0..100_000).filter(|&n| b.taken(n, 0)).count();
        let rate = taken as f64 / 100_000.0;
        assert!((rate - 0.8).abs() < 0.01, "observed rate {rate}");
        assert!((b.taken_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn biased_behavior_is_deterministic() {
        let b = BranchBehavior::Biased {
            p_taken_milli: 500,
            salt: 7,
            run: 1,
        };
        let a: Vec<bool> = (0..64).map(|n| b.taken(n, 0)).collect();
        let c: Vec<bool> = (0..64).map(|n| b.taken(n, 0)).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn indirect_targets_cycle_within_set() {
        let t = IndirectBehavior {
            targets: vec![Addr::new(0x100), Addr::new(0x200), Addr::new(0x300)],
            salt: 3,
            sticky_run: 1,
        };
        for n in 0..100 {
            let tgt = t.target(n);
            assert!(t.targets.contains(&tgt));
        }
    }

    #[test]
    fn indirect_sticky_runs_repeat_targets() {
        let t = IndirectBehavior {
            targets: vec![Addr::new(0x100), Addr::new(0x200), Addr::new(0x300)],
            salt: 9,
            sticky_run: 8,
        };
        // Within one run of 8 occurrences the target is constant.
        for run in 0..16u64 {
            let first = t.target(run * 8);
            for i in 1..8 {
                assert_eq!(t.target(run * 8 + i), first);
            }
        }
    }

    #[test]
    fn stride_addresses_wrap() {
        let m = MemBehavior::Stride {
            base: Addr::new(0x1_0000),
            stride: 8,
            period: 4,
        };
        assert_eq!(m.address(0), Addr::new(0x1_0000));
        assert_eq!(m.address(1), Addr::new(0x1_0008));
        assert_eq!(m.address(4), Addr::new(0x1_0000));
        assert_eq!(m.footprint(), 32);
        assert!(!m.is_chase());
    }

    #[test]
    fn region_addresses_stay_in_region_and_are_aligned() {
        let m = MemBehavior::Region {
            base: Addr::new(0x10_0000),
            size: 4096,
            salt: 11,
        };
        for n in 0..10_000 {
            let a = m.address(n);
            assert!(a >= Addr::new(0x10_0000));
            assert!(a < Addr::new(0x10_1000));
            assert_eq!(a.raw() % ACCESS_ALIGN, 0);
        }
    }

    #[test]
    fn region_addresses_cover_working_set() {
        let m = MemBehavior::Region {
            base: Addr::new(0),
            size: 1024,
            salt: 5,
        };
        let distinct: std::collections::BTreeSet<u64> =
            (0..10_000).map(|n| m.address(n).raw()).collect();
        // 128 slots of 8 bytes; nearly all should be touched.
        assert!(
            distinct.len() > 120,
            "only {} distinct slots",
            distinct.len()
        );
    }

    #[test]
    fn correlated_branch_is_a_function_of_history() {
        let b = BranchBehavior::Correlated {
            p_taken_milli: 400,
            depth: 6,
            salt: 99,
        };
        // Same history, same occurrence → same outcome; the occurrence
        // index is irrelevant.
        for hist in 0..64u64 {
            let x = b.taken(0, hist);
            assert_eq!(b.taken(17, hist), x);
            // Bits beyond the depth are masked off.
            assert_eq!(b.taken(0, hist | (1 << 20)), x);
        }
        // Marginal rate tracks the bias over random histories. With depth 6
        // there are only 64 distinct history inputs, so allow for the
        // small-sample deviation of 64 Bernoulli draws.
        let taken = (0..100_000u64).filter(|&h| b.taken(0, mix64(h))).count();
        let rate = taken as f64 / 100_000.0;
        assert!((rate - 0.4).abs() < 0.15, "marginal rate {rate}");
    }

    #[test]
    fn chase_is_flagged() {
        let m = MemBehavior::Chase {
            base: Addr::new(0),
            size: 1 << 24,
            salt: 1,
        };
        assert!(m.is_chase());
        assert_eq!(m.footprint(), 1 << 24);
    }
}
