//! # smt-workloads — synthetic SPECint2000 benchmark clones
//!
//! The HPCA 2004 paper evaluates on traces of the twelve SPECint2000
//! benchmarks (Table 1), combined into ten multithreaded workloads
//! (Table 2). Those Alpha traces are unavailable, so this crate builds the
//! closest synthetic equivalent: **statistical benchmark clones** — programs
//! generated from per-benchmark profiles that calibrate the distributional
//! properties the paper's evaluation actually exercises (average basic-block
//! size, branch-behaviour mix, taken-branch rate, memory working-set size
//! and pointer-chase fraction, dependence density).
//!
//! The pieces:
//!
//! * [`BenchmarkProfile`] — per-benchmark calibration (Table 1);
//! * [`ProgramBuilder`] — synthesizes a static [`Program`] from a profile;
//! * [`Walker`] — deterministically walks a program, producing the
//!   correct-path dynamic instruction stream (and synthesizing wrong-path
//!   instructions for the simulator's speculative fetch);
//! * [`Workload`] — the ten Table 2 workloads (2/4/6/8 × ILP/MEM/MIX).
//!
//! # Example
//!
//! ```
//! use smt_workloads::{Walker, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let programs = Workload::mix2().programs(42)?;   // gzip + twolf
//! let mut w = Walker::new(programs[0].clone(), 0);
//! let stats = w.measure(100_000);
//! // gzip's Table 1 basic-block size is 11.02.
//! assert!(stats.avg_bb_size() > 7.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
mod builder;
mod program;
mod rng;
mod spec;
mod walker;
mod workloads;

pub use behavior::{Behavior, BranchBehavior, IndirectBehavior, MemBehavior};
pub use builder::ProgramBuilder;
pub use program::{Program, StaticStats};
pub use rng::Srng;
pub use spec::{BenchmarkProfile, InstMix, MemClass};
pub use walker::{DynStats, Walker};
pub use workloads::{UnknownBenchmarkError, Workload, WorkloadClass};
